//! Failure-injection and edge-case integration tests: the engine must
//! reject invalid operations with clean errors and never leave partially
//! applied state behind.

use inverda::{DurabilityMode, DurabilityOptions, Inverda, Key, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn tasky() -> Inverda {
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
         CREATE SCHEMA VERSION Do! FROM TasKy WITH \
           SPLIT TABLE Task INTO Todo WITH prio = 1; \
           DROP COLUMN prio FROM Todo DEFAULT 1;",
    )
    .unwrap();
    db
}

#[test]
fn arity_mismatch_is_rejected_without_side_effects() {
    let db = tasky();
    let before = db.count("TasKy", "Task").unwrap();
    assert!(db.insert("TasKy", "Task", vec!["only-one".into()]).is_err());
    assert!(db
        .insert_many(
            "TasKy",
            "Task",
            vec![
                vec!["a".into(), "b".into(), 1.into()],
                vec!["too".into(), "short".into()],
            ],
        )
        .is_err());
    // The valid first row of the failed batch must not have been applied.
    assert_eq!(db.count("TasKy", "Task").unwrap(), before);
}

#[test]
fn invalid_scripts_leave_catalog_unchanged() {
    let db = tasky();
    let versions_before = db.versions();
    // Unknown source table.
    assert!(db
        .execute("CREATE SCHEMA VERSION X FROM TasKy WITH DROP TABLE Ghost;")
        .is_err());
    // Unknown parent version.
    assert!(db
        .execute("CREATE SCHEMA VERSION Y FROM Nope WITH CREATE TABLE t(a);")
        .is_err());
    // Column collision.
    assert!(db
        .execute("CREATE SCHEMA VERSION Z FROM TasKy WITH ADD COLUMN prio AS 0 INTO Task;")
        .is_err());
    // Parse error.
    assert!(db
        .execute("CREATE SCHEMA VERSION W WITH FROB TABLE x;")
        .is_err());
    assert_eq!(db.versions(), versions_before);
}

#[test]
fn materialize_unknown_targets_fails_cleanly() {
    let db = tasky();
    db.insert("TasKy", "Task", vec!["a".into(), "t".into(), 1.into()])
        .unwrap();
    let mat_before = db.materialization_display();
    assert!(db.execute("MATERIALIZE 'NoSuchVersion';").is_err());
    assert!(db.execute("MATERIALIZE 'TasKy.NoSuchTable';").is_err());
    assert_eq!(db.materialization_display(), mat_before);
    assert_eq!(db.count("TasKy", "Task").unwrap(), 1);
}

#[test]
fn empty_tables_round_trip_through_migrations() {
    let db = tasky();
    db.execute("MATERIALIZE 'Do!';").unwrap();
    assert_eq!(db.count("TasKy", "Task").unwrap(), 0);
    assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
    db.execute("MATERIALIZE 'TasKy';").unwrap();
    assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
}

#[test]
fn deletes_leave_no_ghosts_in_any_materialization() {
    // The separated-twin / lost-twin aux machinery must not resurrect
    // deleted rows under any physical layout.
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH \
           SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;",
    )
    .unwrap();
    for mat in ["V1", "V2", "V1"] {
        db.execute(&format!("MATERIALIZE '{mat}';")).unwrap();
        // Twin row (satisfies both split arms).
        let k = db.insert("V1", "T", vec![4.into(), 0.into()]).unwrap();
        // Separate the twins, then delete through each side in turn.
        db.update("V2", "S", k, vec![4.into(), 1.into()]).unwrap();
        db.delete("V2", "R", k).unwrap();
        // The S twin survives an R delete (lost-twin semantics)…
        assert!(db.get("V2", "S", k).unwrap().is_some(), "mat {mat}");
        db.delete("V2", "S", k).unwrap();
        // …but after deleting both, the tuple is gone everywhere.
        assert!(db.get("V1", "T", k).unwrap().is_none(), "mat {mat}");
        assert!(db.get("V2", "R", k).unwrap().is_none(), "mat {mat}");
        assert!(db.get("V2", "S", k).unwrap().is_none(), "mat {mat}");
    }
}

#[test]
fn delete_through_source_kills_both_twins() {
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH \
           SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;",
    )
    .unwrap();
    let k = db.insert("V1", "T", vec![4.into(), 0.into()]).unwrap();
    db.update("V2", "S", k, vec![4.into(), 9.into()]).unwrap(); // separate
    db.delete("V1", "T", k).unwrap();
    assert!(db.get("V2", "R", k).unwrap().is_none());
    assert!(
        db.get("V2", "S", k).unwrap().is_none(),
        "separated twin must not survive a source-side delete"
    );
}

#[test]
fn condition_violating_writes_are_preserved_by_star_aux() {
    // Writing a row into a partition that violates its condition keeps the
    // row there (R*/S* semantics) across materializations.
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH \
           SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 5;",
    )
    .unwrap();
    let k = db.insert("V2", "R", vec![2.into(), 0.into()]).unwrap();
    // Update the R row so it violates R's condition.
    db.update("V2", "R", k, vec![9.into(), 0.into()]).unwrap();
    assert!(
        db.get("V2", "R", k).unwrap().is_some(),
        "R* keeps the row in R"
    );
    assert_eq!(db.get("V1", "T", k).unwrap().unwrap()[0], Value::Int(9));
    for mat in ["V2", "V1"] {
        db.execute(&format!("MATERIALIZE '{mat}';")).unwrap();
        assert!(
            db.get("V2", "R", k).unwrap().is_some(),
            "R* row lost after MATERIALIZE '{mat}'"
        );
        // And it must NOT leak into S despite satisfying S's condition.
        assert!(db.get("V2", "S", k).unwrap().is_none());
    }
}

#[test]
fn drop_column_default_fills_new_rows_in_old_version() {
    let db = tasky();
    let k = db
        .insert("Do!", "Todo", vec!["Eve".into(), "new".into()])
        .unwrap();
    // The DROP COLUMN's DEFAULT 1 materializes in the old version.
    assert_eq!(
        db.get("TasKy", "Task", k).unwrap().unwrap()[2],
        Value::Int(1)
    );
    // And survives a migration to the Do! side (value aux).
    db.execute("MATERIALIZE 'Do!';").unwrap();
    assert_eq!(
        db.get("TasKy", "Task", k).unwrap().unwrap()[2],
        Value::Int(1)
    );
}

#[test]
fn update_in_old_version_respects_stored_new_column_values() {
    // ADD COLUMN: values written through the new version survive updates
    // made through the old version (repeatable reads via the B aux).
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH ADD COLUMN c AS a * 2 INTO T;",
    )
    .unwrap();
    let k = db.insert("V2", "T", vec![3.into(), 99.into()]).unwrap();
    assert_eq!(db.get("V2", "T", k).unwrap().unwrap()[1], Value::Int(99));
    // Update through V1 (which cannot see c): c's stored value remains.
    db.update("V1", "T", k, vec![5.into()]).unwrap();
    let row = db.get("V2", "T", k).unwrap().unwrap();
    assert_eq!(row[0], Value::Int(5));
    assert_eq!(row[1], Value::Int(99), "stored c value must survive");
}

// ---------------------------------------------------------------------------
// Durability fault injection: rejected statements against the write-ahead
// log, and snapshot-store behavior after crash recovery.
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "inverda-failinj-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create crash-copy dir");
    for entry in std::fs::read_dir(src).expect("read durable dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

fn durable_tasky(dir: &Path) -> Inverda {
    let db = Inverda::open_in(
        dir,
        DurabilityOptions {
            mode: DurabilityMode::Commit,
            group_size: 1,
            checkpoint_every: None,
        },
    )
    .expect("open durable db");
    db.execute(
        "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
         CREATE SCHEMA VERSION Do! FROM TasKy WITH \
           SPLIT TABLE Task INTO Todo WITH prio = 1; \
           DROP COLUMN prio FROM Todo DEFAULT 1;",
    )
    .unwrap();
    db
}

/// Simulate a crash: copy the durable directory as-is and recover the copy.
fn recover_copy(db: &Inverda) -> (Inverda, PathBuf) {
    let scratch = fresh_dir("crash");
    copy_dir(&db.durable_dir().expect("durable dir"), &scratch);
    let recovered = Inverda::open(&scratch).expect("recovery");
    (recovered, scratch)
}

#[test]
fn rejected_statements_leave_the_wal_unchanged() {
    let dir = fresh_dir("reject");
    let db = durable_tasky(&dir);
    db.insert("TasKy", "Task", vec!["a".into(), "t".into(), 1.into()])
        .unwrap();
    let len = db.wal_len().expect("durable db logs");
    // Rejected statements that consume nothing must log nothing: the WAL
    // holds committed state changes only.
    assert!(db.insert("TasKy", "Task", vec!["only-one".into()]).is_err());
    assert!(db.delete("TasKy", "Task", Key(99_999)).is_err());
    assert!(db.execute("MATERIALIZE 'NoSuchVersion';").is_err());
    assert!(db
        .execute("CREATE SCHEMA VERSION X FROM TasKy WITH DROP TABLE Ghost;")
        .is_err());
    assert_eq!(
        db.wal_len().unwrap(),
        len,
        "rejected statements were logged"
    );
    // A crash right after the rejections recovers the exact live state —
    // no trace of the rejected statements, everything else intact.
    let (recovered, scratch) = recover_copy(&db);
    assert_eq!(recovered.debug_key_seq(), db.debug_key_seq());
    assert_eq!(recovered.debug_registry(), db.debug_registry());
    assert_eq!(
        recovered.scan("Do!", "Todo").unwrap().to_string(),
        db.scan("Do!", "Todo").unwrap().to_string()
    );
    drop(recovered);
    std::fs::remove_dir_all(&scratch).ok();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partially_valid_rejected_batch_recovers_its_in_memory_trace() {
    // A batch whose *second* row is invalid consumed a key for the first
    // row before failing. That consumption is real in-memory state (the
    // next insert skips the key), so it must survive a crash too.
    let dir = fresh_dir("partial");
    let db = durable_tasky(&dir);
    assert!(db
        .insert_many(
            "TasKy",
            "Task",
            vec![
                vec!["a".into(), "b".into(), 1.into()],
                vec!["too".into(), "short".into()],
            ],
        )
        .is_err());
    assert_eq!(db.count("TasKy", "Task").unwrap(), 0);
    let (recovered, scratch) = recover_copy(&db);
    assert_eq!(
        recovered.debug_key_seq(),
        db.debug_key_seq(),
        "keys consumed by a rejected batch must survive recovery"
    );
    let k_live = db
        .insert("TasKy", "Task", vec!["a".into(), "t".into(), 1.into()])
        .unwrap();
    let k_rec = recovered
        .insert("TasKy", "Task", vec!["a".into(), "t".into(), 1.into()])
        .unwrap();
    assert_eq!(k_live, k_rec, "post-recovery minting diverged");
    drop(recovered);
    std::fs::remove_dir_all(&scratch).ok();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_rebuilds_the_snapshot_store_cold_then_warm() {
    let dir = fresh_dir("store");
    let db = durable_tasky(&dir);
    for i in 0..6 {
        db.insert(
            "TasKy",
            "Task",
            vec![
                Value::text(format!("a{i}")),
                Value::text(format!("t{i}")),
                (i % 3 + 1).into(),
            ],
        )
        .unwrap();
    }
    // Warm the live store, then crash: snapshots are volatile, so the
    // recovered instance starts cold but must converge to warm service.
    let live = db.scan("Do!", "Todo").unwrap().to_string();
    let (recovered, scratch) = recover_copy(&db);
    let s0 = recovered.snapshot_stats();
    let first = recovered.scan("Do!", "Todo").unwrap().to_string();
    let s1 = recovered.snapshot_stats();
    assert!(
        s1.misses > s0.misses,
        "first post-recovery read was not cold"
    );
    let second = recovered.scan("Do!", "Todo").unwrap().to_string();
    let s2 = recovered.snapshot_stats();
    assert!(s2.hits > s1.hits, "second post-recovery read was not warm");
    assert_eq!(s2.misses, s1.misses, "second read went cold again");
    assert_eq!(first, live, "recovered cold read diverged from live state");
    assert_eq!(second, first);
    let audit = recovered.snapshot_store_audit();
    assert!(
        audit.is_empty(),
        "rebuilt snapshot store diverged from cold resolution:\n{}",
        audit.join("\n")
    );
    drop(recovered);
    std::fs::remove_dir_all(&scratch).ok();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
