//! Failure-injection and edge-case integration tests: the engine must
//! reject invalid operations with clean errors and never leave partially
//! applied state behind.

use inverda::{Inverda, Value};

fn tasky() -> Inverda {
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
         CREATE SCHEMA VERSION Do! FROM TasKy WITH \
           SPLIT TABLE Task INTO Todo WITH prio = 1; \
           DROP COLUMN prio FROM Todo DEFAULT 1;",
    )
    .unwrap();
    db
}

#[test]
fn arity_mismatch_is_rejected_without_side_effects() {
    let db = tasky();
    let before = db.count("TasKy", "Task").unwrap();
    assert!(db.insert("TasKy", "Task", vec!["only-one".into()]).is_err());
    assert!(db
        .insert_many(
            "TasKy",
            "Task",
            vec![
                vec!["a".into(), "b".into(), 1.into()],
                vec!["too".into(), "short".into()],
            ],
        )
        .is_err());
    // The valid first row of the failed batch must not have been applied.
    assert_eq!(db.count("TasKy", "Task").unwrap(), before);
}

#[test]
fn invalid_scripts_leave_catalog_unchanged() {
    let db = tasky();
    let versions_before = db.versions();
    // Unknown source table.
    assert!(db
        .execute("CREATE SCHEMA VERSION X FROM TasKy WITH DROP TABLE Ghost;")
        .is_err());
    // Unknown parent version.
    assert!(db
        .execute("CREATE SCHEMA VERSION Y FROM Nope WITH CREATE TABLE t(a);")
        .is_err());
    // Column collision.
    assert!(db
        .execute("CREATE SCHEMA VERSION Z FROM TasKy WITH ADD COLUMN prio AS 0 INTO Task;")
        .is_err());
    // Parse error.
    assert!(db
        .execute("CREATE SCHEMA VERSION W WITH FROB TABLE x;")
        .is_err());
    assert_eq!(db.versions(), versions_before);
}

#[test]
fn materialize_unknown_targets_fails_cleanly() {
    let db = tasky();
    db.insert("TasKy", "Task", vec!["a".into(), "t".into(), 1.into()])
        .unwrap();
    let mat_before = db.materialization_display();
    assert!(db.execute("MATERIALIZE 'NoSuchVersion';").is_err());
    assert!(db.execute("MATERIALIZE 'TasKy.NoSuchTable';").is_err());
    assert_eq!(db.materialization_display(), mat_before);
    assert_eq!(db.count("TasKy", "Task").unwrap(), 1);
}

#[test]
fn empty_tables_round_trip_through_migrations() {
    let db = tasky();
    db.execute("MATERIALIZE 'Do!';").unwrap();
    assert_eq!(db.count("TasKy", "Task").unwrap(), 0);
    assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
    db.execute("MATERIALIZE 'TasKy';").unwrap();
    assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
}

#[test]
fn deletes_leave_no_ghosts_in_any_materialization() {
    // The separated-twin / lost-twin aux machinery must not resurrect
    // deleted rows under any physical layout.
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH \
           SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;",
    )
    .unwrap();
    for mat in ["V1", "V2", "V1"] {
        db.execute(&format!("MATERIALIZE '{mat}';")).unwrap();
        // Twin row (satisfies both split arms).
        let k = db.insert("V1", "T", vec![4.into(), 0.into()]).unwrap();
        // Separate the twins, then delete through each side in turn.
        db.update("V2", "S", k, vec![4.into(), 1.into()]).unwrap();
        db.delete("V2", "R", k).unwrap();
        // The S twin survives an R delete (lost-twin semantics)…
        assert!(db.get("V2", "S", k).unwrap().is_some(), "mat {mat}");
        db.delete("V2", "S", k).unwrap();
        // …but after deleting both, the tuple is gone everywhere.
        assert!(db.get("V1", "T", k).unwrap().is_none(), "mat {mat}");
        assert!(db.get("V2", "R", k).unwrap().is_none(), "mat {mat}");
        assert!(db.get("V2", "S", k).unwrap().is_none(), "mat {mat}");
    }
}

#[test]
fn delete_through_source_kills_both_twins() {
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH \
           SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;",
    )
    .unwrap();
    let k = db.insert("V1", "T", vec![4.into(), 0.into()]).unwrap();
    db.update("V2", "S", k, vec![4.into(), 9.into()]).unwrap(); // separate
    db.delete("V1", "T", k).unwrap();
    assert!(db.get("V2", "R", k).unwrap().is_none());
    assert!(
        db.get("V2", "S", k).unwrap().is_none(),
        "separated twin must not survive a source-side delete"
    );
}

#[test]
fn condition_violating_writes_are_preserved_by_star_aux() {
    // Writing a row into a partition that violates its condition keeps the
    // row there (R*/S* semantics) across materializations.
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH \
           SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 5;",
    )
    .unwrap();
    let k = db.insert("V2", "R", vec![2.into(), 0.into()]).unwrap();
    // Update the R row so it violates R's condition.
    db.update("V2", "R", k, vec![9.into(), 0.into()]).unwrap();
    assert!(
        db.get("V2", "R", k).unwrap().is_some(),
        "R* keeps the row in R"
    );
    assert_eq!(db.get("V1", "T", k).unwrap().unwrap()[0], Value::Int(9));
    for mat in ["V2", "V1"] {
        db.execute(&format!("MATERIALIZE '{mat}';")).unwrap();
        assert!(
            db.get("V2", "R", k).unwrap().is_some(),
            "R* row lost after MATERIALIZE '{mat}'"
        );
        // And it must NOT leak into S despite satisfying S's condition.
        assert!(db.get("V2", "S", k).unwrap().is_none());
    }
}

#[test]
fn drop_column_default_fills_new_rows_in_old_version() {
    let db = tasky();
    let k = db
        .insert("Do!", "Todo", vec!["Eve".into(), "new".into()])
        .unwrap();
    // The DROP COLUMN's DEFAULT 1 materializes in the old version.
    assert_eq!(
        db.get("TasKy", "Task", k).unwrap().unwrap()[2],
        Value::Int(1)
    );
    // And survives a migration to the Do! side (value aux).
    db.execute("MATERIALIZE 'Do!';").unwrap();
    assert_eq!(
        db.get("TasKy", "Task", k).unwrap().unwrap()[2],
        Value::Int(1)
    );
}

#[test]
fn update_in_old_version_respects_stored_new_column_values() {
    // ADD COLUMN: values written through the new version survive updates
    // made through the old version (repeatable reads via the B aux).
    let db = Inverda::new();
    db.execute(
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a); \
         CREATE SCHEMA VERSION V2 FROM V1 WITH ADD COLUMN c AS a * 2 INTO T;",
    )
    .unwrap();
    let k = db.insert("V2", "T", vec![3.into(), 99.into()]).unwrap();
    assert_eq!(db.get("V2", "T", k).unwrap().unwrap()[1], Value::Int(99));
    // Update through V1 (which cannot see c): c's stored value remains.
    db.update("V1", "T", k, vec![5.into()]).unwrap();
    let row = db.get("V2", "T", k).unwrap().unwrap();
    assert_eq!(row[0], Value::Int(5));
    assert_eq!(row[1], Value::Int(99), "stored c value must survive");
}
