//! Cross-crate integration tests: the full TasKy lifecycle across every
//! valid materialization, the Wikimedia chain, SQL generation over a live
//! catalog, and concurrent readers against a writer.

use inverda::workloads::{tasky, wikimedia};
use inverda::{Inverda, Value, WritePath};

fn tasky_db_with_data(n: usize) -> Inverda {
    let db = tasky::build();
    tasky::load_tasks(&db, n);
    db
}

fn full_snapshot(db: &Inverda) -> String {
    let mut out = String::new();
    for v in db.versions() {
        for t in db.tables_of(&v).unwrap() {
            out.push_str(&format!("{v}.{t}:\n{}", db.scan(&v, &t).unwrap()));
        }
    }
    out
}

#[test]
fn tasky_lifecycle_across_all_five_materializations() {
    let db = tasky_db_with_data(60);
    // Write through every version first.
    db.insert("Do!", "Todo", vec!["Eve".into(), "todo".into()])
        .unwrap();
    let author = db.scan("TasKy2", "Author").unwrap().keys().next().unwrap();
    db.insert(
        "TasKy2",
        "Task",
        vec!["t2 task".into(), 2.into(), Value::Int(author.0 as i64)],
    )
    .unwrap();
    let before = full_snapshot(&db);
    // Table 2's five materialization schemas, via their MATERIALIZE targets.
    for target in ["Do!", "TasKy", "TasKy2", "TasKy2.Task", "Do!.Todo", "TasKy"] {
        db.execute(&format!("MATERIALIZE '{target}';")).unwrap();
        assert_eq!(full_snapshot(&db), before, "state changed at '{target}'");
    }
}

#[test]
fn writes_after_each_migration_reach_every_version() {
    let db = tasky_db_with_data(30);
    for (i, target) in ["TasKy2", "Do!", "TasKy"].iter().enumerate() {
        db.execute(&format!("MATERIALIZE '{target}';")).unwrap();
        let k = db
            .insert(
                "TasKy",
                "Task",
                vec![
                    Value::text(format!("auth{i}")),
                    Value::text(format!("after-mig {i}")),
                    Value::Int(1),
                ],
            )
            .unwrap();
        assert!(
            db.scan("Do!", "Todo").unwrap().contains_key(k),
            "at {target}"
        );
        assert!(
            db.scan("TasKy2", "Task").unwrap().contains_key(k),
            "at {target}"
        );
        db.delete("TasKy2", "Task", k).unwrap();
        assert!(db.get("TasKy", "Task", k).unwrap().is_none(), "at {target}");
    }
}

#[test]
fn drop_schema_version_keeps_shared_data() {
    let db = tasky_db_with_data(10);
    db.execute("DROP SCHEMA VERSION Do!;").unwrap();
    assert!(!db.versions().contains(&"Do!".to_string()));
    assert_eq!(db.count("TasKy", "Task").unwrap(), 10);
    assert_eq!(db.count("TasKy2", "Task").unwrap(), 10);
    assert!(db.scan("Do!", "Todo").is_err());
}

#[test]
fn sql_delta_code_generates_for_live_catalogs() {
    // The generated SQL artifact exists for every non-local table version
    // and flips when the materialization flips.
    use inverda::bidel::{parse_script, Statement};
    use inverda::catalog::{Genealogy, MaterializationSchema};
    let mut g = Genealogy::new();
    for script in [tasky::SCRIPT_TASKY, tasky::SCRIPT_DO, tasky::SCRIPT_TASKY2] {
        for stmt in parse_script(script).unwrap().statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
    }
    for m in MaterializationSchema::enumerate_valid(&g) {
        let script = inverda::sqlgen::generate::full_script(&g, &m);
        assert!(script.contains("CREATE"), "empty delta code for {m}");
    }
}

#[test]
fn wikimedia_chain_end_to_end() {
    let db = wikimedia::install();
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(wikimedia::LOAD_VERSION)
    ))
    .unwrap();
    wikimedia::load_akan(&db, wikimedia::LOAD_VERSION, 0.001);
    let loaded = wikimedia::query_version(&db, wikimedia::LOAD_VERSION);
    assert!(loaded > 0);
    // Reads agree across the whole chain, before and after re-migration.
    assert_eq!(wikimedia::query_version(&db, 1), loaded);
    assert_eq!(wikimedia::query_version(&db, 171), loaded);
    db.execute(&format!("MATERIALIZE '{}';", wikimedia::version_name(171)))
        .unwrap();
    assert_eq!(wikimedia::query_version(&db, 1), loaded);
    assert_eq!(wikimedia::query_version(&db, 28), loaded);
}

#[test]
fn delta_and_recompute_paths_agree_end_to_end() {
    let run = |path: WritePath| {
        let db = tasky_db_with_data(20);
        db.set_write_path(path);
        db.execute("MATERIALIZE 'TasKy2';").unwrap();
        let mut keys = db.scan("TasKy", "Task").unwrap().keys().collect::<Vec<_>>();
        let mut rng = tasky::rng(3);
        tasky::run_mix(
            &db,
            "Do!",
            inverda::workloads::Mix::STANDARD,
            15,
            &mut keys,
            &mut rng,
        );
        full_snapshot(&db)
    };
    assert_eq!(run(WritePath::Delta), run(WritePath::Recompute));
}

#[test]
fn concurrent_readers_see_consistent_states() {
    use std::sync::Arc;
    let db = Arc::new(tasky_db_with_data(50));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut reads = 0usize;
            barrier.wait();
            loop {
                // Every read must observe the invariant: Do! rows are a
                // subset of TasKy rows.
                let todo = db.scan("Do!", "Todo").unwrap();
                let task = db.scan("TasKy", "Task").unwrap();
                assert!(todo.len() <= task.len());
                reads += 1;
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
            }
            reads
        }));
    }
    barrier.wait();
    for i in 0..30 {
        db.insert(
            "TasKy",
            "Task",
            vec![
                Value::text(format!("c{i}")),
                Value::text(format!("concurrent {i}")),
                Value::Int((i % 3 + 1) as i64),
            ],
        )
        .unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
    assert_eq!(db.count("TasKy", "Task").unwrap(), 80);
}

#[test]
fn scoped_writers_on_disjoint_versions() {
    // Writers on different versions serialize through the engine and all
    // writes land exactly once.
    let db = tasky_db_with_data(10);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..10 {
                db.insert(
                    "TasKy",
                    "Task",
                    vec![
                        Value::text(format!("w1-{i}")),
                        Value::text("x"),
                        Value::Int(1),
                    ],
                )
                .unwrap();
            }
        });
        s.spawn(|| {
            for i in 0..10 {
                db.insert(
                    "Do!",
                    "Todo",
                    vec![Value::text(format!("w2-{i}")), Value::text("y")],
                )
                .unwrap();
            }
        });
    });
    assert_eq!(db.count("TasKy", "Task").unwrap(), 30);
    assert_eq!(db.count("Do!", "Todo").unwrap(), 10 + 10 + 4); // prio-1 seeds
}
