//! Criterion micro-benchmarks for the kernels behind the paper's figures:
//! local vs propagated reads (Fig. 8/11/13), write propagation paths
//! (generated-trigger deltas vs view recomputation — the ablation called
//! out in DESIGN.md), point lookups through view chains, and the Database
//! Evolution Operation itself (Sec. 8.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use inverda_core::{Inverda, WritePath};
use inverda_workloads::tasky;

const N: usize = 2_000;

fn db_with_data(evolved: bool) -> Inverda {
    let db = tasky::build();
    tasky::load_tasks(&db, N);
    if evolved {
        db.execute("MATERIALIZE 'TasKy2';").unwrap();
    }
    db
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_reads");
    let initial = db_with_data(false);
    let evolved = db_with_data(true);
    g.bench_function("tasky_local", |b| {
        b.iter(|| initial.scan("TasKy", "Task").unwrap().len())
    });
    g.bench_function("tasky2_through_chain", |b| {
        b.iter(|| initial.scan("TasKy2", "Task").unwrap().len())
    });
    g.bench_function("tasky2_local", |b| {
        b.iter(|| evolved.scan("TasKy2", "Task").unwrap().len())
    });
    g.bench_function("tasky_through_chain", |b| {
        b.iter(|| evolved.scan("TasKy", "Task").unwrap().len())
    });
    g.finish();
}

fn bench_point_lookups(c: &mut Criterion) {
    let mut g = c.benchmark_group("point_lookups");
    let initial = db_with_data(false);
    let key = initial.scan("Do!", "Todo").unwrap().keys().next().unwrap();
    g.bench_function("do_get_through_two_smos", |b| {
        b.iter(|| initial.get("Do!", "Todo", key).unwrap())
    });
    let local_key = initial
        .scan("TasKy", "Task")
        .unwrap()
        .keys()
        .next()
        .unwrap();
    g.bench_function("tasky_get_local", |b| {
        b.iter(|| initial.get("TasKy", "Task", local_key).unwrap())
    });
    g.finish();
}

fn bench_write_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_write_paths");
    g.sample_size(10);
    for (label, path) in [
        ("delta_rules", WritePath::Delta),
        ("recompute", WritePath::Recompute),
    ] {
        g.bench_function(format!("insert_via_do_{label}"), |b| {
            b.iter_batched(
                || {
                    let db = db_with_data(false);
                    db.set_write_path(path);
                    db
                },
                |db| {
                    for i in 0..10 {
                        db.insert(
                            "Do!",
                            "Todo",
                            vec![
                                format!("author{i:03}").into(),
                                format!("bench todo {i}").into(),
                            ],
                        )
                        .unwrap();
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_evolution_op(c: &mut Criterion) {
    let mut g = c.benchmark_group("evolution_op");
    g.bench_function("create_three_versions", |b| b.iter(tasky::build));
    g.finish();
}

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    g.bench_function("materialize_tasky2_and_back", |b| {
        b.iter_batched(
            || db_with_data(false),
            |db| {
                db.execute("MATERIALIZE 'TasKy2';").unwrap();
                db.execute("MATERIALIZE 'TasKy';").unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reads,
    bench_point_lookups,
    bench_write_paths,
    bench_evolution_op,
    bench_migration
);
criterion_main!(benches);
