//! # inverda-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 8). Each `bin/` target prints one artifact:
//!
//! | binary        | artifact  |
//! |---------------|-----------|
//! | `table2`      | Table 2 — valid materialization schemas of TasKy |
//! | `table3`      | Table 3 — BiDEL vs SQL code sizes |
//! | `table4`      | Table 4 — Wikimedia SMO histogram |
//! | `fig8`        | Figure 8 — generated vs handwritten delta code |
//! | `fig9`        | Figure 9 — fixed vs flexible materialization (TasKy→TasKy2) |
//! | `fig10`       | Figure 10 — three-version adoption (Do!→TasKy2) |
//! | `fig11`       | Figure 11 — workloads × all materializations |
//! | `fig12`       | Figure 12 — Wikimedia optimization potential |
//! | `fig13`       | Figure 13 — two-SMO scaling & calculated-vs-measured |
//! | `gen_latency` | Section 8.1 — delta-code generation latency |
//! | `formal`      | Section 5 / Appendix A — mechanical bidirectionality proofs |
//!
//! Scale knobs (environment): `INVERDA_TASKS` (default 10 000; paper
//! 100 000), `INVERDA_SLICES`, `INVERDA_OPS`, `INVERDA_WIKI_SCALE`
//! (default 0.01; paper 1.0). Absolute times differ from the paper's
//! PostgreSQL setup; the *shapes* (who wins, crossovers, asymmetries) are
//! the reproduction target — see EXPERIMENTS.md.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Read an environment scale knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a float environment knob.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Time a closure, returning (duration, result).
pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Median duration of `reps` runs of `f` (result discarded).
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let d = start.elapsed();
            std::hint::black_box(out);
            d
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a header for a reproduction artifact.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_default() {
        assert_eq!(env_usize("INVERDA_NO_SUCH_VAR", 7), 7);
        assert_eq!(env_f64("INVERDA_NO_SUCH_VAR", 0.5), 0.5);
    }

    #[test]
    fn median_is_stable() {
        let d = median_time(3, || 21 + 21);
        assert!(d < Duration::from_secs(1));
        assert!(!ms(d).is_empty());
    }
}
