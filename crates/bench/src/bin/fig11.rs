//! Figure 11: access performance of every TasKy schema version under each
//! of the five valid materialization schemas (Table 2, including the
//! intermediate stages \[S] and \[D]), for three workloads
//! ((a) standard mix, (b) 100 % reads, (c) 100 % inserts).

use inverda_bench::{banner, env_usize, time};
use inverda_catalog::MaterializationSchema;
use inverda_workloads::tasky::{self, run_mix};
use inverda_workloads::Mix;

/// The five valid materialization schemas with the paper's abbreviations
/// (\[S] = SPLIT, \[DC] = DROP COLUMN, \[D] = DECOMPOSE, \[RC] = RENAME COLUMN),
/// ordered as in Figure 11's x-axis (Do! side → initial → TasKy2 side).
fn materializations(db: &inverda_core::Inverda) -> Vec<(String, MaterializationSchema)> {
    let mut all = db.with_genealogy(|g| {
        MaterializationSchema::enumerate_valid(g)
            .into_iter()
            .map(|m| {
                let mut tags: Vec<&str> = m
                    .smos()
                    .map(|id| match g.smo(id).derived.kind {
                        "SPLIT" => "S",
                        "DROP COLUMN" => "DC",
                        "DECOMPOSE" => "D",
                        "RENAME COLUMN" => "RC",
                        other => other,
                    })
                    .collect();
                tags.sort();
                (format!("[{}]", tags.join(",")), m)
            })
            .collect::<Vec<_>>()
    });
    // Order: [DC,S], [S], [], [D], [D,RC].
    let order = ["[DC,S]", "[S]", "[]", "[D]", "[D,RC]"];
    all.sort_by_key(|(label, _)| order.iter().position(|o| o == label).unwrap_or(usize::MAX));
    all
}

fn main() {
    let n = env_usize("INVERDA_TASKS", 5_000);
    let ops = env_usize("INVERDA_OPS", 40);
    banner(
        &format!("Workloads on all 5 materializations of TasKy ({n} tasks, {ops} ops/cell)"),
        "Figure 11 (a/b/c)",
    );

    for (mix, mix_label) in [
        (Mix::STANDARD, "(a) mix 50r/20i/20u/10d"),
        (Mix::READ_ONLY, "(b) 100% reads"),
        (Mix::INSERT_ONLY, "(c) 100% inserts"),
    ] {
        println!("\n--- {mix_label} --- QET per version [s]");
        println!(
            "{:<12} {:>12} {:>12} {:>12}",
            "material.", "TasKy", "Do!", "TasKy2"
        );
        let reference = tasky::build();
        for (label, m) in materializations(&reference) {
            let db = tasky::build();
            tasky::load_tasks(&db, n);
            // Rebuild the schema on this db's own SMO ids (identical
            // genealogy => identical id assignment).
            db.materialize_exact(m).unwrap();
            let mut rng = tasky::rng(7);
            let mut row = format!("{label:<12}");
            for version in ["TasKy", "Do!", "TasKy2"] {
                let table = tasky::main_table(version);
                let mut keys = db.scan(version, table).unwrap().keys().collect::<Vec<_>>();
                let (d, _) = time(|| run_mix(&db, version, mix, ops, &mut keys, &mut rng));
                row.push_str(&format!(" {:>12.3}", d.as_secs_f64()));
            }
            println!("{row}");
        }
    }
    println!("\nPaper's shape: each version is fastest when its own table versions are");
    println!("materialized (x-axis minima at [DC,S] for Do!, [] for TasKy, [D,RC] for");
    println!("TasKy2); the globally optimal schema depends on the workload mix.");
}
