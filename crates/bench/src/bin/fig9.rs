//! Figure 9: accumulated propagation overhead while the workload shifts
//! from TasKy to TasKy2 (Technology Adoption Life Cycle), for the two fixed
//! materializations vs InVerDa's flexible materialization (which migrates
//! once the evolved side dominates; migration cost included).

use inverda_bench::{banner, env_usize, time};
use inverda_core::Inverda;
use inverda_workloads::adoption::adoption_fraction;
use inverda_workloads::tasky::{self, run_mix};
use inverda_workloads::Mix;

struct Run {
    label: &'static str,
    flexible: bool,
    start_evolved: bool,
}

fn main() {
    let n = env_usize("INVERDA_TASKS", 5_000);
    let slices = env_usize("INVERDA_SLICES", 20);
    let ops = env_usize("INVERDA_OPS", 30);
    banner(
        &format!(
            "Flexible materialization, TasKy→TasKy2 shift ({n} tasks, {slices} slices × {ops} ops)"
        ),
        "Figure 9",
    );

    let runs = [
        Run {
            label: "fixed initial materialization",
            flexible: false,
            start_evolved: false,
        },
        Run {
            label: "fixed evolved materialization",
            flexible: false,
            start_evolved: true,
        },
        Run {
            label: "flexible materialization",
            flexible: true,
            start_evolved: false,
        },
    ];

    println!("slice  newer-version-share  accumulated overhead [s]");
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    for run in &runs {
        let db: Inverda = tasky::build();
        tasky::load_tasks(&db, n);
        if run.start_evolved {
            db.execute("MATERIALIZE 'TasKy2';").unwrap();
        }
        let mut rng = tasky::rng(42);
        let mut keys_old = db.scan("TasKy", "Task").unwrap().keys().collect::<Vec<_>>();
        let mut keys_new = keys_old.clone();
        let mut acc = 0.0f64;
        let mut series = Vec::with_capacity(slices);
        let mut migrated = run.start_evolved;
        for slice in 0..slices {
            let share = adoption_fraction(slice, slices);
            if run.flexible && !migrated && share > 0.5 {
                // DBA flips the switch: one line, cost charged to the curve.
                let (d, _) = time(|| db.execute("MATERIALIZE 'TasKy2';").unwrap());
                acc += d.as_secs_f64();
                migrated = true;
            }
            let new_ops = (ops as f64 * share).round() as usize;
            let old_ops = ops - new_ops;
            let (d, _) = time(|| {
                run_mix(
                    &db,
                    "TasKy",
                    Mix::STANDARD,
                    old_ops,
                    &mut keys_old,
                    &mut rng,
                );
                run_mix(
                    &db,
                    "TasKy2",
                    Mix::STANDARD,
                    new_ops,
                    &mut keys_new,
                    &mut rng,
                );
            });
            acc += d.as_secs_f64();
            series.push(acc);
        }
        curves.push((run.label.to_string(), series));
    }
    for slice in 0..slices {
        let share = adoption_fraction(slice, slices);
        print!("{slice:>5}  {share:>19.2}");
        for (_, series) in &curves {
            print!("  {:>10.3}", series[slice]);
        }
        println!();
    }
    println!(
        "\ncolumns: {}",
        curves
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    for (label, series) in &curves {
        println!(
            "final accumulated overhead, {label}: {:.3} s",
            series.last().unwrap()
        );
    }
    println!("\nPaper's shape: the flexible curve tracks the cheaper fixed curve on");
    println!("each side of the adoption midpoint and ends below both fixed curves.");
}
