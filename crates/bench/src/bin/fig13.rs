//! Figure 13 + the two-SMO study of Section 8.3: scaling behaviour of
//! two-SMO chains and the calculated-vs-measured combination check.
//!
//! For each pair `V1 –SMO1→ V2 –SMO2→ V3`:
//!   t_local   = read V2.R with V2 materialized
//!   t1        = read V2.R with V1 materialized (one hop)
//!   t2        = read V3   with V2 materialized (one hop)
//!   measured  = read V3   with V1 materialized (two hops)
//!   calculated = t1 + t2 − t_local   (the data for SMO2 is already "in
//!                memory" after SMO1, Section 8.3)

use inverda_bench::{banner, env_usize, median_time};
use inverda_workloads::micro::{build_pair, PairSmo, FIRSTS, SECONDS};

fn measure(first: PairSmo, second: PairSmo, n: usize) -> (f64, f64, f64, f64, String) {
    let s = build_pair(first, second, n);
    let db = &s.db;
    db.execute("MATERIALIZE 'V2';").unwrap();
    let t_local = median_time(3, || db.scan("V2", s.v2_table).unwrap().len()).as_secs_f64();
    let t2 = median_time(3, || db.scan("V3", s.v3_table).unwrap().len()).as_secs_f64();
    db.execute("MATERIALIZE 'V1';").unwrap();
    let t1 = median_time(3, || db.scan("V2", s.v2_table).unwrap().len()).as_secs_f64();
    let measured = median_time(3, || db.scan("V3", s.v3_table).unwrap().len()).as_secs_f64();
    (t_local, t1, t2, measured, s.label)
}

fn main() {
    let base = env_usize("INVERDA_PAIR_ROWS", 2_000);
    banner(
        "Two-SMO chains: scaling and combination (2nd SMO = ADD COLUMN sweep)",
        "Figure 13 / Section 8.3",
    );

    // --- Scaling sweep with ADD COLUMN as 2nd SMO (the figure).
    println!("tuples | pair            | local [ms] | 1 SMO [ms] | 2 SMOs measured | calculated");
    for &first in FIRSTS {
        for n in [base / 4, base / 2, base] {
            let (t_local, t1, t2, measured, label) = measure(first, PairSmo::AddColumn, n);
            let calculated = (t1 + t2 - t_local).max(0.0);
            println!(
                "{n:>6} | {label:<15} | {:>10.2} | {:>10.2} | {:>15.2} | {:>10.2}",
                t_local * 1e3,
                t1 * 1e3,
                measured * 1e3,
                calculated * 1e3
            );
        }
    }

    // --- All pairs: average speedup of local access and average deviation
    // of calculated vs measured (paper: speedup 2.1×, deviation 6.3 %).
    let mut speedups = Vec::new();
    let mut deviations = Vec::new();
    for &first in FIRSTS {
        for &second in SECONDS {
            let (t_local, t1, t2, measured, _label) = measure(first, second, base / 2);
            if t_local > 0.0 && measured > 0.0 {
                speedups.push(t1 / t_local);
                let calculated = t1 + t2 - t_local;
                deviations.push(((measured - calculated) / measured).abs());
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "average speedup of local access over one-SMO propagation: {:.2}x  (paper: 2.1x)",
        avg(&speedups)
    );
    println!(
        "average |measured − calculated| / measured over all {} pairs: {:.1} %  (paper: 6.3 %)",
        speedups.len(),
        avg(&deviations) * 100.0
    );
    println!("\nPaper's shape: local access is consistently faster; combining two SMOs");
    println!("costs roughly the sum of the individual hops — no superlinear penalty.");
}
