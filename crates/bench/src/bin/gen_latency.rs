//! Section 8.1: latency of the Database Evolution Operation (delta-code
//! generation). The paper: creating TasKy took 154 ms, evolving to TasKy2
//! 230 ms, to Do! 177 ms — all well under one second; complexity O(N + M).

use inverda_bench::{banner, ms, time};
use inverda_core::Inverda;
use inverda_workloads::tasky;

fn main() {
    banner("Delta code generation latency", "Section 8.1");
    let db = Inverda::new();
    let (t_init, _) = time(|| db.execute(tasky::SCRIPT_TASKY).unwrap());
    let (t_tasky2, _) = time(|| db.execute(tasky::SCRIPT_TASKY2).unwrap());
    let (t_do, _) = time(|| db.execute(tasky::SCRIPT_DO).unwrap());
    println!("create TasKy:          {} ms   (paper: 154 ms)", ms(t_init));
    println!(
        "evolve to TasKy2:      {} ms   (paper: 230 ms)",
        ms(t_tasky2)
    );
    println!("evolve to Do!:         {} ms   (paper: 177 ms)", ms(t_do));

    // O(N + M): evolution latency should stay flat as unrelated versions
    // accumulate.
    let mut prev = "TasKy2".to_string();
    let mut samples = Vec::new();
    for i in 0..40 {
        let name = format!("Chain{i}");
        let script = format!(
            "CREATE SCHEMA VERSION {name} FROM {prev} WITH ADD COLUMN extra{i} AS 0 INTO Task;"
        );
        let (d, _) = time(|| db.execute(&script).unwrap());
        samples.push(d);
        prev = name;
    }
    let first10: f64 = samples[..10].iter().map(|d| d.as_secs_f64()).sum::<f64>() / 10.0;
    let last10: f64 = samples[30..].iter().map(|d| d.as_secs_f64()).sum::<f64>() / 10.0;
    println!(
        "evolution op latency, 40-step chain: first-10 avg {:.3} ms, last-10 avg {:.3} ms",
        first10 * 1e3,
        last10 * 1e3
    );
    println!("(flat curve = O(N + M): delta code is generated locally per SMO)");
}
