//! Table 4: SMO-type histogram of the 171-version Wikimedia evolution.

use inverda_bench::banner;
use inverda_workloads::wikimedia;

fn main() {
    banner("SMOs in the Wikimedia database evolution", "Table 4");
    let db = inverda_core::Inverda::new(); // histogram is derived from the scripts
    let hist = wikimedia::smo_histogram(&db);
    let order = [
        ("CREATE TABLE", 42),
        ("DROP TABLE", 10),
        ("RENAME TABLE", 1),
        ("ADD COLUMN", 95),
        ("DROP COLUMN", 21),
        ("RENAME COLUMN", 36),
        ("JOIN", 0),
        ("DECOMPOSE", 4),
        ("MERGE", 2),
        ("SPLIT", 0),
    ];
    println!("{:<15} {:>10} {:>8}", "SMO", "occurrences", "paper");
    let mut total = 0usize;
    for (kind, paper) in order {
        let ours = hist.get(kind).copied().unwrap_or(0);
        total += ours;
        let mark = if ours == paper { "" } else { "  <- MISMATCH" };
        println!("{kind:<15} {ours:>10} {paper:>8}{mark}");
    }
    println!("{:<15} {total:>10} {:>8}", "total", 211);
}
