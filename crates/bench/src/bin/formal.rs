//! Section 5 / Appendix A: mechanical bidirectionality proofs.
//!
//! Composes γ_src ∘ γ_tgt (condition 27) and γ_tgt ∘ γ_src (condition 26)
//! for every syntactically verifiable SMO and simplifies with the paper's
//! Lemmas 1–5 until only identity rules remain, printing the resulting rule
//! sets and (with `INVERDA_PROOF_TRACE=1`) the full derivation transcript.

use inverda_bench::banner;
use inverda_bidel::ast::{DecomposeKind, JoinKind, Smo, SplitArm, TableSig};
use inverda_bidel::semantics::derive_smo;
use inverda_bidel::verify::{syntactically_verifiable, verify_round_trip, RoundTrip};
use inverda_storage::Expr;
use std::collections::BTreeMap;

fn schemas(entries: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
    entries
        .iter()
        .map(|(t, cols)| (t.to_string(), cols.iter().map(|c| c.to_string()).collect()))
        .collect()
}

fn main() {
    banner(
        "Mechanical bidirectionality proofs (Lemmas 1-5)",
        "Section 5, Appendix A/B",
    );
    let trace = std::env::var("INVERDA_PROOF_TRACE").is_ok();

    type Case = (&'static str, Smo, BTreeMap<String, Vec<String>>);
    let cases: Vec<Case> = vec![
        (
            "SPLIT (two arms, overlapping conditions)",
            Smo::Split {
                table: "T".into(),
                first: SplitArm {
                    table: "R".into(),
                    condition: Expr::col("a").lt(Expr::lit(5)),
                },
                second: Some(SplitArm {
                    table: "S".into(),
                    condition: Expr::col("a").ge(Expr::lit(3)),
                }),
            },
            schemas(&[("T", &["a", "b"])]),
        ),
        (
            "MERGE",
            Smo::Merge {
                first: SplitArm {
                    table: "R".into(),
                    condition: Expr::col("a").lt(Expr::lit(0)),
                },
                second: SplitArm {
                    table: "S".into(),
                    condition: Expr::col("a").ge(Expr::lit(0)),
                },
                into: "T".into(),
            },
            schemas(&[("R", &["a"]), ("S", &["a"])]),
        ),
        (
            "ADD COLUMN",
            Smo::AddColumn {
                table: "R".into(),
                column: "b".into(),
                function: Expr::col("a"),
            },
            schemas(&[("R", &["a"])]),
        ),
        (
            "DROP COLUMN",
            Smo::DropColumn {
                table: "R".into(),
                column: "b".into(),
                default: Expr::lit(0),
            },
            schemas(&[("R", &["a", "b"])]),
        ),
        (
            "JOIN ON PK",
            Smo::Join {
                left: "S".into(),
                right: "T".into(),
                into: "R".into(),
                on: JoinKind::Pk,
                outer: false,
            },
            schemas(&[("S", &["a"]), ("T", &["b"])]),
        ),
        (
            "DECOMPOSE ON PK",
            Smo::Decompose {
                table: "R".into(),
                first: TableSig {
                    name: "S".into(),
                    columns: vec!["a".into()],
                },
                second: TableSig {
                    name: "T".into(),
                    columns: vec!["b".into()],
                },
                on: DecomposeKind::Pk,
            },
            schemas(&[("R", &["a", "b"])]),
        ),
        (
            "RENAME COLUMN",
            Smo::RenameColumn {
                table: "A".into(),
                column: "x".into(),
                to: "y".into(),
            },
            schemas(&[("A", &["x"])]),
        ),
    ];

    let mut proved = 0usize;
    let mut total = 0usize;
    for (label, smo, src) in cases {
        let derived = derive_smo(&smo, &src).expect("derivable");
        if !syntactically_verifiable(&derived) {
            println!("\n### {label}: uses id generators — verified semantically (proptest)");
            continue;
        }
        for rt in [RoundTrip::FromSource, RoundTrip::FromTarget] {
            total += 1;
            let report = verify_round_trip(&derived, rt);
            let verdict = if report.is_proved() {
                proved += 1;
                "PROVED identity"
            } else {
                "NOT proved"
            };
            println!("\n### {label} — {rt:?}: {verdict}");
            println!("simplified composition:");
            for rule in &report.simplified.rules {
                println!("  {rule}");
            }
            if !report.residual_aux_rules.is_empty() {
                println!("residual aux rules (information the round trip stores):");
                for r in &report.residual_aux_rules {
                    println!("  {r}");
                }
            }
            if trace {
                println!("derivation ({} steps):", report.derivation.steps.len());
                for step in &report.derivation.steps {
                    println!("  - {step}");
                }
            } else {
                println!(
                    "({} lemma applications; set INVERDA_PROOF_TRACE=1 for the transcript)",
                    report.derivation.steps.len()
                );
            }
        }
    }
    println!("\n{proved}/{total} round trips mechanically proved.");
    println!("Id-generating SMOs (FK/cond decompose, cond join) are covered by the");
    println!("semantic property tests in crates/core/tests/roundtrip_laws.rs.");
}
