//! Figure 12: optimization potential on the Wikimedia history — read QET on
//! two query versions (28th and 171st) under three materializations (1st,
//! 109th, 171st). Data is loaded at the 109th version (the paper's Akan
//! wiki in v16524).

use inverda_bench::{banner, env_f64, median_time, ms};
use inverda_workloads::wikimedia::{self, LOAD_VERSION, MAT_VERSIONS, QUERY_VERSIONS};

fn main() {
    // 10% Akan scale by default since the snapshot store landed (1% before);
    // the chain-length timings at this default are recorded in
    // EXPERIMENTS.md. Full scale (1.0) works but the initial load and the
    // three whole-dataset migrations dominate the run time.
    let scale = env_f64("INVERDA_WIKI_SCALE", 0.1);
    banner(
        &format!(
            "Wikimedia: queries under different materializations (Akan scale {scale}: \
             ~{} pages, ~{} links)",
            (wikimedia::AKAN_PAGES as f64 * scale) as usize,
            (wikimedia::AKAN_LINKS as f64 * scale) as usize
        ),
        "Figure 12",
    );

    println!("installing 171 schema versions…");
    let db = wikimedia::install();
    // Load locally at the 109th version (cheap), then migrate around.
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(LOAD_VERSION)
    ))
    .unwrap();
    wikimedia::load_akan(&db, LOAD_VERSION, scale);

    println!(
        "\n{:<24} {:>22} {:>22}",
        "materialized version",
        format!("queries on v{:03}", QUERY_VERSIONS[0]),
        format!("queries on v{:03}", QUERY_VERSIONS[1])
    );
    println!("{:<24} {:>22} {:>22}", "", "cold / warm", "cold / warm");
    // Per (materialization, query version): the point probe through the
    // query API, cold (pushdown seeds through the mapping chain before any
    // scan warmed the store) and warm (index probe) — reported next to the
    // full-scan QET it replaces.
    let mut probe_rows = Vec::new();
    for mat in MAT_VERSIONS {
        db.execute(&format!("MATERIALIZE '{}';", wikimedia::version_name(mat)))
            .unwrap();
        let mut cells = Vec::new();
        let mut probe_cells = Vec::new();
        for q in QUERY_VERSIONS {
            // MATERIALIZE cleared the snapshot store. The pushdown probe
            // runs first — it materializes nothing, so the QET scan right
            // after is still a genuinely cold chain resolution (the
            // paper's shape); repeated scans are served warm from the
            // store, and the warm probe hits its cached index.
            let probe_cold = median_time(1, || wikimedia::probe_version(&db, q));
            let cold = median_time(1, || wikimedia::query_version(&db, q));
            let warm = median_time(3, || wikimedia::query_version(&db, q));
            let probe_warm = median_time(3, || wikimedia::probe_version(&db, q));
            cells.push(format!("{} / {} ms", ms(cold), ms(warm)));
            probe_cells.push(format!(
                "{} / {} vs {} ms",
                ms(probe_cold),
                ms(probe_warm),
                ms(cold)
            ));
        }
        println!(
            "{:<24} {:>22} {:>22}",
            wikimedia::version_name(mat),
            cells[0],
            cells[1]
        );
        probe_rows.push((mat, probe_cells));
    }
    println!("\nPaper's shape (cold column): queries are fastest when the materialized");
    println!("version is evolution-wise close; the spread grows to orders of magnitude");
    println!("with the number of ADD COLUMN SMOs on the path (forward joins vs backward");
    println!("projections cause the asymmetry). The warm column shows the same queries");
    println!("served from the cross-statement snapshot store.");

    println!(
        "\npoint probe (title = 'Page_{}') through the query API: pushdown cold / warm",
        wikimedia::PROBE_TITLE_I
    );
    println!("vs the full-scan QET the probe replaces:");
    println!(
        "{:<24} {:>30} {:>30}",
        "materialized version",
        format!("probe v{:03}", QUERY_VERSIONS[0]),
        format!("probe v{:03}", QUERY_VERSIONS[1])
    );
    for (mat, cells) in probe_rows {
        println!(
            "{:<24} {:>30} {:>30}",
            wikimedia::version_name(mat),
            cells[0],
            cells[1]
        );
    }
    println!("\nA selective filtered read no longer pays the chain-materialization QET:");
    println!("cold, the equality predicate is pushed through the γ mappings (seeded");
    println!("evaluation touches only matching rows); warm, it probes a cached index.");
}
