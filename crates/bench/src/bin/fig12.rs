//! Figure 12: optimization potential on the Wikimedia history — read QET on
//! two query versions (28th and 171st) under three materializations (1st,
//! 109th, 171st). Data is loaded at the 109th version (the paper's Akan
//! wiki in v16524).

use inverda_bench::{banner, env_f64, median_time, ms};
use inverda_workloads::wikimedia::{self, LOAD_VERSION, MAT_VERSIONS, QUERY_VERSIONS};

fn main() {
    let scale = env_f64("INVERDA_WIKI_SCALE", 0.01);
    banner(
        &format!(
            "Wikimedia: queries under different materializations (Akan scale {scale}: \
             ~{} pages, ~{} links)",
            (wikimedia::AKAN_PAGES as f64 * scale) as usize,
            (wikimedia::AKAN_LINKS as f64 * scale) as usize
        ),
        "Figure 12",
    );

    println!("installing 171 schema versions…");
    let db = wikimedia::install();
    // Load locally at the 109th version (cheap), then migrate around.
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(LOAD_VERSION)
    ))
    .unwrap();
    wikimedia::load_akan(&db, LOAD_VERSION, scale);

    println!(
        "\n{:<24} {:>16} {:>16}",
        "materialized version",
        format!("queries on v{:03}", QUERY_VERSIONS[0]),
        format!("queries on v{:03}", QUERY_VERSIONS[1])
    );
    for mat in MAT_VERSIONS {
        db.execute(&format!("MATERIALIZE '{}';", wikimedia::version_name(mat)))
            .unwrap();
        let mut cells = Vec::new();
        for q in QUERY_VERSIONS {
            let d = median_time(3, || wikimedia::query_version(&db, q));
            cells.push(format!("{} ms", ms(d)));
        }
        println!(
            "{:<24} {:>16} {:>16}",
            wikimedia::version_name(mat),
            cells[0],
            cells[1]
        );
    }
    println!("\nPaper's shape: queries are fastest when the materialized version is");
    println!("evolution-wise close; the spread grows to orders of magnitude with the");
    println!("number of ADD COLUMN SMOs on the path (forward joins vs backward");
    println!("projections cause the asymmetry).");
}
