//! Table 2: the five valid materialization schemas of the TasKy example
//! and the physical table schema each implies.

use inverda_bench::banner;
use inverda_bidel::{parse_script, Statement};
use inverda_catalog::{Genealogy, MaterializationSchema};
use inverda_workloads::tasky;

fn main() {
    banner("Valid materialization schemas of TasKy", "Table 2");
    let mut g = Genealogy::new();
    for script in [tasky::SCRIPT_TASKY, tasky::SCRIPT_DO, tasky::SCRIPT_TASKY2] {
        for stmt in parse_script(script).unwrap().statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
    }
    let all = MaterializationSchema::enumerate_valid(&g);
    println!("{:<40} P (physical tables)", "M (materialized SMOs)");
    for m in &all {
        let smo_names: Vec<String> = m
            .smos()
            .map(|id| g.smo(id).derived.kind.to_string())
            .collect();
        let m_label = if smo_names.is_empty() {
            "{} (initial)".to_string()
        } else {
            format!("{{{}}}", smo_names.join(", "))
        };
        let p: Vec<String> = m
            .physical_tables(&g)
            .into_iter()
            .map(|tv| {
                let t = g.table_version(tv);
                format!("{}-{}", t.name, t.rel)
            })
            .collect();
        println!("{:<40} {{{}}}", m_label, p.join(", "));
    }
    println!(
        "\ntotal: {} valid materialization schemas (paper: 5)",
        all.len()
    );
}
