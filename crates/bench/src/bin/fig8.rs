//! Figure 8: query execution time of reads and 100 writes on TasKy and
//! TasKy2, comparing InVerDa-generated delta code with the hand-written
//! baseline, under the initial and the evolved materialization.

use inverda_bench::{banner, env_usize, median_time, ms};
use inverda_core::Inverda;
use inverda_storage::Value;
use inverda_workloads::tasky::{self, HandwrittenTasky, Layout};

fn generated_db(evolved: bool, n: usize) -> Inverda {
    let db = tasky::build();
    tasky::load_tasks(&db, n);
    if evolved {
        db.execute("MATERIALIZE 'TasKy2';").unwrap();
    }
    db
}

fn main() {
    let n = env_usize("INVERDA_TASKS", 10_000);
    let writes = env_usize("INVERDA_WRITES", 100);
    banner(
        &format!("Overhead of generated delta code ({n} tasks, {writes} writes)"),
        "Figure 8",
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>14}",
        "QET [ms]", "read TasKy", "read TasKy2", "w writes TasKy", "w writes TasKy2"
    );

    for (label, evolved) in [("initial", false), ("evolved", true)] {
        // --- Hand-written baseline.
        let hw = HandwrittenTasky::new(if evolved {
            Layout::Evolved
        } else {
            Layout::Initial
        });
        hw.load(n);
        let r1 = median_time(3, || hw.read_tasky().len());
        let r2 = median_time(3, || hw.read_tasky2().len());
        let w1 = median_time(1, || {
            for i in 0..writes {
                let k = hw.insert_tasky(vec![
                    Value::text(format!("author{:03}", i % 50)),
                    Value::text(format!("hw task {i}")),
                    Value::Int(1),
                ]);
                std::hint::black_box(k);
            }
        });
        let w2 = median_time(1, || {
            for i in 0..writes {
                let k = hw.insert_tasky2(
                    Value::text(format!("hw2 task {i}")),
                    Value::Int(2),
                    Value::text(format!("author{:03}", i % 50)),
                );
                std::hint::black_box(k);
            }
        });
        println!(
            "{:<26} {:>14} {:>14} {:>14} {:>14}",
            format!("SQL (handwritten), {label}"),
            ms(r1),
            ms(r2),
            ms(w1),
            ms(w2)
        );

        // --- InVerDa-generated delta code.
        let db = generated_db(evolved, n);
        let r1 = median_time(3, || db.scan("TasKy", "Task").unwrap().len());
        let r2 = median_time(3, || db.scan("TasKy2", "Task").unwrap().len());
        let w1 = median_time(1, || {
            for i in 0..writes {
                db.insert("TasKy", "Task", tasky::task_row(1_000_000 + i))
                    .unwrap();
            }
        });
        let author_id = db
            .scan("TasKy2", "Author")
            .unwrap()
            .keys()
            .next()
            .map(|k| k.0 as i64)
            .unwrap();
        let w2 = median_time(1, || {
            for i in 0..writes {
                db.insert(
                    "TasKy2",
                    "Task",
                    vec![
                        Value::text(format!("gen task {i}")),
                        Value::Int(2),
                        Value::Int(author_id),
                    ],
                )
                .unwrap();
            }
        });
        println!(
            "{:<26} {:>14} {:>14} {:>14} {:>14}",
            format!("BiDEL (generated), {label}"),
            ms(r1),
            ms(r2),
            ms(w1),
            ms(w2)
        );
    }
    println!();
    println!("Paper's shape: generated ≲ handwritten + small overhead (≈4 %);");
    println!("reading a version whose tables are materialized is ~2× faster than");
    println!("propagating through the SMO chain.");
}
