//! Evaluator hot-path benchmark: compiled engine vs the naive reference
//! interpreter, plus an end-to-end TasKy write-propagation round.
//!
//! Emits `BENCH_eval.json` (current directory) so future PRs have a
//! regression baseline — see EXPERIMENTS.md. Scale knobs:
//! `INVERDA_EVAL_ROWS` (microbench relation size, default 2000),
//! `INVERDA_TASKS` (TasKy load, default 10 000), `INVERDA_EVAL_WRITES`
//! (writes per propagation round, default 100), `INVERDA_EVAL_REPS`
//! (median-of reps, default 5).

use inverda_bench::{banner, env_f64, env_usize, median_time};
use inverda_core::{LogicalWrite, WritePath};
use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_datalog::eval::{evaluate_compiled, CompiledRuleSet, Evaluator, MapEdb};
use inverda_datalog::{naive, SkolemRegistry};
use inverda_storage::{Expr, Key, Relation, Value};
use inverda_workloads::tasky;
use parking_lot::Mutex;

use std::collections::BTreeMap;
use std::time::Duration;

fn registry() -> Mutex<SkolemRegistry> {
    Mutex::new(SkolemRegistry::new())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Full-scan join: H(q, n) ← B(q, n), A(_, n). The second atom never has a
/// bound key, so the naive engine scans A per B row (quadratic) while the
/// compiled engine probes a column index (linear).
fn bench_full_scan_join(rows: usize, reps: usize) -> (f64, f64, usize) {
    let distinct = (rows / 4).max(1) as i64;
    let mut a = Relation::with_columns("A", ["n"]);
    let mut b = Relation::with_columns("B", ["n"]);
    for i in 0..rows as u64 {
        a.insert(Key(i), vec![Value::Int(i as i64 % distinct)])
            .unwrap();
        b.insert(
            Key(1_000_000 + i),
            vec![Value::Int((i as i64 + 1) % distinct)],
        )
        .unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(a).add(b);
    let rules = RuleSet::new(vec![Rule::new(
        Atom::vars("H", &["q", "n"]),
        vec![
            Literal::Pos(Atom::vars("B", &["q", "n"])),
            Literal::Pos(Atom::new("A", vec![Term::Anon, Term::var("n")])),
        ],
    )]);
    let crs = CompiledRuleSet::compile(&rules).expect("safe rules");

    let ids = registry();
    let out = evaluate_compiled(&crs, &edb, &ids, &BTreeMap::new()).unwrap();
    let derived = out["H"].len();
    let ids2 = registry();
    let check = naive::evaluate(&rules, &edb, &ids2, &BTreeMap::new()).unwrap();
    assert_eq!(out, check, "engines disagree — bench would be meaningless");

    let naive_t = median_time(reps, || {
        let ids = registry();
        naive::evaluate(&rules, &edb, &ids, &BTreeMap::new()).unwrap()
    });
    let compiled_t = median_time(reps, || {
        let ids = registry();
        // Fresh EDB per rep so the index is rebuilt — charge the build cost.
        let edb = edb.clone();
        evaluate_compiled(&crs, &edb, &ids, &BTreeMap::new()).unwrap()
    });
    (ms(naive_t), ms(compiled_t), derived)
}

/// Key-seeded lookups through a SPLIT-shaped mapping: every lookup takes the
/// key-bound fast path in both engines; the compiled engine must not regress.
fn bench_key_seeded(rows: usize, reps: usize) -> (f64, f64) {
    let mut t = Relation::with_columns("T", ["a", "prio"]);
    for i in 0..rows as u64 {
        t.insert(
            Key(i),
            vec![Value::Int(i as i64), Value::Int((i % 3 + 1) as i64)],
        )
        .unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(t);
    let vars = ["p", "a", "prio"];
    let rules = RuleSet::new(vec![Rule::new(
        Atom::vars("R", &vars),
        vec![
            Literal::Pos(Atom::vars("T", &vars)),
            Literal::Cond(Expr::col("prio").eq(Expr::lit(1))),
        ],
    )]);
    let crs = CompiledRuleSet::compile(&rules).expect("safe rules");

    let naive_t = median_time(reps, || {
        let ids = registry();
        let mut ev = naive::Evaluator::new(&edb, &ids);
        let mut hits = 0usize;
        for k in 0..rows as u64 {
            if ev.head_row_for_key(&rules, "R", Key(k)).unwrap().is_some() {
                hits += 1;
            }
        }
        hits
    });
    let compiled_t = median_time(reps, || {
        let ids = registry();
        let mut ev = Evaluator::new(&edb, &ids);
        let mut hits = 0usize;
        for k in 0..rows as u64 {
            if ev.head_row_for_key(&crs, "R", Key(k)).unwrap().is_some() {
                hits += 1;
            }
        }
        hits
    });
    (ms(naive_t), ms(compiled_t))
}

/// End-to-end TasKy round: load `tasks` rows, then push `writes` logical
/// writes through the Do! version (two SMO hops each). `snapshot_reuse`
/// toggles the cross-statement snapshot store: disabled, every statement
/// re-resolves virtual relations from scratch (the pre-store behavior and
/// the PR-1 baseline); enabled, reads reuse delta-maintained snapshots.
fn bench_tasky_round(
    tasks: usize,
    writes: usize,
    path: WritePath,
    snapshot_reuse: bool,
) -> (f64, f64) {
    let db = tasky::build();
    db.set_write_path(path);
    db.set_snapshot_reuse(snapshot_reuse);
    let load = median_time(1, || tasky::load_tasks(&db, tasks));
    let round = median_time(1, || run_write_round(&db, writes));
    (ms(load), ms(round))
}

/// The canonical TasKy write round: insert/update pairs through `Do!`,
/// then delete everything inserted (shared by the cold/warm/durable
/// rounds so their timings compare like for like).
fn run_write_round(db: &inverda_core::Inverda, writes: usize) {
    let mut keys = Vec::new();
    for i in 0..writes {
        if i % 2 == 0 {
            let k = db
                .insert(
                    "Do!",
                    "Todo",
                    vec![
                        Value::text(format!("author{:03}", i % 200)),
                        Value::text(format!("bench todo {i}")),
                    ],
                )
                .unwrap();
            keys.push(k);
        } else if let Some(k) = keys.last().copied() {
            db.update(
                "Do!",
                "Todo",
                k,
                vec![
                    Value::text(format!("author{:03}", i % 200)),
                    Value::text(format!("edited {i}")),
                ],
            )
            .unwrap();
        }
    }
    for k in keys {
        db.delete("Do!", "Todo", k).unwrap();
    }
}

/// Durability cost of the write path, and crash-recovery speed.
struct DurableRound {
    off_ms: f64,
    commit_ms: f64,
    group_ms: f64,
    recovery_records: usize,
    recovery_log_bytes: u64,
    recovery_ms: f64,
}

/// The warm TasKy write round at the three durability modes — `off` (pure
/// in-memory), `commit` (fsync per record), `group` (amortized fsync) —
/// with byte-equality of the final state (scans, skolem registry, key
/// sequence) asserted across modes before any number is reported; plus
/// crash-recovery time of [`Inverda::open`] replaying a `records`-record
/// log.
///
/// [`Inverda::open`]: inverda_core::Inverda::open
fn bench_durable_write_round(
    tasks: usize,
    writes: usize,
    records: usize,
    reps: usize,
) -> DurableRound {
    use inverda_core::{DurabilityMode, DurabilityOptions, Inverda};
    let root = std::env::temp_dir().join(format!("inverda-bench-durable-{}", std::process::id()));
    let open_mode = |tag: &str, mode: DurabilityMode| -> (Inverda, std::path::PathBuf) {
        let dir = root.join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let db = Inverda::open_in(
            &dir,
            DurabilityOptions {
                mode,
                group_size: 64,
                checkpoint_every: None,
            },
        )
        .expect("open durable db");
        for script in [tasky::SCRIPT_TASKY, tasky::SCRIPT_DO, tasky::SCRIPT_TASKY2] {
            db.execute(script).expect("genealogy");
        }
        (db, dir)
    };
    let state = |db: &Inverda| {
        format!(
            "{}{}{}{}{}{}",
            db.scan("TasKy", "Task").unwrap(),
            db.scan("Do!", "Todo").unwrap(),
            db.scan("TasKy2", "Task").unwrap(),
            db.scan("TasKy2", "Author").unwrap(),
            db.debug_registry(),
            db.debug_key_seq(),
        )
    };
    let mut times = Vec::new();
    let mut baseline: Option<String> = None;
    for (tag, mode) in [
        ("off", DurabilityMode::Off),
        ("commit", DurabilityMode::Commit),
        ("group", DurabilityMode::Group),
    ] {
        let (db, dir) = open_mode(tag, mode);
        tasky::load_tasks(&db, tasks);
        let round = median_time(1, || run_write_round(&db, writes));
        // Durability must not change a byte of the final state.
        let s = state(&db);
        match &baseline {
            None => baseline = Some(s),
            Some(b) => assert_eq!(b, &s, "durability mode {tag} changed the final state"),
        }
        times.push(ms(round));
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    // Recovery from a log of `records` single-insert records.
    let (db, dir) = open_mode("recovery", DurabilityMode::Group);
    for i in 0..records {
        db.insert("TasKy", "Task", tasky::task_row(i))
            .expect("insert");
    }
    db.flush().expect("flush");
    let recovery_log_bytes = db.wal_len().expect("durable db logs");
    let expect_count = db.count("TasKy", "Task").unwrap();
    let expect_seq = db.debug_key_seq();
    drop(db);
    let recovery = median_time(reps.min(3), || {
        let recovered = Inverda::open(&dir).expect("recovery");
        assert_eq!(recovered.count("TasKy", "Task").unwrap(), expect_count);
        assert_eq!(recovered.debug_key_seq(), expect_seq);
    });
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&root).ok();
    DurableRound {
        off_ms: times[0],
        commit_ms: times[1],
        group_ms: times[2],
        recovery_records: records,
        recovery_log_bytes,
        recovery_ms: ms(recovery),
    }
}

struct ServingBench {
    clients: Vec<usize>,
    reads_per_s: Vec<f64>,
    writes_per_s: Vec<f64>,
    write_p50_ms: Vec<f64>,
    write_p99_ms: Vec<f64>,
}

/// The concurrent serving layer vs client count: `c` writer clients push
/// single-insert requests through the commit pipeline while `c` reader
/// threads take epoch-pinned snapshots and scan a *virtual* version.
/// Reports pinned reads/s and the p50/p99 acknowledgement latency of a
/// write.
///
/// Before anything is timed, the same concurrent workload runs once with
/// every acknowledgement recorded, and a plain sequential
/// [`Inverda`](inverda_core::Inverda) replays the acknowledged ops in
/// epoch order: the final states (scans of
/// all three versions, skolem registry, key sequence) must be
/// byte-identical, or the numbers would describe a broken pipeline.
fn bench_concurrent_serving(tasks: usize, writes: usize) -> ServingBench {
    use inverda_core::{Inverda, ServingInverda, ServingOp, ServingOutcome};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let state = |db: &Inverda| {
        format!(
            "{}{}{}{}{}{}",
            db.scan("TasKy", "Task").unwrap(),
            db.scan("Do!", "Todo").unwrap(),
            db.scan("TasKy2", "Task").unwrap(),
            db.scan("TasKy2", "Author").unwrap(),
            db.debug_registry(),
            db.debug_key_seq(),
        )
    };
    let mut out = ServingBench {
        clients: Vec::new(),
        reads_per_s: Vec::new(),
        writes_per_s: Vec::new(),
        write_p50_ms: Vec::new(),
        write_p99_ms: Vec::new(),
    };
    for clients in [1usize, 2, 4] {
        // Equivalence pass: concurrent, recorded, then replayed
        // single-threaded in epoch order.
        {
            let db = tasky::build();
            tasky::load_tasks(&db, tasks.min(500));
            let serving = ServingInverda::over(db);
            let recs: Mutex<Vec<(u64, ServingOp)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let client = serving.client();
                    let recs = &recs;
                    scope.spawn(move || {
                        for i in 0..writes.min(50) {
                            let op = ServingOp::Apply {
                                version: "TasKy".to_string(),
                                table: "Task".to_string(),
                                writes: vec![LogicalWrite::Insert(tasky::task_row(
                                    100_000 + c * 10_000 + i,
                                ))],
                            };
                            let reply = client.submit(op.clone());
                            assert!(
                                matches!(reply.outcome, Ok(ServingOutcome::Applied(_))),
                                "serving write failed"
                            );
                            recs.lock().push((reply.epoch, op));
                        }
                    });
                }
            });
            let served = state(serving.db());
            let mut recs = recs.into_inner();
            recs.sort_by_key(|(epoch, _)| *epoch);
            let oracle = tasky::build();
            tasky::load_tasks(&oracle, tasks.min(500));
            for (_, op) in &recs {
                if let ServingOp::Apply {
                    version,
                    table,
                    writes,
                } = op
                {
                    oracle
                        .apply_many(version, table, writes.clone())
                        .expect("oracle apply");
                }
            }
            assert_eq!(
                state(&oracle),
                served,
                "{clients}-client serving diverged from sequential epoch-order replay"
            );
        }

        // Timed pass: writers measure per-acknowledgement latency, readers
        // count epoch-pinned scans of the virtual Do! version meanwhile.
        let db = tasky::build();
        tasky::load_tasks(&db, tasks);
        let serving = Arc::new(ServingInverda::over(db));
        let stop = AtomicBool::new(false);
        let reads = AtomicU64::new(0);
        let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let client = serving.client();
                let latencies = &latencies;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(writes);
                    for i in 0..writes {
                        let t = Instant::now();
                        let reply = client.insert(
                            "TasKy",
                            "Task",
                            tasky::task_row(200_000 + c * 10_000 + i),
                        );
                        local.push(ms(t.elapsed()));
                        assert!(reply.outcome.is_ok(), "serving write failed");
                    }
                    latencies.lock().extend(local);
                });
            }
            for _ in 0..clients {
                let reader = serving.reader();
                let stop = &stop;
                let reads = &reads;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let pin = reader.pin();
                        let rel = pin.scan("Do!", "Todo").expect("pinned scan");
                        assert!(!rel.is_empty(), "loaded Do! version is empty");
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Writers run to completion; readers are stopped when the last
            // writer's handle would join (the scope itself joins them), so
            // flag them down once all writes are acknowledged.
            while latencies.lock().len() < clients * writes {
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let mut lats = latencies.into_inner();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| lats[((lats.len() - 1) as f64 * p) as usize];
        out.clients.push(clients);
        out.reads_per_s
            .push(reads.load(Ordering::Relaxed) as f64 / elapsed);
        out.writes_per_s.push((clients * writes) as f64 / elapsed);
        out.write_p50_ms.push(pct(0.5));
        out.write_p99_ms.push(pct(0.99));
    }
    out
}

/// The same insert/update/delete shape as [`bench_tasky_round`]'s write
/// round, submitted as mixed [`LogicalWrite`] batches through `apply_many`
/// (one propagation round per batch of 10) — batching amortization on top
/// of the warm snapshot path. Returns `(elapsed_ms, ops_executed)`: updates
/// reference keys from a *previous* batch, so the first batch contributes
/// no updates and the op count differs slightly from the sequential round.
fn bench_tasky_round_batched(tasks: usize, writes: usize) -> (f64, usize, String) {
    let db = tasky::build();
    db.set_write_path(WritePath::Delta);
    tasky::load_tasks(&db, tasks);
    let mut ops = 0usize;
    let round = median_time(1, || {
        let mut keys = Vec::new();
        let mut pending: Vec<LogicalWrite> = Vec::new();
        ops = 0;
        for i in 0..writes {
            if i % 2 == 0 {
                pending.push(LogicalWrite::Insert(vec![
                    Value::text(format!("author{:03}", i % 200)),
                    Value::text(format!("batched todo {i}")),
                ]));
            } else if let Some(k) = keys.last().copied() {
                pending.push(LogicalWrite::Update(
                    k,
                    vec![
                        Value::text(format!("author{:03}", i % 200)),
                        Value::text(format!("edited {i}")),
                    ],
                ));
            }
            if pending.len() == 10 {
                ops += pending.len();
                let out = db
                    .apply_many("Do!", "Todo", std::mem::take(&mut pending))
                    .unwrap();
                keys.extend(out.into_iter().flatten());
            }
        }
        if !pending.is_empty() {
            ops += pending.len();
            let out = db.apply_many("Do!", "Todo", pending).unwrap();
            keys.extend(out.into_iter().flatten());
        }
        ops += keys.len();
        let deletes: Vec<LogicalWrite> = keys.into_iter().map(LogicalWrite::Delete).collect();
        for chunk in deletes.chunks(10) {
            db.apply_many("Do!", "Todo", chunk.to_vec()).unwrap();
        }
    });
    let state = format!(
        "{}{}{}{}",
        db.scan("TasKy", "Task").unwrap(),
        db.scan("Do!", "Todo").unwrap(),
        db.debug_registry(),
        db.debug_key_seq()
    );
    (ms(round), ops, state)
}

/// Run `f` with the batch-execution override pinned to `on`, restoring the
/// environment-driven default afterwards.
fn with_batch<T>(on: bool, f: impl FnOnce() -> T) -> T {
    inverda_datalog::batch::set_enabled(Some(on));
    let out = f();
    inverda_datalog::batch::set_enabled(None);
    out
}

/// Batch (vectorized) execution vs the frame machine on the large-fan-out
/// paths (indices: `[on, off]` per workload).
struct BatchExec {
    /// TasKy `MATERIALIZE 'Do!'` round-trip.
    mat_ms: [f64; 2],
    /// Cold full resolution of the Wikimedia head version (62-hop chain).
    wiki_cold_ms: [f64; 2],
    /// Warm `apply_many` write round.
    apply_many_ms: [f64; 2],
    /// Batch chunks executed during the batch-on runs (engagement proof).
    chunks: usize,
}

/// The three large-fan-out workloads with `INVERDA_BATCH` on vs off —
/// byte-equality (rows, skolem registries, key sequences) asserted before
/// any number is reported. The determinism contract makes the two timings
/// directly comparable: same bytes, different executor.
fn bench_batch_exec(tasks: usize, writes: usize, scale: f64, reps: usize) -> BatchExec {
    use inverda_workloads::wikimedia;
    let chunks_before = inverda_datalog::batch::execs();

    // MATERIALIZE round-trip over the TasKy SPLIT/DROP chain. Equality
    // pass first (one untimed round-trip per setting), then the timings.
    let mat_run = |on: bool| -> (String, f64) {
        with_batch(on, || {
            let db = tasky::build();
            db.set_write_path(WritePath::Delta);
            tasky::load_tasks(&db, tasks);
            db.materialize(&["Do!".to_string()]).expect("materialize");
            db.materialize(&["TasKy".to_string()]).expect("back");
            let state = format!(
                "{}{}{}{}",
                db.scan("TasKy", "Task").unwrap(),
                db.scan("Do!", "Todo").unwrap(),
                db.debug_registry(),
                db.debug_key_seq()
            );
            let t = median_time(reps.min(3), || {
                db.materialize(&["Do!".to_string()]).expect("materialize");
                db.materialize(&["TasKy".to_string()]).expect("back");
            });
            (state, ms(t))
        })
    };
    let (mat_state_on, mat_on) = mat_run(true);
    let (mat_state_off, mat_off) = mat_run(false);
    assert_eq!(
        mat_state_on, mat_state_off,
        "batch execution changed MATERIALIZE bytes"
    );

    // Cold full resolution of the Wikimedia head version: scan both tables
    // of v171 while the data lives 62 hops below.
    let db = wikimedia::install();
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(wikimedia::LOAD_VERSION)
    ))
    .expect("materialize load version");
    wikimedia::load_akan(&db, wikimedia::LOAD_VERSION, scale);
    db.set_snapshot_reuse(false);
    let wiki_state = |on: bool| -> String {
        with_batch(on, || {
            let name = wikimedia::version_name(171);
            format!(
                "{}{}{}{}",
                db.scan(&name, "page").expect("wiki scan"),
                db.scan(&name, "links").expect("wiki scan"),
                db.debug_registry(),
                db.debug_key_seq()
            )
        })
    };
    assert_eq!(
        wiki_state(true),
        wiki_state(false),
        "batch execution changed cold deep-chain bytes"
    );
    let wiki_run = |on: bool| -> f64 {
        with_batch(on, || {
            ms(median_time(reps.min(3), || {
                wikimedia::query_version(&db, 171)
            }))
        })
    };
    let wiki_on = wiki_run(true);
    let wiki_off = wiki_run(false);
    db.set_snapshot_reuse(true);

    // Bulk apply_many write round (warm snapshots): same ops either way —
    // final states (key sequence included) must match across the knob.
    let (am_on, _, am_state_on) = with_batch(true, || bench_tasky_round_batched(tasks, writes));
    let (am_off, _, am_state_off) = with_batch(false, || bench_tasky_round_batched(tasks, writes));
    assert_eq!(
        am_state_on, am_state_off,
        "batch execution changed the apply_many round bytes"
    );

    let chunks = inverda_datalog::batch::execs() - chunks_before;
    assert!(
        chunks > 0,
        "batch executor never engaged — timings meaningless"
    );
    BatchExec {
        mat_ms: [mat_on, mat_off],
        wiki_cold_ms: [wiki_on, wiki_off],
        apply_many_ms: [am_on, am_off],
        chunks,
    }
}

/// Whole-database Wikimedia migration: bulk-load at the load version, then
/// `MATERIALIZE` the head version (62 hops of chunked whole-relation
/// evaluation) and migrate back. The paper's "relocate the physical schema"
/// story at workload scale — runnable at `INVERDA_WIKI_SCALE=1.0` (CI runs
/// the smoke scale).
struct WikiMaterialize {
    rows_page: usize,
    rows_links: usize,
    to_head_ms: f64,
    back_ms: f64,
}

fn bench_wiki_materialize(scale: f64) -> WikiMaterialize {
    use inverda_workloads::wikimedia;
    let db = wikimedia::install();
    let load_v = wikimedia::version_name(wikimedia::LOAD_VERSION);
    let head_v = wikimedia::version_name(171);
    db.execute(&format!("MATERIALIZE '{load_v}';"))
        .expect("materialize load version");
    wikimedia::load_akan(&db, wikimedia::LOAD_VERSION, scale);
    let to_head = median_time(1, || {
        db.materialize(std::slice::from_ref(&head_v))
            .expect("materialize head");
    });
    let rows_page = db.count(&head_v, "page").expect("count");
    let rows_links = db.count(&head_v, "links").expect("count");
    let back = median_time(1, || {
        db.materialize(std::slice::from_ref(&load_v))
            .expect("materialize back");
    });
    // The round-trip must land where it started.
    assert_eq!(db.count(&head_v, "page").expect("count"), rows_page);
    WikiMaterialize {
        rows_page,
        rows_links,
        to_head_ms: ms(to_head),
        back_ms: ms(back),
    }
}

/// The branching layer: branch-create latency over a loaded trunk (the
/// O(1) copy-on-write fork of storage, snapshot store, compiled caches,
/// and skolem registry), warm reads on a fresh fork vs the trunk (the
/// fork inherits the parent's warm snapshots), and a merge of N disjoint
/// writes back into `main`.
///
/// Before anything is timed, the whole fork/write/merge scenario runs
/// once and the merged trunk is asserted byte-identical — rows, registry
/// dump, key sequence — to a fresh single-branch engine replaying the
/// trunk's linear operation history; broken merge semantics would make
/// every number below meaningless.
struct BranchBench {
    create_us: f64,
    warm_read_main_ms: f64,
    warm_read_fork_ms: f64,
    merge_ops: usize,
    merge_ms: f64,
    merge_applied: usize,
}

fn branching_state(db: &inverda_core::Inverda) -> String {
    let mut out = String::new();
    for v in db.versions() {
        let mut tables = db.tables_of(&v).expect("tables");
        tables.sort();
        for t in tables {
            out.push_str(&format!("{v}.{t}:\n{}", db.scan(&v, &t).expect("scan")));
        }
    }
    out.push_str(&db.debug_registry());
    out.push_str(&format!("key_seq={}", db.debug_key_seq()));
    out
}

fn bench_branching(tasks: usize, writes: usize, reps: usize) -> BranchBench {
    use inverda_core::{BranchOp, BranchingInverda, LogicalWrite, MAIN_BRANCH};

    let build = || {
        let manager = BranchingInverda::new_in_memory();
        let main = manager.main();
        main.execute(tasky::SCRIPT_TASKY).expect("TasKy");
        main.execute(tasky::SCRIPT_DO).expect("Do!");
        let rows: Vec<LogicalWrite> = (0..tasks)
            .map(|i| LogicalWrite::Insert(tasky::task_row(i)))
            .collect();
        main.apply_many("TasKy", "Task", rows).expect("bulk load");
        main.scan("Do!", "Todo").expect("prime the Do! snapshot");
        (manager, main)
    };
    // N disjoint writes on the staging fork: each is its own logical op,
    // so the merge rebases N operations.
    let stage = |staging: &inverda_core::Branch| {
        for i in 0..writes {
            staging
                .insert("TasKy", "Task", tasky::task_row(tasks + i))
                .expect("staging insert");
        }
    };

    // Correctness pass (byte-equality before timing).
    {
        let (manager, main) = build();
        let staging = manager.branch("staging").expect("fork");
        stage(&staging);
        manager.merge("staging", MAIN_BRANCH).expect("merge");
        let replayed = inverda_core::Inverda::new_in_memory();
        for e in main.history().expect("history") {
            match &e.op {
                BranchOp::Execute(script) => {
                    replayed.execute(script).expect("replay");
                }
                BranchOp::ApplyMany {
                    version,
                    table,
                    writes,
                } => {
                    replayed
                        .apply_many(version, table, writes.clone())
                        .expect("replay");
                }
            }
        }
        assert_eq!(
            branching_state(&main.engine().expect("engine")),
            branching_state(&replayed),
            "merged trunk diverged from its linear replay"
        );
    }

    // Timing passes.
    let (manager, main) = build();
    let mut n = 0usize;
    let create = median_time(reps.max(10), || {
        n += 1;
        manager
            .branch_from(MAIN_BRANCH, &format!("bench-{n}"))
            .expect("fork")
    });
    for i in 1..=n {
        manager.drop_branch(&format!("bench-{i}")).ok();
    }

    let fork = manager.branch("reader").expect("fork");
    let trunk_rel = main.scan("Do!", "Todo").expect("scan");
    let fork_rel = fork.scan("Do!", "Todo").expect("scan");
    assert_eq!(
        trunk_rel.to_string(),
        fork_rel.to_string(),
        "a fresh fork must read exactly the trunk's bytes"
    );
    let warm_main = median_time(reps, || main.scan("Do!", "Todo").expect("scan"));
    let warm_fork = median_time(reps, || fork.scan("Do!", "Todo").expect("scan"));
    manager.drop_branch("reader").expect("drop reader");

    let staging = manager.branch("staging").expect("fork");
    stage(&staging);
    let mut applied = 0usize;
    let merge = median_time(1, || {
        applied = manager
            .merge("staging", MAIN_BRANCH)
            .expect("merge")
            .applied;
    });

    BranchBench {
        create_us: ms(create) * 1000.0,
        warm_read_main_ms: ms(warm_main),
        warm_read_fork_ms: ms(warm_fork),
        merge_ops: writes,
        merge_ms: ms(merge),
        merge_applied: applied,
    }
}

/// One query-pushdown measurement: the same filtered read answered by the
/// query layer (pushdown) and by scan + client-side filter, byte-equality
/// asserted before timing.
struct PushdownEntry {
    label: &'static str,
    scan_filter_ms: f64,
    pushdown_ms: f64,
    rows: usize,
}

impl PushdownEntry {
    fn speedup(&self) -> f64 {
        self.scan_filter_ms / self.pushdown_ms.max(f64::EPSILON)
    }

    fn json(&self) -> String {
        format!(
            r#""{}": {{ "scan_filter_ms": {:.3}, "pushdown_ms": {:.3}, "speedup": {:.2}, "rows": {} }}"#,
            self.label,
            self.scan_filter_ms,
            self.pushdown_ms,
            self.speedup(),
            self.rows
        )
    }
}

/// Time one (query, oracle) pair: assert byte-equality first, then take
/// medians. `warm` keeps the snapshot store on (primed by the equality
/// check); cold disables reuse so every run re-resolves or pushes down.
fn measure_pushdown(
    label: &'static str,
    reps: usize,
    query: &dyn Fn() -> inverda_storage::Relation,
    oracle: &dyn Fn() -> inverda_storage::Relation,
) -> PushdownEntry {
    let q = query();
    let o = oracle();
    assert_eq!(q.len(), o.len(), "{label}: pushdown row count diverged");
    for (k, row) in o.iter() {
        assert_eq!(
            q.get(k),
            Some(row),
            "{label}: pushdown rows diverged at {k}"
        );
    }
    let scan_filter = median_time(reps, || oracle().len());
    let pushdown = median_time(reps, || query().len());
    PushdownEntry {
        label,
        scan_filter_ms: ms(scan_filter),
        pushdown_ms: ms(pushdown),
        rows: q.len(),
    }
}

/// Scan + client-side filter oracle over `version.table` (the shape every
/// filtered read had before the query layer).
fn scan_filter(
    db: &inverda_core::Inverda,
    version: &str,
    table: &str,
    pred: &inverda_storage::BoundExpr,
    limit: Option<usize>,
) -> inverda_storage::Relation {
    let rel = db.scan(version, table).expect("scan");
    let mut out = inverda_storage::Relation::new(rel.schema().clone());
    let mut taken = 0usize;
    for (k, row) in rel.iter() {
        if pred.matches(row).unwrap() {
            out.upsert(k, row.clone()).unwrap();
            taken += 1;
            if limit.is_some_and(|n| taken >= n) {
                break;
            }
        }
    }
    out
}

/// The TasKy half of the query-pushdown section: point, selective, range,
/// and limit-k reads on the virtual `Do!`/`TasKy` versions, cold (snapshot
/// reuse off — pushdown seeds through the SPLIT/DROP chain, the oracle
/// re-materializes) and warm (store primed — pushdown probes cached
/// indexes).
fn bench_query_pushdown_tasky(
    tasks: usize,
    reps: usize,
) -> (Vec<PushdownEntry>, Vec<PushdownEntry>) {
    use inverda_storage::BoundExpr;
    let db = tasky::build();
    tasky::load_tasks(&db, tasks);
    type Spec = (
        &'static str,
        &'static str,
        &'static str,
        Expr,
        Option<usize>,
    );
    let specs: Vec<Spec> = vec![
        (
            "point",
            "Do!",
            "Todo",
            Expr::col("author").eq(Expr::lit("author007")),
            None,
        ),
        (
            "selective",
            "Do!",
            "Todo",
            Expr::col("task").eq(Expr::lit("task number 42")),
            None,
        ),
        (
            "range",
            "TasKy",
            "Task",
            Expr::col("prio").ge(Expr::lit(2)),
            None,
        ),
        (
            "limit_k",
            "Do!",
            "Todo",
            Expr::col("author").eq(Expr::lit("author007")),
            Some(10),
        ),
    ];
    let mut out = Vec::new();
    for warm in [false, true] {
        db.set_snapshot_reuse(warm);
        let mut entries = Vec::new();
        for (label, version, table, filter, limit) in &specs {
            let columns = db.columns_of(version, table).unwrap();
            let bound = BoundExpr::bind(filter, table, &columns).unwrap();
            if warm {
                // Prime the store (and its indexes) once.
                db.scan(version, table).unwrap();
            }
            let query = || {
                let mut q = db.query(version, table).filter(filter.clone());
                if let Some(n) = limit {
                    q = q.limit(*n);
                }
                q.collect().expect("query")
            };
            let oracle = || scan_filter(&db, version, table, &bound, *limit);
            entries.push(measure_pushdown(label, reps, &query, &oracle));
        }
        out.push(entries);
    }
    db.set_snapshot_reuse(true);
    let warm = out.pop().expect("two passes");
    let cold = out.pop().expect("two passes");
    (cold, warm)
}

/// The Wikimedia half: a selective point probe (`title = 'Page_7'`) on the
/// 171st version while the data physically lives at the load version — the
/// fig12 QET shape. Cold, pushdown walks the whole mapping chain touching
/// only the matching row; the oracle materializes it.
fn bench_query_pushdown_wiki(scale: f64, reps: usize) -> (Vec<PushdownEntry>, Vec<PushdownEntry>) {
    use inverda_storage::BoundExpr;
    use inverda_workloads::wikimedia;
    let db = wikimedia::install();
    // Like fig12: relocate the physical schema to the load version first so
    // the bulk load is local, then leave the queried 171st version virtual
    // behind the 62-hop mapping chain.
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(wikimedia::LOAD_VERSION)
    ))
    .expect("materialize load version");
    wikimedia::load_akan(&db, wikimedia::LOAD_VERSION, scale);
    let version = wikimedia::version_name(171);
    let filter = Expr::col("title").eq(Expr::lit(format!("Page_{}", wikimedia::PROBE_TITLE_I)));
    let columns = db.columns_of(&version, "page").unwrap();
    let bound = BoundExpr::bind(&filter, "page", &columns).unwrap();
    let mut out = Vec::new();
    for warm in [false, true] {
        db.set_snapshot_reuse(warm);
        if warm {
            db.scan(&version, "page").unwrap();
        }
        let query = || {
            db.query(&version, "page")
                .filter(filter.clone())
                .collect()
                .expect("query")
        };
        let oracle = || scan_filter(&db, &version, "page", &bound, None);
        out.push(vec![measure_pushdown("point_v171", reps, &query, &oracle)]);
    }
    db.set_snapshot_reuse(true);
    let warm = out.pop().expect("two passes");
    let cold = out.pop().expect("two passes");
    (cold, warm)
}

/// One γ-chain-fusion sweep (indices align with `versions`/`depths`).
struct ChainFusion {
    versions: Vec<usize>,
    depths: Vec<usize>,
    qet_fused_ms: Vec<f64>,
    qet_unfused_ms: Vec<f64>,
    probe_fused_ms: Vec<f64>,
    probe_unfused_ms: Vec<f64>,
}

impl ChainFusion {
    /// max/min ratio across depths — ~1 means flat in chain length.
    fn flatness(xs: &[f64]) -> f64 {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        max / min.max(f64::EPSILON)
    }
}

/// Fig12 vs chain depth, fusion on/off: cold full QET (scan `page` +
/// `links`) and the cold point probe at versions increasingly far above the
/// load version, on the Wikimedia genealogy. **Byte-equality is asserted
/// before timing**: both settings must produce identical rows at every
/// measured version *and* identical skolem registry / key-sequence dumps.
/// With fusion on, the whole ADD/DROP/RENAME run above the load version
/// composes into one fused rule set per queried version, so both curves
/// should be flat in depth instead of linear.
fn bench_chain_fusion(scale: f64, reps: usize) -> ChainFusion {
    use inverda_workloads::wikimedia;
    let db = wikimedia::install();
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(wikimedia::LOAD_VERSION)
    ))
    .expect("materialize load version");
    wikimedia::load_akan(&db, wikimedia::LOAD_VERSION, scale);
    db.set_snapshot_reuse(false); // every measurement below is cold
    let versions = vec![115usize, 130, 145, 160, 171];
    let fingerprint = |on: bool| -> String {
        inverda_datalog::fusion::set_enabled(Some(on));
        let mut s = String::new();
        for &v in &versions {
            let name = wikimedia::version_name(v);
            for table in ["page", "links"] {
                s.push_str(&db.scan(&name, table).expect("wiki scan").to_string());
            }
            s.push_str(&wikimedia::probe_version(&db, v).to_string());
        }
        s.push_str(&db.debug_registry());
        s.push_str(&db.debug_key_seq().to_string());
        s
    };
    let fused_state = fingerprint(true);
    let unfused_state = fingerprint(false);
    assert_eq!(
        fused_state, unfused_state,
        "γ-chain fusion changed resolved bytes (rows or registries)"
    );
    let mut out = ChainFusion {
        versions: versions.clone(),
        depths: versions
            .iter()
            .map(|v| v - wikimedia::LOAD_VERSION)
            .collect(),
        qet_fused_ms: Vec::new(),
        qet_unfused_ms: Vec::new(),
        probe_fused_ms: Vec::new(),
        probe_unfused_ms: Vec::new(),
    };
    for &v in &versions {
        for on in [true, false] {
            inverda_datalog::fusion::set_enabled(Some(on));
            let qet = median_time(reps, || wikimedia::query_version(&db, v));
            let probe = median_time(reps, || wikimedia::probe_version(&db, v));
            if on {
                out.qet_fused_ms.push(ms(qet));
                out.probe_fused_ms.push(ms(probe));
            } else {
                out.qet_unfused_ms.push(ms(qet));
                out.probe_unfused_ms.push(ms(probe));
            }
        }
    }
    inverda_datalog::fusion::set_enabled(None);
    db.set_snapshot_reuse(true);
    out
}

/// Timings of one thread-scaling sweep (indices align with `workers`).
struct ThreadScaling {
    workers: Vec<usize>,
    join_ms: Vec<f64>,
    mat_ms: Vec<f64>,
    round_ms: Vec<f64>,
    staged_mat_ms: Vec<f64>,
    fk_round_ms: Vec<f64>,
}

/// Warm write round through `TasKy.Task` with the FK-DECOMPOSE branch
/// materialized: every write drains *forward* through the id-minting
/// DECOMPOSE mapping (plus the RENAME hop), and the staged γ_src
/// maintenance keeps the virtualized source side warm — the workload the
/// mint-free gate used to exclude from every parallel path. New authors
/// appear throughout the round, so ids actually mint under fan-out.
fn bench_fk_decompose_round(tasks: usize, writes: usize) -> (f64, String) {
    let db = tasky::build();
    db.set_write_path(WritePath::Delta);
    tasky::load_tasks(&db, tasks);
    db.materialize(&["TasKy2".to_string()])
        .expect("materialize");
    let round = median_time(1, || {
        let mut keys = Vec::new();
        for i in 0..writes {
            if i % 2 == 0 {
                let k = db
                    .insert(
                        "TasKy",
                        "Task",
                        vec![
                            // Half the inserts reuse loaded authors, half
                            // mint fresh ones.
                            Value::text(format!("author{:03}", i % 400)),
                            Value::text(format!("fk bench {i}")),
                            Value::Int((i % 3 + 1) as i64),
                        ],
                    )
                    .unwrap();
                keys.push(k);
            } else if let Some(k) = keys.last().copied() {
                db.update(
                    "TasKy",
                    "Task",
                    k,
                    vec![
                        Value::text(format!("author{:03}", (i + 1) % 400)),
                        Value::text(format!("edited {i}")),
                        Value::Int((i % 3 + 1) as i64),
                    ],
                )
                .unwrap();
            }
        }
        for k in keys {
            db.delete("TasKy", "Task", k).unwrap();
        }
    });
    let state = format!(
        "{}{}{}{}",
        db.scan("TasKy", "Task").unwrap(),
        db.scan("Do!", "Todo").unwrap(),
        db.scan("TasKy2", "Task").unwrap(),
        db.scan("TasKy2", "Author").unwrap(),
    );
    (ms(round), state)
}

/// Thread-scaling sweep: the parallel-path workloads at 1/2/4/8 logical
/// workers. `unbound_join` re-times [`bench_full_scan_join`]'s compiled
/// side (chunked outer scan), `materialize` migrates the loaded TasKy
/// database onto the `Do!` side (whole-relation evaluation through the
/// SPLIT mapping), `staged_materialize` migrates onto the **FK-DECOMPOSE**
/// side and back (the id-minting staged evaluation, now fanned out through
/// the reserve-then-commit cycle), `tasky_write_round` is the warm-snapshot
/// write round (delta-probe fan-out), and `fk_decompose_write_round` is the
/// staged write round of [`bench_fk_decompose_round`]. Results at every
/// width are asserted equal to the width-1 run — scaling must never buy
/// nondeterminism, minted ids included.
fn bench_thread_scaling(rows: usize, tasks: usize, writes: usize, reps: usize) -> ThreadScaling {
    let workers = vec![1usize, 2, 4, 8];
    let mut out = ThreadScaling {
        workers: workers.clone(),
        join_ms: Vec::new(),
        mat_ms: Vec::new(),
        round_ms: Vec::new(),
        staged_mat_ms: Vec::new(),
        fk_round_ms: Vec::new(),
    };
    let mut baseline: Option<String> = None;
    let mut staged_baseline: Option<String> = None;
    let mut fk_baseline: Option<String> = None;
    for &w in &workers {
        inverda_datalog::parallel::set_threads(Some(w));
        let (_, compiled, _) = bench_full_scan_join(rows, reps);
        out.join_ms.push(compiled);

        let db = tasky::build();
        tasky::load_tasks(&db, tasks);
        let mat = median_time(1, || {
            db.materialize(&["Do!".to_string()]).expect("materialize");
            db.materialize(&["TasKy".to_string()]).expect("back");
        });
        out.mat_ms.push(ms(mat));
        let state = format!(
            "{}{}",
            db.scan("Do!", "Todo").unwrap(),
            db.scan("TasKy", "Task").unwrap()
        );
        match &baseline {
            None => baseline = Some(state),
            Some(b) => assert_eq!(b, &state, "width {w} changed the migrated state"),
        }

        let db = tasky::build();
        tasky::load_tasks(&db, tasks);
        let staged_mat = median_time(1, || {
            db.materialize(&["TasKy2".to_string()])
                .expect("materialize");
            db.materialize(&["TasKy".to_string()]).expect("back");
        });
        out.staged_mat_ms.push(ms(staged_mat));
        let state = format!(
            "{}{}{}",
            db.scan("TasKy2", "Task").unwrap(),
            db.scan("TasKy2", "Author").unwrap(),
            db.debug_registry(),
        );
        match &staged_baseline {
            None => staged_baseline = Some(state),
            Some(b) => assert_eq!(
                b, &state,
                "width {w} changed the staged migration (ids included)"
            ),
        }

        let (_, round) = bench_tasky_round(tasks, writes, WritePath::Delta, true);
        out.round_ms.push(round);

        let (fk_round, fk_state) = bench_fk_decompose_round(tasks, writes);
        out.fk_round_ms.push(fk_round);
        match &fk_baseline {
            None => fk_baseline = Some(fk_state),
            Some(b) => assert_eq!(b, &fk_state, "width {w} changed the staged write round"),
        }
    }
    inverda_datalog::parallel::set_threads(None);
    out
}

fn main() {
    banner(
        "Evaluator hot path: compiled vs naive",
        "the engine behind Figs. 8/11/13 read & write paths",
    );
    let rows = env_usize("INVERDA_EVAL_ROWS", 2_000);
    let tasks = env_usize("INVERDA_TASKS", 10_000);
    let writes = env_usize("INVERDA_EVAL_WRITES", 100);
    let reps = env_usize("INVERDA_EVAL_REPS", 5);

    println!("-- full-scan join ({rows} rows/side, median of {reps})");
    let (join_naive, join_compiled, derived) = bench_full_scan_join(rows, reps);
    let join_speedup = join_naive / join_compiled.max(f64::EPSILON);
    println!("   naive:    {join_naive:10.2} ms");
    println!("   compiled: {join_compiled:10.2} ms   ({derived} derived rows)");
    println!("   speedup:  {join_speedup:10.1}x");

    println!("-- key-seeded lookups ({rows} lookups, median of {reps})");
    let (key_naive, key_compiled) = bench_key_seeded(rows, reps);
    let key_speedup = key_naive / key_compiled.max(f64::EPSILON);
    println!("   naive:    {key_naive:10.2} ms");
    println!("   compiled: {key_compiled:10.2} ms");
    println!("   speedup:  {key_speedup:10.1}x");

    println!("-- TasKy write-propagation round ({tasks} tasks, {writes} writes)");
    let (load_delta, round_cold) = bench_tasky_round(tasks, writes, WritePath::Delta, false);
    let (_, round_recompute) = bench_tasky_round(tasks, writes, WritePath::Recompute, false);
    let (_, round_warm) = bench_tasky_round(tasks, writes, WritePath::Delta, true);
    let (batched_warm, batched_ops, _) = bench_tasky_round_batched(tasks, writes);
    // insert/update pairs plus the cleanup deletes.
    let ops = writes + writes / 2;
    let cold_wps = ops as f64 / (round_cold / 1e3);
    let warm_wps = ops as f64 / (round_warm / 1e3);
    let batched_wps = batched_ops as f64 / (batched_warm / 1e3);
    let warm_speedup = round_cold / round_warm.max(f64::EPSILON);
    println!("   bulk load (delta path):    {load_delta:10.2} ms");
    println!("   round, cold resolution:    {round_cold:10.2} ms ({cold_wps:.0} writes/s)");
    println!("   round via recompute:       {round_recompute:10.2} ms");
    println!("   round, warm snapshots:     {round_warm:10.2} ms ({warm_wps:.0} writes/s, {warm_speedup:.1}x)");
    println!("   round, warm + apply_many:  {batched_warm:10.2} ms ({batched_wps:.0} writes/s)");

    let durable_records = env_usize("INVERDA_DURABLE_RECORDS", 10_000);
    println!("-- durable write round ({tasks} tasks, {writes} writes; recovery from {durable_records} records)");
    let durable = bench_durable_write_round(tasks, writes, durable_records, reps);
    let commit_overhead = durable.commit_ms / durable.off_ms.max(f64::EPSILON);
    let group_overhead = durable.group_ms / durable.off_ms.max(f64::EPSILON);
    println!("   round, durability off:     {:10.2} ms", durable.off_ms);
    println!(
        "   round, per-record commit:  {:10.2} ms ({commit_overhead:.2}x off)",
        durable.commit_ms
    );
    println!(
        "   round, group commit:       {:10.2} ms ({group_overhead:.2}x off)",
        durable.group_ms
    );
    println!(
        "   recovery ({} records, {} KiB log): {:10.2} ms",
        durable.recovery_records,
        durable.recovery_log_bytes / 1024,
        durable.recovery_ms
    );

    println!(
        "-- concurrent serving ({tasks} tasks, {writes} writes/client, pinned readers on Do!)"
    );
    let serving = bench_concurrent_serving(tasks, writes);
    for (i, c) in serving.clients.iter().enumerate() {
        println!(
            "   {c} client(s): {:>9.0} pinned reads/s | {:>8.0} writes/s | ack p50 {:>7.3} ms, p99 {:>7.3} ms",
            serving.reads_per_s[i],
            serving.writes_per_s[i],
            serving.write_p50_ms[i],
            serving.write_p99_ms[i]
        );
    }

    let wiki_scale = env_f64("INVERDA_WIKI_SCALE", 0.1);
    println!("-- query pushdown (TasKy {tasks} tasks; Wikimedia scale {wiki_scale})");
    let (tasky_qp_cold, tasky_qp_warm) = bench_query_pushdown_tasky(tasks, reps);
    let (wiki_qp_cold, wiki_qp_warm) = bench_query_pushdown_wiki(wiki_scale, reps.min(3));
    let print_entries = |tag: &str, entries: &[PushdownEntry]| {
        for e in entries {
            println!(
                "   {tag:>12} {:<10} scan+filter {:>10.2} ms | pushdown {:>10.2} ms | {:>7.1}x ({} rows)",
                e.label,
                e.scan_filter_ms,
                e.pushdown_ms,
                e.speedup(),
                e.rows
            );
        }
    };
    print_entries("tasky/cold", &tasky_qp_cold);
    print_entries("tasky/warm", &tasky_qp_warm);
    print_entries("wiki/cold", &wiki_qp_cold);
    print_entries("wiki/warm", &wiki_qp_warm);

    println!("-- γ-chain fusion (Wikimedia scale {wiki_scale}, cold, fusion on/off)");
    let fusion = bench_chain_fusion(wiki_scale, reps.min(3));
    for (i, v) in fusion.versions.iter().enumerate() {
        println!(
            "   v{v:03} (depth {:>2}): QET {:>9.2} ms fused | {:>9.2} ms unfused || probe {:>8.2} ms fused | {:>8.2} ms unfused",
            fusion.depths[i],
            fusion.qet_fused_ms[i],
            fusion.qet_unfused_ms[i],
            fusion.probe_fused_ms[i],
            fusion.probe_unfused_ms[i]
        );
    }
    let qet_flat_fused = ChainFusion::flatness(&fusion.qet_fused_ms);
    let qet_flat_unfused = ChainFusion::flatness(&fusion.qet_unfused_ms);
    let probe_flat_fused = ChainFusion::flatness(&fusion.probe_fused_ms);
    let probe_flat_unfused = ChainFusion::flatness(&fusion.probe_unfused_ms);
    let last = fusion.versions.len() - 1;
    let qet_speedup_deep =
        fusion.qet_unfused_ms[last] / fusion.qet_fused_ms[last].max(f64::EPSILON);
    let probe_speedup_deep =
        fusion.probe_unfused_ms[last] / fusion.probe_fused_ms[last].max(f64::EPSILON);
    println!(
        "   flatness (max/min over depth): QET {qet_flat_fused:.2} fused vs {qet_flat_unfused:.2} unfused | probe {probe_flat_fused:.2} fused vs {probe_flat_unfused:.2} unfused"
    );
    println!(
        "   at depth {}: QET {qet_speedup_deep:.1}x, probe {probe_speedup_deep:.1}x",
        fusion.depths[last]
    );

    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("-- batch execution (INVERDA_BATCH on/off, available_parallelism = {avail})");
    let batch = bench_batch_exec(tasks, writes, wiki_scale, reps);
    let batch_line = |label: &str, pair: [f64; 2]| {
        println!(
            "   {label:<24} {:>10.2} ms batch | {:>10.2} ms frame machine ({:.2}x)",
            pair[0],
            pair[1],
            pair[1] / pair[0].max(f64::EPSILON)
        );
    };
    batch_line("materialize round-trip:", batch.mat_ms);
    batch_line("wiki cold deep chain:", batch.wiki_cold_ms);
    batch_line("apply_many round:", batch.apply_many_ms);
    println!("   batch chunks executed:   {:>10}", batch.chunks);

    println!(
        "-- wikimedia materialize (scale {wiki_scale}, {} hops)",
        171 - 109
    );
    let wiki_mat = bench_wiki_materialize(wiki_scale);
    println!(
        "   to head:  {:10.2} ms ({} page rows, {} links rows)",
        wiki_mat.to_head_ms, wiki_mat.rows_page, wiki_mat.rows_links
    );
    println!("   back:     {:10.2} ms", wiki_mat.back_ms);

    println!("-- branching ({tasks}-task trunk; merge of {writes} disjoint writes)");
    let branching = bench_branching(tasks, writes, reps);
    println!("   branch create:     {:10.3} us", branching.create_us);
    println!(
        "   warm read, trunk:  {:10.3} ms | fork: {:10.3} ms",
        branching.warm_read_main_ms, branching.warm_read_fork_ms
    );
    println!(
        "   merge of {} ops:   {:10.2} ms ({} replayed)",
        branching.merge_ops, branching.merge_ms, branching.merge_applied
    );

    println!("-- thread scaling (available_parallelism = {avail})");
    let scaling = bench_thread_scaling(rows, tasks, writes, reps);
    for (i, w) in scaling.workers.iter().enumerate() {
        println!(
            "   {w} worker(s): unbound join {:10.2} ms | materialize {:10.2} ms | staged materialize {:10.2} ms | warm round {:10.2} ms | fk round {:10.2} ms",
            scaling.join_ms[i],
            scaling.mat_ms[i],
            scaling.staged_mat_ms[i],
            scaling.round_ms[i],
            scaling.fk_round_ms[i]
        );
    }
    let join_speedup_4 = scaling.join_ms[0] / scaling.join_ms[2].max(f64::EPSILON);
    let mat_speedup_4 = scaling.mat_ms[0] / scaling.mat_ms[2].max(f64::EPSILON);
    let staged_mat_speedup_4 =
        scaling.staged_mat_ms[0] / scaling.staged_mat_ms[2].max(f64::EPSILON);
    println!(
        "   speedup at 4 workers: join {join_speedup_4:.2}x, materialize {mat_speedup_4:.2}x, staged materialize {staged_mat_speedup_4:.2}x"
    );

    let fmt_list = |xs: &[f64]| {
        xs.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let workers_list = scaling
        .workers
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let join_list = fmt_list(&scaling.join_ms);
    let mat_list = fmt_list(&scaling.mat_ms);
    let round_list = fmt_list(&scaling.round_ms);
    let staged_mat_list = fmt_list(&scaling.staged_mat_ms);
    let fk_round_list = fmt_list(&scaling.fk_round_ms);

    let join_entries = |entries: &[PushdownEntry]| {
        entries
            .iter()
            .map(PushdownEntry::json)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let tasky_qp_cold_json = join_entries(&tasky_qp_cold);
    let tasky_qp_warm_json = join_entries(&tasky_qp_warm);
    let wiki_qp_cold_json = join_entries(&wiki_qp_cold);
    let wiki_qp_warm_json = join_entries(&wiki_qp_warm);

    let fusion_versions = fusion
        .versions
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let fusion_depths = fusion
        .depths
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let qet_fused_list = fmt_list(&fusion.qet_fused_ms);
    let qet_unfused_list = fmt_list(&fusion.qet_unfused_ms);
    let probe_fused_list = fmt_list(&fusion.probe_fused_ms);
    let probe_unfused_list = fmt_list(&fusion.probe_unfused_ms);
    let single_core = avail == 1;

    let serving_clients = serving
        .clients
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let serving_reads = fmt_list(&serving.reads_per_s);
    let serving_writes = fmt_list(&serving.writes_per_s);
    let serving_p50 = fmt_list(&serving.write_p50_ms);
    let serving_p99 = fmt_list(&serving.write_p99_ms);

    let DurableRound {
        off_ms,
        commit_ms,
        group_ms,
        recovery_records,
        recovery_log_bytes,
        recovery_ms,
    } = durable;
    let [mat_batch, mat_frame] = batch.mat_ms;
    let [wiki_batch, wiki_frame] = batch.wiki_cold_ms;
    let [am_batch, am_frame] = batch.apply_many_ms;
    let batch_chunks = batch.chunks;
    let mat_batch_speedup = mat_frame / mat_batch.max(f64::EPSILON);
    let wiki_batch_speedup = wiki_frame / wiki_batch.max(f64::EPSILON);
    let am_batch_speedup = am_frame / am_batch.max(f64::EPSILON);
    let WikiMaterialize {
        rows_page,
        rows_links,
        to_head_ms,
        back_ms,
    } = wiki_mat;
    let BranchBench {
        create_us,
        warm_read_main_ms,
        warm_read_fork_ms,
        merge_ops,
        merge_ms,
        merge_applied,
    } = branching;
    let json = format!(
        r#"{{
  "bench": "eval",
  "config": {{ "rows": {rows}, "tasks": {tasks}, "writes": {writes}, "reps": {reps} }},
  "full_scan_join": {{
    "naive_ms": {join_naive:.3},
    "compiled_ms": {join_compiled:.3},
    "speedup": {join_speedup:.2},
    "derived_rows": {derived}
  }},
  "key_seeded_lookup": {{
    "naive_ms": {key_naive:.3},
    "compiled_ms": {key_compiled:.3},
    "speedup": {key_speedup:.2}
  }},
  "tasky_write_round": {{
    "bulk_load_ms": {load_delta:.3},
    "delta_path_ms": {round_cold:.3},
    "recompute_path_ms": {round_recompute:.3},
    "delta_writes_per_s": {cold_wps:.0}
  }},
  "tasky_write_round_warm": {{
    "delta_path_ms": {round_warm:.3},
    "delta_writes_per_s": {warm_wps:.0},
    "speedup_over_cold": {warm_speedup:.2},
    "apply_many_ms": {batched_warm:.3},
    "apply_many_writes_per_s": {batched_wps:.0}
  }},
  "durable_write_round": {{
    "off_ms": {off_ms:.3},
    "commit_ms": {commit_ms:.3},
    "group_ms": {group_ms:.3},
    "commit_overhead": {commit_overhead:.2},
    "group_overhead": {group_overhead:.2},
    "recovery_records": {recovery_records},
    "recovery_log_bytes": {recovery_log_bytes},
    "recovery_ms": {recovery_ms:.3}
  }},
  "concurrent_serving": {{
    "clients": [{serving_clients}],
    "pinned_reads_per_s": [{serving_reads}],
    "writes_per_s": [{serving_writes}],
    "write_ack_p50_ms": [{serving_p50}],
    "write_ack_p99_ms": [{serving_p99}]
  }},
  "query_pushdown": {{
    "tasky": {{
      "cold": {{ {tasky_qp_cold_json} }},
      "warm": {{ {tasky_qp_warm_json} }}
    }},
    "wikimedia": {{
      "scale": {wiki_scale},
      "cold": {{ {wiki_qp_cold_json} }},
      "warm": {{ {wiki_qp_warm_json} }}
    }}
  }},
  "chain_fusion": {{
    "scale": {wiki_scale},
    "versions": [{fusion_versions}],
    "depths": [{fusion_depths}],
    "cold_qet_fused_ms": [{qet_fused_list}],
    "cold_qet_unfused_ms": [{qet_unfused_list}],
    "cold_probe_fused_ms": [{probe_fused_list}],
    "cold_probe_unfused_ms": [{probe_unfused_list}],
    "qet_flatness_fused": {qet_flat_fused:.2},
    "qet_flatness_unfused": {qet_flat_unfused:.2},
    "probe_flatness_fused": {probe_flat_fused:.2},
    "probe_flatness_unfused": {probe_flat_unfused:.2},
    "qet_speedup_at_max_depth": {qet_speedup_deep:.2},
    "probe_speedup_at_max_depth": {probe_speedup_deep:.2}
  }},
  "batch_exec": {{
    "available_parallelism": {avail},
    "single_core": {single_core},
    "materialize_batch_ms": {mat_batch:.3},
    "materialize_frame_ms": {mat_frame:.3},
    "materialize_speedup": {mat_batch_speedup:.2},
    "wiki_cold_chain_batch_ms": {wiki_batch:.3},
    "wiki_cold_chain_frame_ms": {wiki_frame:.3},
    "wiki_cold_chain_speedup": {wiki_batch_speedup:.2},
    "apply_many_batch_ms": {am_batch:.3},
    "apply_many_frame_ms": {am_frame:.3},
    "apply_many_speedup": {am_batch_speedup:.2},
    "chunks_executed": {batch_chunks}
  }},
  "wiki_materialize": {{
    "available_parallelism": {avail},
    "scale": {wiki_scale},
    "rows_page": {rows_page},
    "rows_links": {rows_links},
    "to_head_ms": {to_head_ms:.3},
    "back_ms": {back_ms:.3}
  }},
  "branching": {{
    "create_us": {create_us:.3},
    "warm_read_main_ms": {warm_read_main_ms:.3},
    "warm_read_fork_ms": {warm_read_fork_ms:.3},
    "merge_ops": {merge_ops},
    "merge_applied": {merge_applied},
    "merge_ms": {merge_ms:.3}
  }},
  "thread_scaling": {{
    "available_parallelism": {avail},
    "single_core": {single_core},
    "workers": [{workers_list}],
    "unbound_join_ms": [{join_list}],
    "materialize_ms": [{mat_list}],
    "staged_materialize_ms": [{staged_mat_list}],
    "tasky_write_round_warm_ms": [{round_list}],
    "fk_decompose_write_round_ms": [{fk_round_list}],
    "unbound_join_speedup_at_4": {join_speedup_4:.2},
    "materialize_speedup_at_4": {mat_speedup_4:.2},
    "staged_materialize_speedup_at_4": {staged_mat_speedup_4:.2}
  }}
}}
"#
    );
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("\nwrote BENCH_eval.json");
}
