//! Table 3: code-size ratio between handwritten SQL and BiDEL for the
//! three phases of the TasKy example (initial / evolution / migration).

use inverda_bench::banner;
use inverda_sqlgen::handwritten::{
    BIDEL_EVOLUTION, BIDEL_INITIAL, BIDEL_MIGRATION, EVOLUTION_SQL, INITIAL_SQL, MIGRATION_SQL,
};
use inverda_sqlgen::CodeMetrics;

fn row(phase: &str, sql: &CodeMetrics, bidel: &CodeMetrics) {
    let (l, s, c) = sql.ratio_to(bidel);
    println!(
        "{phase:<11} | BiDEL: {:>3} LoC {:>3} stmt {:>5} chars | SQL: {:>4} LoC {:>4} stmt {:>6} chars | ratio ×{:.2} / ×{:.2} / ×{:.2}",
        bidel.lines, bidel.statements, bidel.characters,
        sql.lines, sql.statements, sql.characters,
        l, s, c
    );
}

fn main() {
    banner("BiDEL vs handwritten SQL code sizes", "Table 3");
    let pairs = [
        ("Initially", INITIAL_SQL, BIDEL_INITIAL),
        ("Evolution", EVOLUTION_SQL, BIDEL_EVOLUTION),
        ("Migration", MIGRATION_SQL, BIDEL_MIGRATION),
    ];
    for (phase, sql, bidel) in pairs {
        row(
            phase,
            &CodeMetrics::measure(sql),
            &CodeMetrics::measure(bidel),
        );
    }
    println!();
    println!("Paper reference ratios: evolution ×119.67 LoC, ×49.33 stmts, ×62.35 chars;");
    println!("                        migration ×182.00 LoC, ×79.00 stmts, ×222.58 chars.");
    println!("(Our handwritten corpus is an independent transcription; the orders of");
    println!("magnitude — not the exact counts — are the reproduction target.)");

    // Also show the InVerDa-*generated* SQL for the same genealogy: the
    // code a developer is spared from maintaining.
    use inverda_bidel::{parse_script, Statement};
    use inverda_catalog::{Genealogy, MaterializationSchema};
    let mut g = Genealogy::new();
    for script in [
        inverda_workloads::tasky::SCRIPT_TASKY,
        inverda_workloads::tasky::SCRIPT_DO,
        inverda_workloads::tasky::SCRIPT_TASKY2,
    ] {
        for stmt in parse_script(script).unwrap().statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
    }
    let generated = inverda_sqlgen::generate::full_script(&g, &MaterializationSchema::initial());
    let m = CodeMetrics::measure(&generated);
    println!(
        "\nGenerated delta code (all three versions, initial materialization): \
         {} LoC, {} statements, {} chars — written by InVerDa, not the developer.",
        m.lines, m.statements, m.characters
    );
}
