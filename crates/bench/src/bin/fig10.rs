//! Figure 10: accumulated overhead while users move Do! → TasKy → TasKy2,
//! for three fixed materializations vs the flexible one (which follows the
//! majority: Do! → TasKy → TasKy2, migrations included).

use inverda_bench::{banner, env_usize, time};
use inverda_workloads::adoption::two_phase_adoption;
use inverda_workloads::tasky::{self, run_mix};
use inverda_workloads::Mix;

fn main() {
    let n = env_usize("INVERDA_TASKS", 5_000);
    let slices = env_usize("INVERDA_SLICES", 20);
    let ops = env_usize("INVERDA_OPS", 30);
    banner(
        &format!(
            "Flexible materialization, Do!→TasKy→TasKy2 shift ({n} tasks, {slices}×{ops} ops)"
        ),
        "Figure 10",
    );

    let configs: [(&str, Option<&str>, bool); 4] = [
        ("fixed Do! materialized", Some("Do!"), false),
        ("fixed TasKy materialized", None, false),
        ("fixed TasKy2 materialized", Some("TasKy2"), false),
        ("flexible materialization", Some("Do!"), true),
    ];

    let mut finals = Vec::new();
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, start, flexible) in configs {
        let db = tasky::build();
        tasky::load_tasks(&db, n);
        if let Some(target) = start {
            db.execute(&format!("MATERIALIZE '{target}';")).unwrap();
        }
        let mut rng = tasky::rng(99);
        let mut keys_do = db.scan("Do!", "Todo").unwrap().keys().collect::<Vec<_>>();
        let mut keys_t1 = db.scan("TasKy", "Task").unwrap().keys().collect::<Vec<_>>();
        let mut keys_t2 = keys_t1.clone();
        let mut acc = 0.0f64;
        let mut stage = 0usize; // 0 = Do!, 1 = TasKy, 2 = TasKy2
        let mut series = Vec::with_capacity(slices);
        for slice in 0..slices {
            let (f_do, f_t1, f_t2) = two_phase_adoption(slice, slices);
            if flexible {
                if stage == 0 && f_t1 > f_do {
                    let (d, _) = time(|| db.execute("MATERIALIZE 'TasKy';").unwrap());
                    acc += d.as_secs_f64();
                    stage = 1;
                }
                if stage == 1 && f_t2 > f_t1 {
                    let (d, _) = time(|| db.execute("MATERIALIZE 'TasKy2';").unwrap());
                    acc += d.as_secs_f64();
                    stage = 2;
                }
            }
            let ops_do = (ops as f64 * f_do).round() as usize;
            let ops_t2 = (ops as f64 * f_t2).round() as usize;
            let ops_t1 = ops.saturating_sub(ops_do + ops_t2);
            let (d, _) = time(|| {
                run_mix(&db, "Do!", Mix::STANDARD, ops_do, &mut keys_do, &mut rng);
                run_mix(&db, "TasKy", Mix::STANDARD, ops_t1, &mut keys_t1, &mut rng);
                run_mix(&db, "TasKy2", Mix::STANDARD, ops_t2, &mut keys_t2, &mut rng);
            });
            acc += d.as_secs_f64();
            series.push(acc);
        }
        finals.push((label, acc));
        curves.push((label.to_string(), series));
    }
    println!("slice  do%/tasky%/tasky2%   accumulated overhead [s] per config");
    for slice in 0..slices {
        let (a, b, c) = two_phase_adoption(slice, slices);
        print!("{slice:>5}  {:>5.2}/{:>5.2}/{:>5.2}", a, b, c);
        for (_, series) in &curves {
            print!("  {:>9.3}", series[slice]);
        }
        println!();
    }
    println!(
        "\ncolumns: {}",
        curves
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    for (label, acc) in finals {
        println!("final accumulated overhead, {label}: {acc:.3} s");
    }
    println!("\nPaper's shape: the flexible run (Do!→TasKy→TasKy2) stays below every");
    println!("fixed materialization; the effect grows with evolution length.");
}
