//! Error type for the Datalog engine.

use inverda_storage::StorageError;
use std::fmt;

/// Errors raised during rule evaluation, delta propagation or simplification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A body literal references a relation not bound in the EDB and not
    /// derived by an earlier rule.
    UnboundRelation {
        /// The missing relation name.
        relation: String,
    },
    /// The arity of an atom does not match the relation it addresses.
    ArityMismatch {
        /// Relation addressed.
        relation: String,
        /// Terms in the atom (including the key position).
        atom_arity: usize,
        /// Key + payload width of the relation.
        relation_arity: usize,
    },
    /// A rule is unsafe: some literal can never be scheduled because its
    /// variables are not bound by any positive literal.
    UnsafeRule {
        /// Display form of the offending rule.
        rule: String,
    },
    /// Two derivations produced different payloads for the same head key —
    /// the rule set violates the key-uniqueness design invariant.
    KeyConflict {
        /// Head relation.
        relation: String,
        /// Conflicting key.
        key: u64,
    },
    /// A head key evaluated to something that is not a non-negative integer.
    BadKey {
        /// Head relation.
        relation: String,
        /// Display form of the bad value.
        value: String,
    },
    /// Error bubbled up from expression evaluation / storage.
    Storage(StorageError),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnboundRelation { relation } => {
                write!(f, "relation '{relation}' is not bound in the EDB")
            }
            DatalogError::ArityMismatch {
                relation,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "atom over '{relation}' has {atom_arity} terms but the relation has arity {relation_arity}"
            ),
            DatalogError::UnsafeRule { rule } => write!(f, "unsafe rule: {rule}"),
            DatalogError::KeyConflict { relation, key } => write!(
                f,
                "conflicting derivations for key #{key} in head relation '{relation}'"
            ),
            DatalogError::BadKey { relation, value } => {
                write!(f, "head key of '{relation}' evaluated to non-key value {value}")
            }
            DatalogError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<StorageError> for DatalogError {
    fn from(e: StorageError) -> Self {
        DatalogError::Storage(e)
    }
}
