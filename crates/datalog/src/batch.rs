//! Batch (vectorized) rule evaluation: relational-algebra execution for the
//! large-fan-out paths.
//!
//! The frame machine ([`crate::eval`]) evaluates rules **tuple-at-a-time**:
//! a depth-first join over one mutable frame, re-fetching each literal's
//! relation handle and join index through the (mutex-guarded) view caches at
//! every depth of every candidate. That shape leaves parallel fan-out little
//! to win — per-tuple overhead dominates. This module evaluates the same
//! compiled rules **set-at-a-time**, as a relational-algebra pipeline over
//! whole chunks of the depth-0 scan, which is what MATERIALIZE, cold
//! resolution of deep (possibly fused) chains, and bulk `apply_many`
//! recomputation actually execute.
//!
//! ## Plan shapes
//!
//! Which frame slots are bound when a scheduled literal is reached is fully
//! **static** — `base_order` is fixed at compile time and every literal
//! binds a statically known slot set — so each parallel-safe rule compiles
//! once (`compile_plan`, cached on its [`CompiledRuleSet`]) into a linear
//! op pipeline:
//!
//! * **Scan** — the depth-0 positive atom (unbound key term), chunked into
//!   key ranges exactly like the frame machine's parallel planner;
//! * `PointJoin` — positive atom whose key term is statically
//!   bound: one point lookup per frame;
//! * `HashJoin` — key unbound, some payload column statically
//!   bound: build (or reuse) the relation's [`ColumnIndex`] once per chunk,
//!   probe it per frame in ascending key order;
//! * `ScanJoin` — nothing bound: cross-scan;
//! * `AntiPoint` / `AntiProbe` / `AntiScan`
//!   — the same three shapes as set-membership tests for negation;
//! * `Filter` / `Map` — condition and assignment
//!   literals applied to the whole block.
//!
//! ## Gate taxonomy (what falls back, and why)
//!
//! * `INVERDA_BATCH=off` ([`enabled`]) — everything stays on the frame
//!   machine;
//! * staged or id-minting rule sets — no plan is compiled; they need the
//!   frame machine's strict rule ordering and reservation scopes
//!   ([`CompiledRuleSet::parallel_safe`] is the master gate, enforced by
//!   the caller in [`crate::eval::evaluate_compiled`]);
//! * a rule whose depth-0 literal is not a positive atom, or whose key term
//!   is already bound at depth 0 (a single point lookup), runs as one
//!   frame-machine task inside the batch epilogue;
//! * a depth-0 scan smaller than [`crate::tuning::batch_min_keys`] runs on
//!   the frame machine — nothing to vectorize;
//! * **any error** inside a batch chunk (arity mismatch, bad key in a head,
//!   condition type error, …) discards the chunk's partial block and
//!   replays the chunk tuple-at-a-time, which reproduces the canonical
//!   error — or the canonical tuples — at the canonical position (see
//!   below).
//!
//! ## Determinism contract
//!
//! Batch ≡ frame machine ≡ naive **byte-for-byte** — rows, tuple order,
//! error precedence, registry dumps, key sequences — at every
//! `INVERDA_THREADS` width, warm or cold:
//!
//! * the frame machine explores candidates in **ascending key order** at
//!   every level (scans iterate the `BTreeMap`, index probes return keys
//!   ascending), so processing a block literal-at-a-time while preserving
//!   (frame order × candidate order) yields exactly the depth-first
//!   output sequence;
//! * relations are fetched **lazily, once per (literal, chunk)** and only
//!   while the block is non-empty — the same first-touch conditions and
//!   order as the frame machine, so lazy cold resolution (and any id
//!   minting it performs) happens in the canonical sequence;
//! * errors surface in literal-at-a-time order, which differs from
//!   depth-first order — so an erroring chunk is **replayed on the frame
//!   machine** (`Evaluator::chunk_head_tuples`), whose first error is
//!   canonical by construction. Workers are pure (no minting), so replay
//!   is free of side effects;
//! * the multi-threaded path reuses the deterministic **rule-then-chunk
//!   merge epilogue** of the frame machine's parallel mode: fragments are
//!   emitted in rule order then chunk order, each rule's fragment errors
//!   drained (in task order) before any of its tuples is emitted.
//!
//! The differential oracles (`tests/batch_props.rs`,
//! `tests/compiled_vs_naive.rs`, and the core crate's fusion/snapshot
//! suites) randomize the knob against widths and warm/cold stores to hold
//! the engine to this.

use crate::error::DatalogError;
use crate::eval::{
    check_arity, head_tuple, undo, unify_atom, value_key, CLit, CTerm, CompiledRule,
    CompiledRuleSet, EdbView, Evaluator, FrameCtx, NO_MINT_IDS,
};
use crate::Result;
#[cfg(doc)]
use inverda_storage::ColumnIndex;
use inverda_storage::{Key, Relation, Row, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The knob
// ---------------------------------------------------------------------------

/// Runtime override of the knob: 0 = not set, 1 = on, 2 = off.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Chunks executed by the vectorized pipeline since process start (the
/// engagement counter the tests and benches read).
static EXECS: AtomicUsize = AtomicUsize::new(0);

fn env_enabled() -> bool {
    match std::env::var("INVERDA_BATCH") {
        Ok(v) => !matches!(v.trim(), "off" | "0" | "false" | "no"),
        Err(_) => true,
    }
}

/// Whether batch execution is enabled: a [`set_enabled`] override, else the
/// `INVERDA_BATCH` environment variable (`off`/`0`/`false`/`no` disable),
/// else **on**. Disabled batch execution runs exactly the tuple-at-a-time
/// frame machine that existed before this module landed.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Override the knob at runtime (benchmarks toggle it per measurement; the
/// differential property tests randomize it per case). `None` restores the
/// `INVERDA_BATCH` / default-on behavior.
pub fn set_enabled(on: Option<bool>) {
    OVERRIDE.store(
        match on {
            Some(true) => 1,
            Some(false) => 2,
            None => 0,
        },
        Ordering::Relaxed,
    );
}

/// Number of chunks the vectorized pipeline has executed since process
/// start. Monotonic; used by tests and benches to assert the batch path
/// actually engaged (a differential test that silently compares the frame
/// machine against itself proves nothing).
pub fn execs() -> usize {
    EXECS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

/// One vectorized pipeline stage; `lit` indexes the rule's body.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BatchOp {
    /// Positive atom, key term statically bound: point lookup per frame.
    PointJoin {
        /// Body literal index.
        lit: usize,
    },
    /// Positive atom, key unbound, payload column `col` statically bound:
    /// build/reuse the column index once, probe per frame.
    HashJoin {
        /// Body literal index.
        lit: usize,
        /// Probe column (payload position, 0-based).
        col: usize,
    },
    /// Positive atom with nothing bound: cross-scan.
    ScanJoin {
        /// Body literal index.
        lit: usize,
    },
    /// Negated atom, key statically bound: point existence check.
    AntiPoint {
        /// Body literal index.
        lit: usize,
    },
    /// Negated atom, payload column statically bound: index existence probe.
    AntiProbe {
        /// Body literal index.
        lit: usize,
        /// Probe column (payload position, 0-based).
        col: usize,
    },
    /// Negated atom with nothing bound: scan existence check.
    AntiScan {
        /// Body literal index.
        lit: usize,
    },
    /// Condition literal: set-based filter over the block.
    Filter {
        /// Body literal index.
        lit: usize,
    },
    /// Assignment literal: compute-and-bind (or equality-check) per frame.
    Map {
        /// Body literal index.
        lit: usize,
    },
}

/// The static batch plan of a rule set: per rule, the op pipeline following
/// the chunkable depth-0 scan, or `None` when the rule must run on the
/// frame machine (non-scan depth 0, key-bound depth 0, or a skolem
/// literal). Compiled once in [`CompiledRuleSet::compile`] and carried by
/// the compiled set, so the core crate's compiled-store cache serves plans
/// for free.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    pub(crate) rules: Vec<Option<Vec<BatchOp>>>,
}

/// Compile the batch plan for a set of compiled rules. Returns `None` when
/// no rule is batchable (the caller then skips batch execution entirely).
pub(crate) fn compile_plan(rules: &[CompiledRule]) -> Option<BatchPlan> {
    let per_rule: Vec<Option<Vec<BatchOp>>> = rules.iter().map(plan_rule).collect();
    if per_rule.iter().all(Option::is_none) {
        return None;
    }
    Some(BatchPlan { rules: per_rule })
}

/// Derive one rule's op pipeline from its scheduled `base_order` by static
/// binding analysis: replay the schedule over a bound-slot set (every
/// literal binds a statically known slot set, so "which probe shape the
/// frame machine would pick" is a compile-time fact).
fn plan_rule(rule: &CompiledRule) -> Option<Vec<BatchOp>> {
    let (&first, rest) = rule.base_order.split_first()?;
    let CLit::Pos(atom0) = &rule.body[first] else {
        return None;
    };
    if matches!(atom0.terms[0], CTerm::Const(_)) {
        // Key-bound depth 0 is a single point lookup — nothing to chunk.
        return None;
    }
    let mut bound = vec![false; rule.n_vars];
    bind_atom_slots(&atom0.terms, &mut bound);
    let mut ops = Vec::with_capacity(rest.len());
    for &li in rest {
        let op = match &rule.body[li] {
            CLit::Pos(atom) => {
                let op = if term_bound(&atom.terms[0], &bound) {
                    BatchOp::PointJoin { lit: li }
                } else if let Some(col) = probe_col(&atom.terms, &bound) {
                    BatchOp::HashJoin { lit: li, col }
                } else {
                    BatchOp::ScanJoin { lit: li }
                };
                bind_atom_slots(&atom.terms, &mut bound);
                op
            }
            // Negation and conditions require their slots bound to be
            // schedulable, so they bind nothing new.
            CLit::Neg(atom) => {
                if term_bound(&atom.terms[0], &bound) {
                    BatchOp::AntiPoint { lit: li }
                } else if let Some(col) = probe_col(&atom.terms, &bound) {
                    BatchOp::AntiProbe { lit: li, col }
                } else {
                    BatchOp::AntiScan { lit: li }
                }
            }
            CLit::Cond { .. } => BatchOp::Filter { lit: li },
            CLit::Assign { slot, .. } => {
                bound[*slot] = true;
                BatchOp::Map { lit: li }
            }
            // Minting rules never batch (the set-level gate already
            // excludes them; be defensive anyway).
            CLit::Skolem { .. } => return None,
        };
        ops.push(op);
    }
    Some(ops)
}

/// Whether a term resolves to a value under the static bound-slot set —
/// the compile-time mirror of `CTerm::resolved`.
fn term_bound(t: &CTerm, bound: &[bool]) -> bool {
    match t {
        CTerm::Const(_) => true,
        CTerm::Var(s) => bound[*s],
        CTerm::Anon => false,
    }
}

/// First payload column whose term statically resolves — the compile-time
/// mirror of `CAtom::bound_payload` (identical because unscheduled slots
/// are `None` in every runtime frame).
fn probe_col(terms: &[CTerm], bound: &[bool]) -> Option<usize> {
    terms[1..].iter().position(|t| term_bound(t, bound))
}

/// A successful unification binds every variable position of the atom.
fn bind_atom_slots(terms: &[CTerm], bound: &mut [bool]) {
    for t in terms {
        if let CTerm::Var(s) = t {
            bound[*s] = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// The batch fast path of [`crate::eval::evaluate_compiled`], tried first
/// for parallel-safe sets. `Ok(None)` means "stay on the frame machine"
/// (knob off, or no batchable rule). `Ok(Some(..))` is byte-identical —
/// rows, tuple order, error precedence — to the frame machine at every
/// width.
///
/// At width ≥ 2 over a view that passed [`EdbView::prepare_parallel`], the
/// chunks fan out on the shared pool with the deterministic rule-then-chunk
/// merge epilogue; otherwise the pipeline runs single-threaded, which still
/// amortizes relation/index fetches from per-tuple to per-chunk.
pub fn try_evaluate(
    crs: &CompiledRuleSet,
    edb: &dyn EdbView,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<Option<BTreeMap<String, Relation>>> {
    if !enabled() {
        return Ok(None);
    }
    let Some(plan) = crs.batch_plan() else {
        return Ok(None);
    };
    debug_assert!(
        crs.parallel_safe(),
        "plans exist only for parallel-safe sets"
    );
    let width = crate::parallel::threads();
    if width >= 2 && edb.prepare_parallel(&crs.body_relations())? {
        return evaluate_parallel(crs, plan, edb, head_columns, width).map(Some);
    }
    evaluate_sequential(crs, plan, edb, head_columns).map(Some)
}

/// One unit of batch work (mirrors the frame machine's parallel task split).
enum Task {
    /// Whole rule on the frame machine (unbatchable rule, planning error to
    /// reproduce canonically, or a scan below the size gate).
    Whole(usize),
    /// One contiguous chunk of a rule's depth-0 candidates through the
    /// vectorized pipeline.
    Chunk {
        rule: usize,
        lit: usize,
        rel: Arc<Relation>,
        keys: Arc<Vec<Key>>,
        range: (usize, usize),
    },
}

impl Task {
    fn rule(&self) -> usize {
        match self {
            Task::Whole(rule) | Task::Chunk { rule, .. } => *rule,
        }
    }
}

/// Chunk-parallel batch evaluation over a prepared (side-effect-free) view,
/// with the deterministic rule-then-chunk merge epilogue: fragments are
/// emitted in rule order then chunk order, and each rule's fragment errors
/// are drained (in task order) before any of its tuples is emitted — the
/// width-1 engine computes a whole rule's tuples before its first emit, so
/// a join error anywhere in a rule precedes an emit-time `KeyConflict` of
/// that rule's earlier fragments.
fn evaluate_parallel(
    crs: &CompiledRuleSet,
    plan: &BatchPlan,
    edb: &dyn EdbView,
    head_columns: &BTreeMap<String, Vec<String>>,
    width: usize,
) -> Result<BTreeMap<String, Relation>> {
    let min_keys = crate::tuning::batch_min_keys();
    let mut tasks: Vec<Task> = Vec::new();
    for (ri, rule) in crs.rules.iter().enumerate() {
        // Planning failures (unbound relation, arity mismatch) fall back to
        // a Whole task whose sequential join raises the canonical error.
        let scan = match plan.rules[ri] {
            Some(_) => Evaluator::new(edb, &NO_MINT_IDS)
                .plan_chunk_scan(rule)
                .unwrap_or(None),
            None => None,
        };
        match scan {
            Some((lit, rel, keys)) if keys.len() >= min_keys => {
                for range in crate::parallel::chunk_ranges(keys.len(), width) {
                    tasks.push(Task::Chunk {
                        rule: ri,
                        lit,
                        rel: Arc::clone(&rel),
                        keys: Arc::clone(&keys),
                        range,
                    });
                }
            }
            _ => tasks.push(Task::Whole(ri)),
        }
    }

    // Workers are pure: they share the prepared view, mint nothing, and
    // each produces an ordered fragment of one rule's head tuples.
    let results: Vec<Result<Vec<(Key, Row)>>> = crate::parallel::map_indexed(tasks.len(), |ti| {
        let ev = Evaluator::new(edb, &NO_MINT_IDS);
        match &tasks[ti] {
            Task::Whole(ri) => {
                let rule = &crs.rules[*ri];
                ev.rule_head_tuples(rule, &rule.base_order, None)
            }
            Task::Chunk {
                rule,
                lit,
                rel,
                keys,
                range,
            } => {
                let ops = plan.rules[*rule]
                    .as_ref()
                    .expect("chunk tasks exist only for planned rules");
                run_chunk(
                    &ev,
                    &crs.rules[*rule],
                    ops,
                    *lit,
                    rel,
                    &keys[range.0..range.1],
                )
            }
        }
    });

    let mut ev = Evaluator::new(edb, &NO_MINT_IDS);
    let mut results = results.into_iter();
    let mut ti = 0;
    for (ri, rule) in crs.rules.iter().enumerate() {
        ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
        let mut fragments: Vec<Vec<(Key, Row)>> = Vec::new();
        while ti < tasks.len() && tasks[ti].rule() == ri {
            fragments.push(results.next().expect("one result per task")?);
            ti += 1;
        }
        for tuples in fragments {
            for (key, row) in tuples {
                ev.emit(&rule.head.relation, key, row)?;
            }
        }
    }
    Ok(ev.into_derived())
}

/// Single-threaded batch evaluation (width 1, or a view that cannot be
/// shared with workers). Rules run strictly in order and each rule's scan
/// is planned immediately before it executes, so a lazy view's cold
/// resolutions — and any ids they mint — happen in exactly the sequential
/// first-touch order.
fn evaluate_sequential(
    crs: &CompiledRuleSet,
    plan: &BatchPlan,
    edb: &dyn EdbView,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<BTreeMap<String, Relation>> {
    let min_keys = crate::tuning::batch_min_keys();
    let mut ev = Evaluator::new(edb, &NO_MINT_IDS);
    for (ri, rule) in crs.rules.iter().enumerate() {
        ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
        let scan = match plan.rules[ri] {
            Some(_) => ev.plan_chunk_scan(rule).unwrap_or(None),
            None => None,
        };
        let tuples = match (scan, plan.rules[ri].as_ref()) {
            (Some((lit, rel, keys)), Some(ops)) if keys.len() >= min_keys => {
                run_chunk(&ev, rule, ops, lit, &rel, &keys)?
            }
            _ => ev.rule_head_tuples(rule, &rule.base_order, None)?,
        };
        for (key, row) in tuples {
            ev.emit(&rule.head.relation, key, row)?;
        }
    }
    Ok(ev.into_derived())
}

/// Execute one chunk through the vectorized pipeline; on **any** error,
/// discard the partial block and replay the chunk tuple-at-a-time, which
/// reproduces the canonical depth-first error — or, if the batch error was
/// an artifact of literal-at-a-time ordering, the canonical tuples.
fn run_chunk(
    ev: &Evaluator<'_>,
    rule: &CompiledRule,
    ops: &[BatchOp],
    lit0: usize,
    rel0: &Relation,
    keys: &[Key],
) -> Result<Vec<(Key, Row)>> {
    EXECS.fetch_add(1, Ordering::Relaxed);
    match exec_chunk(ev, rule, ops, lit0, rel0, keys) {
        Ok(tuples) => Ok(tuples),
        Err(_) => ev.chunk_head_tuples(rule, lit0, rel0, keys),
    }
}

/// The error used when a frame violates the static binding analysis (a
/// slot the plan proved bound is unbound). Unreachable by construction;
/// if it ever fires, the caller replays the chunk canonically.
fn static_bind_violation(rule: &CompiledRule) -> DatalogError {
    DatalogError::UnsafeRule {
        rule: rule.display.clone(),
    }
}

/// A block of frames in one flat row-major buffer (`rows × n_vars`): the
/// chunk's whole intermediate state costs one allocation instead of one
/// per frame, and non-multiplying stages compact it **in place** — per-row
/// work stays at the frame machine's bind cost, so set-at-a-time execution
/// profits from its amortized fetches instead of paying them back in
/// `malloc` traffic.
struct Block {
    buf: Vec<Option<Value>>,
    n_vars: usize,
    rows: usize,
}

impl Block {
    fn new(n_vars: usize, rows_hint: usize) -> Self {
        Block {
            buf: Vec::with_capacity(n_vars * rows_hint),
            n_vars,
            rows: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn frame(&self, i: usize) -> &[Option<Value>] {
        &self.buf[i * self.n_vars..(i + 1) * self.n_vars]
    }

    fn frame_mut(&mut self, i: usize) -> &mut [Option<Value>] {
        let n = self.n_vars;
        &mut self.buf[i * n..(i + 1) * n]
    }

    /// Append an all-unbound frame and return it for in-place unification.
    fn push_unbound(&mut self) -> &mut [Option<Value>] {
        self.buf.resize(self.buf.len() + self.n_vars, None);
        self.rows += 1;
        let start = self.buf.len() - self.n_vars;
        &mut self.buf[start..]
    }

    /// Append a copy of a source frame (a multi-match join output).
    fn push_clone(&mut self, src: &[Option<Value>]) -> &mut [Option<Value>] {
        self.buf.extend_from_slice(src);
        self.rows += 1;
        let start = self.buf.len() - self.n_vars;
        &mut self.buf[start..]
    }

    /// Append by **moving** a source frame's values out (the final match of
    /// a join input — the common single-match probe never clones).
    fn push_move(&mut self, src: &mut [Option<Value>]) -> &mut [Option<Value>] {
        self.buf.extend(src.iter_mut().map(std::mem::take));
        self.rows += 1;
        let start = self.buf.len() - self.n_vars;
        &mut self.buf[start..]
    }

    /// Drop the most recently appended frame (failed unification).
    fn pop(&mut self) {
        self.buf.truncate(self.buf.len() - self.n_vars);
        self.rows -= 1;
    }

    /// Compaction step: move row `from` down into slot `to` (`to < from`).
    fn move_row(&mut self, from: usize, to: usize) {
        let n = self.n_vars;
        for j in 0..n {
            self.buf[to * n + j] = std::mem::take(&mut self.buf[from * n + j]);
        }
    }

    /// Keep only the first `rows` rows after a compaction sweep.
    fn truncate_rows(&mut self, rows: usize) {
        self.buf.truncate(rows * self.n_vars);
        self.rows = rows;
    }
}

/// The vectorized pipeline over one chunk of depth-0 candidates: a flat
/// [`Block`] of frames flows through the ops literal-at-a-time. Each stage
/// preserves (frame order × ascending candidate order), which equals the
/// frame machine's depth-first output order; relations and indexes are
/// fetched once per (literal, chunk), and only while the block is
/// non-empty — the frame machine's lazy first-touch behavior, amortized.
fn exec_chunk(
    ev: &Evaluator<'_>,
    rule: &CompiledRule,
    ops: &[BatchOp],
    lit0: usize,
    rel0: &Relation,
    keys: &[Key],
) -> Result<Vec<(Key, Row)>> {
    let CLit::Pos(atom0) = &rule.body[lit0] else {
        unreachable!("chunk tasks are planned on positive atoms only")
    };
    // Scan stage: materialize the chunk's seed block. `select_rows` walks
    // dense ascending selections by a single in-order merge instead of
    // per-key tree probes (chunk key slices are always ascending).
    let mut block = Block::new(rule.n_vars, keys.len());
    let mut trail: Vec<usize> = Vec::with_capacity(rule.n_vars);
    rel0.select_rows(keys, |key, row| {
        trail.clear();
        if !unify_atom(atom0, key, row, block.push_unbound(), &mut trail) {
            block.pop();
        }
    });

    for op in ops {
        if block.is_empty() {
            // No frame reaches the remaining literals: like the frame
            // machine, never fetch their relations (no arity errors, no
            // cold resolution).
            break;
        }
        match op {
            BatchOp::PointJoin { lit } => {
                let CLit::Pos(atom) = &rule.body[*lit] else {
                    unreachable!("PointJoin is planned on positive atoms")
                };
                let mut write = 0;
                for read in 0..block.rows {
                    let key = match atom.terms[0].resolved(block.frame(read)) {
                        Some(kv) => match value_key(&atom.relation, kv) {
                            Ok(key) => key,
                            // A non-key value (e.g. NULL from an ω fk)
                            // matches nothing.
                            Err(_) => continue,
                        },
                        None => return Err(static_bind_violation(rule)),
                    };
                    let keep = match ev.relation_by_key(&atom.relation, key)? {
                        Some(row) => {
                            check_arity(atom, row.len() + 1)?;
                            trail.clear();
                            unify_atom(atom, key, &row, block.frame_mut(read), &mut trail)
                        }
                        None => false,
                    };
                    if keep {
                        if write != read {
                            block.move_row(read, write);
                        }
                        write += 1;
                    }
                }
                block.truncate_rows(write);
            }
            BatchOp::HashJoin { lit, col } => {
                let CLit::Pos(atom) = &rule.body[*lit] else {
                    unreachable!("HashJoin is planned on positive atoms")
                };
                let rel = ev.relation_full(&atom.relation)?;
                check_arity(atom, rel.schema().arity() + 1)?;
                let index = ev.index_for(&atom.relation, *col)?;
                let mut next = Block::new(rule.n_vars, block.rows);
                let mut cands: Vec<(Key, &Row)> = Vec::new();
                for i in 0..block.rows {
                    let value = match atom.terms[*col + 1].resolved(block.frame(i)) {
                        Some(v) => v.clone(),
                        None => return Err(static_bind_violation(rule)),
                    };
                    cands.clear();
                    cands.extend(
                        index
                            .keys_for(&value)
                            .iter()
                            .filter_map(|&k| rel.get(k).map(|r| (k, r))),
                    );
                    // All candidates but the last clone the input frame;
                    // the last moves it.
                    if let Some(((last_key, last_row), rest)) = cands.split_last() {
                        for &(k, r) in rest {
                            trail.clear();
                            if !unify_atom(atom, k, r, next.push_clone(block.frame(i)), &mut trail)
                            {
                                next.pop();
                            }
                        }
                        trail.clear();
                        let dst = next.push_move(block.frame_mut(i));
                        if !unify_atom(atom, *last_key, last_row, dst, &mut trail) {
                            next.pop();
                        }
                    }
                }
                block = next;
            }
            BatchOp::ScanJoin { lit } => {
                let CLit::Pos(atom) = &rule.body[*lit] else {
                    unreachable!("ScanJoin is planned on positive atoms")
                };
                let rel = ev.relation_full(&atom.relation)?;
                check_arity(atom, rel.schema().arity() + 1)?;
                let mut next = Block::new(rule.n_vars, block.rows);
                for i in 0..block.rows {
                    for (key, row) in rel.iter() {
                        trail.clear();
                        if !unify_atom(atom, key, row, next.push_clone(block.frame(i)), &mut trail)
                        {
                            next.pop();
                        }
                    }
                }
                block = next;
            }
            BatchOp::AntiPoint { lit } => {
                let CLit::Neg(atom) = &rule.body[*lit] else {
                    unreachable!("AntiPoint is planned on negated atoms")
                };
                let mut write = 0;
                for read in 0..block.rows {
                    let key = match atom.terms[0].resolved(block.frame(read)) {
                        Some(kv) => value_key(&atom.relation, kv).ok(),
                        None => return Err(static_bind_violation(rule)),
                    };
                    let matched = match key {
                        // Non-key values match nothing: negation succeeds.
                        None => false,
                        Some(key) => match ev.relation_by_key(&atom.relation, key)? {
                            None => false,
                            Some(row) => {
                                trail.clear();
                                let frame = block.frame_mut(read);
                                let m = unify_atom(atom, key, &row, frame, &mut trail);
                                undo(frame, &mut trail, 0);
                                m
                            }
                        },
                    };
                    if !matched {
                        if write != read {
                            block.move_row(read, write);
                        }
                        write += 1;
                    }
                }
                block.truncate_rows(write);
            }
            BatchOp::AntiProbe { lit, col } => {
                let CLit::Neg(atom) = &rule.body[*lit] else {
                    unreachable!("AntiProbe is planned on negated atoms")
                };
                let rel = ev.relation_full(&atom.relation)?;
                check_arity(atom, rel.schema().arity() + 1)?;
                let index = ev.index_for(&atom.relation, *col)?;
                let mut write = 0;
                for read in 0..block.rows {
                    let value = match atom.terms[*col + 1].resolved(block.frame(read)) {
                        Some(v) => v.clone(),
                        None => return Err(static_bind_violation(rule)),
                    };
                    let mut matched = false;
                    for &key in index.keys_for(&value) {
                        let Some(row) = rel.get(key) else { continue };
                        trail.clear();
                        let frame = block.frame_mut(read);
                        let m = unify_atom(atom, key, row, frame, &mut trail);
                        undo(frame, &mut trail, 0);
                        if m {
                            matched = true;
                            break;
                        }
                    }
                    if !matched {
                        if write != read {
                            block.move_row(read, write);
                        }
                        write += 1;
                    }
                }
                block.truncate_rows(write);
            }
            BatchOp::AntiScan { lit } => {
                let CLit::Neg(atom) = &rule.body[*lit] else {
                    unreachable!("AntiScan is planned on negated atoms")
                };
                let rel = ev.relation_full(&atom.relation)?;
                check_arity(atom, rel.schema().arity() + 1)?;
                let mut write = 0;
                for read in 0..block.rows {
                    let mut matched = false;
                    for (key, row) in rel.iter() {
                        trail.clear();
                        let frame = block.frame_mut(read);
                        let m = unify_atom(atom, key, row, frame, &mut trail);
                        undo(frame, &mut trail, 0);
                        if m {
                            matched = true;
                            break;
                        }
                    }
                    if !matched {
                        if write != read {
                            block.move_row(read, write);
                        }
                        write += 1;
                    }
                }
                block.truncate_rows(write);
            }
            BatchOp::Filter { lit } => {
                let CLit::Cond { expr, cols } = &rule.body[*lit] else {
                    unreachable!("Filter is planned on condition literals")
                };
                let mut write = 0;
                for read in 0..block.rows {
                    let keep = {
                        let ctx = FrameCtx {
                            cols,
                            frame: block.frame(read),
                        };
                        expr.matches(&ctx).map_err(DatalogError::from)?
                    };
                    if keep {
                        if write != read {
                            block.move_row(read, write);
                        }
                        write += 1;
                    }
                }
                block.truncate_rows(write);
            }
            BatchOp::Map { lit } => {
                let CLit::Assign { slot, expr, cols } = &rule.body[*lit] else {
                    unreachable!("Map is planned on assignment literals")
                };
                let mut write = 0;
                for read in 0..block.rows {
                    let v = {
                        let ctx = FrameCtx {
                            cols,
                            frame: block.frame(read),
                        };
                        expr.eval(&ctx).map_err(DatalogError::from)?
                    };
                    // Assignment acts as an equality check when bound —
                    // statically uniform across the block either way.
                    let slot_value = &mut block.frame_mut(read)[*slot];
                    let keep = match slot_value {
                        Some(bound) => *bound == v,
                        None => {
                            *slot_value = Some(v);
                            true
                        }
                    };
                    if keep {
                        if write != read {
                            block.move_row(read, write);
                        }
                        write += 1;
                    }
                }
                block.truncate_rows(write);
            }
        }
    }

    let mut out = Vec::with_capacity(block.rows);
    for i in 0..block.rows {
        out.push(head_tuple(rule, block.frame(i))?);
    }
    Ok(out)
}
