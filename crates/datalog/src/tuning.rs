//! One home for the engine's parallelism/batching **gate thresholds**.
//!
//! Before this module the numbers lived scattered at their call sites — the
//! minimum chunk size of every chunked scan was a literal `16` in four
//! places, and the delta engine's "is this write big enough to fan out"
//! gate was a private constant — which made multi-core re-measurement
//! (ROADMAP housekeeping) a code-editing exercise. Each threshold now has
//! exactly one definition, an environment override so a bench sweep can
//! vary it without recompiling, and a runtime override for in-process
//! sweeps:
//!
//! | Threshold | Default | Env override | Used by |
//! |---|---|---|---|
//! | [`min_chunk`] | 16 | `INVERDA_MIN_CHUNK` | every [`crate::parallel::chunk_ranges`] split: chunked rule scans ([`crate::eval`], [`crate::batch`]) and delta-probe/candidate batches ([`crate::delta`]) |
//! | [`par_min_work`] | 64 | `INVERDA_PAR_MIN_WORK` | the delta engine's fan-out gate: below this many probe tuples / candidate keys a write stays sequential |
//! | [`batch_min_keys`] | 64 | `INVERDA_BATCH_MIN_KEYS` | the batch executor's per-rule size gate: a depth-0 scan with fewer candidate keys runs on the frame machine ([`crate::batch`]) |
//!
//! **Determinism contract:** every threshold only decides *how work is
//! split or which equivalent engine runs it* — never what is computed. Any
//! value of any threshold produces byte-identical results (the differential
//! suites hold the engines to that), so sweeping these is always safe.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel meaning "no runtime override installed".
const UNSET: usize = usize::MAX;

static MIN_CHUNK: AtomicUsize = AtomicUsize::new(UNSET);
static PAR_MIN_WORK: AtomicUsize = AtomicUsize::new(UNSET);
static BATCH_MIN_KEYS: AtomicUsize = AtomicUsize::new(UNSET);

fn read(over: &AtomicUsize, env: &str, default: usize) -> usize {
    let v = over.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

fn write(over: &AtomicUsize, value: Option<usize>) {
    over.store(value.unwrap_or(UNSET), Ordering::Relaxed);
}

/// Minimum number of items per chunk when a scan is split across workers
/// (`INVERDA_MIN_CHUNK`, default 16). Larger values mean fewer, coarser
/// fragments; `1` splits as finely as the width allows.
pub fn min_chunk() -> usize {
    read(&MIN_CHUNK, "INVERDA_MIN_CHUNK", 16).max(1)
}

/// Override [`min_chunk`] at runtime; `None` restores env/default behavior.
pub fn set_min_chunk(value: Option<usize>) {
    write(&MIN_CHUNK, value);
}

/// Minimum probe-tuple / candidate-key count before a delta propagation
/// fans out (`INVERDA_PAR_MIN_WORK`, default 64). Below it, the
/// coordination overhead dwarfs the work: single-row OLTP writes stay on
/// the sequential path at every width.
pub fn par_min_work() -> usize {
    read(&PAR_MIN_WORK, "INVERDA_PAR_MIN_WORK", 64)
}

/// Override [`par_min_work`] at runtime; `None` restores env/default
/// behavior.
pub fn set_par_min_work(value: Option<usize>) {
    write(&PAR_MIN_WORK, value);
}

/// Minimum depth-0 candidate count before a rule runs on the batch
/// executor (`INVERDA_BATCH_MIN_KEYS`, default 64). Below it the block
/// set-up cost cannot amortize and the tuple-at-a-time frame machine is
/// cheaper — small delta recomputations stay where they are fastest.
pub fn batch_min_keys() -> usize {
    read(&BATCH_MIN_KEYS, "INVERDA_BATCH_MIN_KEYS", 64)
}

/// Override [`batch_min_keys`] at runtime; `None` restores env/default
/// behavior.
pub fn set_batch_min_keys(value: Option<usize>) {
    write(&BATCH_MIN_KEYS, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One body for everything that toggles the process-global overrides —
    /// separate `#[test]` fns would race under libtest's parallel runner.
    #[test]
    fn overrides_win_and_restore() {
        let env_free = [
            "INVERDA_MIN_CHUNK",
            "INVERDA_PAR_MIN_WORK",
            "INVERDA_BATCH_MIN_KEYS",
        ]
        .iter()
        .all(|v| std::env::var(v).is_err());
        if env_free {
            assert_eq!(min_chunk(), 16);
            assert_eq!(par_min_work(), 64);
            assert_eq!(batch_min_keys(), 64);
        }
        set_min_chunk(Some(3));
        set_par_min_work(Some(1));
        set_batch_min_keys(Some(100));
        assert_eq!(min_chunk(), 3);
        assert_eq!(par_min_work(), 1);
        assert_eq!(batch_min_keys(), 100);
        // min_chunk of 0 would loop forever in chunk_ranges; clamped to 1.
        set_min_chunk(Some(0));
        assert_eq!(min_chunk(), 1);
        set_min_chunk(None);
        set_par_min_work(None);
        set_batch_min_keys(None);
        if env_free {
            assert_eq!(min_chunk(), 16);
            assert_eq!(par_min_work(), 64);
            assert_eq!(batch_min_keys(), 64);
        }
    }
}
