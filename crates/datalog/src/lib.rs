//! # inverda-datalog
//!
//! The Datalog formalism of the paper, executable.
//!
//! Section 4 of the paper defines the semantics of every BiDEL SMO as a pair
//! of Datalog rule sets (γ_tgt, γ_src) mapping the *source side* state of an
//! SMO instance to its *target side* state and back. This crate provides:
//!
//! * the rule AST ([`ast`]) matching the paper's extended Datalog — positive
//!   and negative atoms over keyed relations, condition predicates `c(A)`,
//!   function assignments `a = f(…)`, and the skolem generators `idT(B)` of
//!   the id-generating SMOs (Appendix B.3/B.4/B.6);
//! * a staged, non-recursive **compiled** evaluation engine ([`eval`]) —
//!   rules are interned into slot-addressed frames once, then evaluated in
//!   order over on-demand join indexes; later rules may reference earlier
//!   heads (the paper's `old`/`new` sequencing);
//! * the original naive interpreter ([`naive`]), kept as the reference
//!   oracle for differential testing of the compiled engine;
//! * the engine's parallelism substrate ([`parallel`]): the
//!   `INVERDA_THREADS` width knob and the shared work-stealing pool behind
//!   every deterministic fan-out (chunked rule evaluation, delta-probe
//!   batches, the write path's independent SMO hops);
//! * mechanical **update propagation** ([`delta`]) deriving minimal write
//!   deltas through a rule set, the engine-side equivalent of the paper's
//!   generated triggers (Section 6, Rules 52–54, citing Behrend et al.);
//! * the five **simplification lemmas** of Section 5 ([`simplify`]) as
//!   executable rule-set transformations, used to re-derive the paper's
//!   bidirectionality proofs (Appendix A) mechanically;
//! * **γ-chain fusion** ([`fusion`]): the `INVERDA_FUSION` knob, the
//!   structural fusability gate, and budgeted Lemma-1 inlining, with which
//!   the core crate statically composes runs of adjacent column-level
//!   mappings into single fused rule sets;
//! * **batch (vectorized) execution** ([`batch`]): the `INVERDA_BATCH` knob
//!   and a relational-algebra executor that runs parallel-safe rule sets as
//!   literal-at-a-time block pipelines over whole chunks, byte-identical to
//!   the frame machine;
//! * one home for the engine's parallelism/batching gate thresholds
//!   ([`tuning`]) with env and runtime overrides.

#![warn(missing_docs)]

pub mod ast;
pub mod batch;
pub mod delta;
pub mod error;
pub mod eval;
pub mod fusion;
pub mod naive;
pub mod parallel;
pub mod simplify;
pub mod skolem;
pub mod tuning;

pub use ast::{Atom, Literal, Rule, RuleSet, Term};
pub use delta::{Delta, DeltaMap, PatchedEdb};
pub use error::DatalogError;
pub use eval::{evaluate, evaluate_compiled, CompiledRuleSet, EdbView, MapEdb, ReservingIds};
pub use skolem::{RegOp, RegistryDivergence, SkolemRegistry};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatalogError>;
