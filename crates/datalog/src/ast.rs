//! Rule AST for the paper's extended Datalog.
//!
//! Conventions carried over from Section 4:
//!
//! * every atom's **first term is the key position** (the InVerDa identifier
//!   `p`);
//! * attribute-list variables (capital letters in the paper, e.g. `A`) are
//!   already expanded to one variable per column when rules are instantiated
//!   from an SMO's parameters, so a term here is always a single variable,
//!   an anonymous `_`, or a constant;
//! * condition predicates `cR(A)` and functions `f(r1,…,rn)` are carried as
//!   [`Expr`] trees whose column names *are* the rule variable names;
//! * `t = idT(B)` skolem assignments model the id-generating functions of
//!   Appendix B.3/B.4/B.6.

use inverda_storage::{Expr, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A term in an atom.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// The anonymous variable `_` (matches anything, binds nothing).
    Anon,
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Named-variable constructor.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// The variable name if this is a named variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Anon => write!(f, "_"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom `q(t0, t1, …, tn)`; `t0` is the key position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Terms; index 0 is the key position `p`.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Build an atom whose terms are all named variables.
    pub fn vars(relation: impl Into<String>, names: &[&str]) -> Atom {
        Atom {
            relation: relation.into(),
            terms: names.iter().map(|n| Term::var(*n)).collect(),
        }
    }

    /// The key term (position 0).
    pub fn key_term(&self) -> &Term {
        &self.terms[0]
    }

    /// Named variables occurring in the atom (in position order, with dups).
    pub fn variables(&self) -> Vec<&str> {
        self.terms.iter().filter_map(|t| t.as_var()).collect()
    }

    /// Rename variables according to the mapping.
    pub fn rename(&self, mapping: &BTreeMap<String, String>) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match mapping.get(v) {
                        Some(n) => Term::Var(n.clone()),
                        None => t.clone(),
                    },
                    other => other.clone(),
                })
                .collect(),
        }
    }

    /// Replace every variable not in `keep` with `_`.
    pub fn anonymize_except(&self, keep: &[&str]) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) if !keep.contains(&v.as_str()) => Term::Anon,
                    other => other.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, parts.join(", "))
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Positive atom.
    Pos(Atom),
    /// Negated atom.
    Neg(Atom),
    /// Condition predicate (`cR(A)`, `A ≠ A'`, …) over rule variables.
    Cond(Expr),
    /// Function assignment `var = f(…)`. Acts as an equality check when the
    /// variable is already bound.
    Assign {
        /// Assigned variable.
        var: String,
        /// Function over rule variables.
        expr: Expr,
    },
    /// Skolem assignment `var = idG(args)`: a memoized id-generating function
    /// (a "regular SQL sequence" per Appendix B.3). Equal argument tuples
    /// always yield the same generated id.
    Skolem {
        /// Assigned variable.
        var: String,
        /// Generator name (e.g. `id_Author`).
        generator: String,
        /// Argument terms (variables or constants).
        args: Vec<Term>,
    },
}

impl Literal {
    /// The relation addressed, for (positive or negative) atoms.
    pub fn relation(&self) -> Option<&str> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(&a.relation),
            _ => None,
        }
    }

    /// All named variables occurring in the literal.
    pub fn variables(&self) -> Vec<String> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => {
                a.variables().into_iter().map(String::from).collect()
            }
            Literal::Cond(e) => e.referenced_columns(),
            Literal::Assign { var, expr } => {
                let mut v = expr.referenced_columns();
                v.push(var.clone());
                v
            }
            Literal::Skolem { var, args, .. } => {
                let mut v: Vec<String> = args
                    .iter()
                    .filter_map(|t| t.as_var().map(String::from))
                    .collect();
                v.push(var.clone());
                v
            }
        }
    }

    /// Rename variables according to the mapping (including inside
    /// expressions).
    pub fn rename(&self, mapping: &BTreeMap<String, String>) -> Literal {
        match self {
            Literal::Pos(a) => Literal::Pos(a.rename(mapping)),
            Literal::Neg(a) => Literal::Neg(a.rename(mapping)),
            Literal::Cond(e) => Literal::Cond(e.rename_columns(mapping)),
            Literal::Assign { var, expr } => Literal::Assign {
                var: mapping.get(var).cloned().unwrap_or_else(|| var.clone()),
                expr: expr.rename_columns(mapping),
            },
            Literal::Skolem {
                var,
                generator,
                args,
            } => Literal::Skolem {
                var: mapping.get(var).cloned().unwrap_or_else(|| var.clone()),
                generator: generator.clone(),
                args: args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => {
                            Term::Var(mapping.get(v).cloned().unwrap_or_else(|| v.clone()))
                        }
                        other => other.clone(),
                    })
                    .collect(),
            },
        }
    }

    /// True for `Pos`.
    pub fn is_positive_atom(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "¬{a}"),
            Literal::Cond(e) => write!(f, "{{{e}}}"),
            Literal::Assign { var, expr } => write!(f, "{var} = {expr}"),
            Literal::Skolem {
                var,
                generator,
                args,
            } => {
                let parts: Vec<String> = args.iter().map(|t| t.to_string()).collect();
                write!(f, "{var} = {generator}({})", parts.join(", "))
            }
        }
    }
}

/// A rule `head ← body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head atom; its first term is the derived key.
    pub head: Atom,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    /// The head's key variable name, if it is a named variable.
    pub fn head_key_var(&self) -> Option<&str> {
        self.head.key_term().as_var()
    }

    /// All variables of the rule (head + body), deduped, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for v in self.head.variables() {
            if !seen.iter().any(|s: &String| s == v) {
                seen.push(v.to_string());
            }
        }
        for lit in &self.body {
            for v in lit.variables() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// Rename variables according to the mapping.
    pub fn rename(&self, mapping: &BTreeMap<String, String>) -> Rule {
        Rule {
            head: self.head.rename(mapping),
            body: self.body.iter().map(|l| l.rename(mapping)).collect(),
        }
    }

    /// Canonical form: variables renamed `v0, v1, …` by first occurrence.
    /// Two rules that are equal up to variable renaming have equal canonical
    /// forms (used by Lemma 3's "or can be renamed to be so").
    pub fn canonicalize(&self) -> Rule {
        let vars = self.variables();
        let mapping: BTreeMap<String, String> = vars
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, format!("v{i}")))
            .collect();
        self.rename(&mapping)
    }

    /// Relations referenced in body atoms (positive and negative).
    pub fn body_relations(&self) -> Vec<&str> {
        self.body.iter().filter_map(|l| l.relation()).collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.body.iter().map(|l| l.to_string()).collect();
        write!(f, "{} ← {}", self.head, parts.join(", "))
    }
}

/// An ordered rule set.
///
/// Order matters: evaluation is staged — later rules may reference the heads
/// of earlier rules, which realizes the paper's `old`/`new` sequencing for
/// the id-generating SMOs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleSet {
    /// Rules in evaluation order.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Build from rules.
    pub fn new(rules: Vec<Rule>) -> RuleSet {
        RuleSet { rules }
    }

    /// Distinct head relation names, in first-derivation order.
    pub fn head_relations(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.relation) {
                out.push(r.head.relation.clone());
            }
        }
        out
    }

    /// All rules deriving `head`.
    pub fn rules_for(&self, head: &str) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.head.relation == head)
            .collect()
    }

    /// Distinct relation names referenced in bodies that are *not* derived
    /// by the rule set itself — i.e. the EDB inputs.
    pub fn input_relations(&self) -> Vec<String> {
        let heads = self.head_relations();
        let mut out: Vec<String> = Vec::new();
        for r in &self.rules {
            for rel in r.body_relations() {
                if !heads.iter().any(|h| h == rel) && !out.iter().any(|o| o == rel) {
                    out.push(rel.to_string());
                }
            }
        }
        out
    }

    /// Append all rules of another set.
    pub fn extend(&mut self, other: RuleSet) {
        self.rules.extend(other.rules);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Build the list-disequality condition `A ≠ A'` of the paper (e.g. Rule 23):
/// true iff any component differs.
pub fn lists_ne(a: &[&str], b: &[&str]) -> Expr {
    assert_eq!(a.len(), b.len(), "attribute lists must have equal length");
    assert!(!a.is_empty(), "attribute lists must be non-empty");
    let mut iter = a.iter().zip(b.iter());
    let (x, y) = iter.next().expect("non-empty");
    let mut expr = Expr::col(*x).ne(Expr::col(*y));
    for (x, y) in iter {
        expr = expr.or(Expr::col(*x).ne(Expr::col(*y)));
    }
    expr
}

/// Build the list-equality condition `A = A'`: all components equal.
pub fn lists_eq(a: &[&str], b: &[&str]) -> Expr {
    assert_eq!(a.len(), b.len(), "attribute lists must have equal length");
    assert!(!a.is_empty(), "attribute lists must be non-empty");
    let mut iter = a.iter().zip(b.iter());
    let (x, y) = iter.next().expect("non-empty");
    let mut expr = Expr::col(*x).eq(Expr::col(*y));
    for (x, y) in iter {
        expr = expr.and(Expr::col(*x).eq(Expr::col(*y)));
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split_gamma_src() -> RuleSet {
        // Rules 18-20 of the paper: T from R, S, T'.
        RuleSet::new(vec![
            Rule::new(
                Atom::vars("T", &["p", "a"]),
                vec![Literal::Pos(Atom::vars("R", &["p", "a"]))],
            ),
            Rule::new(
                Atom::vars("T", &["p", "a"]),
                vec![
                    Literal::Pos(Atom::vars("S", &["p", "a"])),
                    Literal::Neg(Atom::new("R", vec![Term::var("p"), Term::Anon])),
                ],
            ),
            Rule::new(
                Atom::vars("T", &["p", "a"]),
                vec![Literal::Pos(Atom::vars("T'", &["p", "a"]))],
            ),
        ])
    }

    #[test]
    fn head_and_input_relations() {
        let rs = split_gamma_src();
        assert_eq!(rs.head_relations(), vec!["T"]);
        assert_eq!(rs.input_relations(), vec!["R", "S", "T'"]);
        assert_eq!(rs.rules_for("T").len(), 3);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn display_matches_paper_style() {
        let rs = split_gamma_src();
        let text = rs.rules[1].to_string();
        assert_eq!(text, "T(p, a) ← S(p, a), ¬R(p, _)");
    }

    #[test]
    fn rule_variables_in_occurrence_order() {
        let r = Rule::new(
            Atom::vars("H", &["p", "x"]),
            vec![
                Literal::Pos(Atom::vars("B", &["p", "y"])),
                Literal::Cond(Expr::col("x").eq(Expr::col("y"))),
            ],
        );
        assert_eq!(r.variables(), vec!["p", "x", "y"]);
    }

    #[test]
    fn canonicalization_equates_alpha_variants() {
        let r1 = Rule::new(
            Atom::vars("H", &["p", "a"]),
            vec![Literal::Pos(Atom::vars("B", &["p", "a"]))],
        );
        let r2 = Rule::new(
            Atom::vars("H", &["q", "z"]),
            vec![Literal::Pos(Atom::vars("B", &["q", "z"]))],
        );
        assert_eq!(r1.canonicalize(), r2.canonicalize());
    }

    #[test]
    fn rename_reaches_expressions_and_skolems() {
        let r = Rule::new(
            Atom::vars("H", &["p", "b"]),
            vec![
                Literal::Cond(Expr::col("b").gt(Expr::lit(1))),
                Literal::Assign {
                    var: "b".into(),
                    expr: Expr::col("a"),
                },
                Literal::Skolem {
                    var: "t".into(),
                    generator: "id_T".into(),
                    args: vec![Term::var("b")],
                },
            ],
        );
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), "bb".to_string());
        let r2 = r.rename(&m);
        assert_eq!(r2.head.terms[1], Term::var("bb"));
        match &r2.body[0] {
            Literal::Cond(e) => assert_eq!(e.to_string(), "bb > 1"),
            other => panic!("unexpected {other}"),
        }
        match &r2.body[2] {
            Literal::Skolem { args, .. } => assert_eq!(args[0], Term::var("bb")),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn anonymize_except_keeps_listed_vars() {
        let a = Atom::vars("R", &["p", "x", "y"]);
        let b = a.anonymize_except(&["p"]);
        assert_eq!(b.terms, vec![Term::var("p"), Term::Anon, Term::Anon]);
    }

    #[test]
    fn list_conditions() {
        let ne = lists_ne(&["a", "b"], &["a2", "b2"]);
        assert_eq!(ne.to_string(), "(a <> a2 OR b <> b2)");
        let eq = lists_eq(&["a"], &["a2"]);
        assert_eq!(eq.to_string(), "a = a2");
    }
}
