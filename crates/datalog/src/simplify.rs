//! The simplification lemmas of Section 5, executable.
//!
//! The paper proves bidirectionality of every SMO by composing its two
//! mapping rule sets (e.g. `γ_src(γ_tgt(D_src))`), then syntactically
//! simplifying the composed Datalog program with five lemmas until only
//! identity rules remain. This module implements those lemmas as rule-set
//! transformations:
//!
//! * **Lemma 1 (Deduction)** — [`unfold`]: substitute defined predicates into
//!   rule bodies, for positive and negative occurrences (the latter with the
//!   paper's `t(K)` construction, which is sound because all relations are
//!   functional in their key `p`);
//! * **Lemma 2 (Empty predicate)** — [`apply_empty`];
//! * **Lemma 3 (Tautology)** — rule pairs identical up to one complementary
//!   literal merge; includes the separated-twin merge the paper uses for
//!   Rules 118/120 → 122;
//! * **Lemma 4 (Contradiction)** — rules with complementary body literals
//!   are dropped;
//! * **Lemma 5 (Unique key)** — two positive atoms over the same relation
//!   with the same key term unify their payloads.
//!
//! [`simplify_fixpoint`] iterates Lemmas 3–5 (plus duplicate-literal removal,
//! subsumption, dead-assignment elimination and trivial-condition folding)
//! until the rule set stops changing. Every applied step is appended to a
//! [`Derivation`], so the `formal` harness can print an Appendix-A-style
//! proof transcript.

use crate::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_storage::{CmpOp, Expr};
use std::collections::{BTreeMap, BTreeSet};

/// A transcript of applied simplification steps.
#[derive(Debug, Default, Clone)]
pub struct Derivation {
    /// Human-readable proof steps in application order.
    pub steps: Vec<String>,
}

impl Derivation {
    /// Empty derivation.
    pub fn new() -> Self {
        Derivation::default()
    }

    fn log(&mut self, step: impl Into<String>) {
        self.steps.push(step.into());
    }
}

/// Rename the relations of every atom according to the map (used to label
/// original relations, e.g. `T → T_D`, before composing mappings).
pub fn rename_relations(rules: &RuleSet, map: &BTreeMap<String, String>) -> RuleSet {
    let fix_atom = |a: &Atom| Atom {
        relation: map
            .get(&a.relation)
            .cloned()
            .unwrap_or_else(|| a.relation.clone()),
        terms: a.terms.clone(),
    };
    RuleSet::new(
        rules
            .rules
            .iter()
            .map(|r| Rule {
                head: fix_atom(&r.head),
                body: r
                    .body
                    .iter()
                    .map(|l| match l {
                        Literal::Pos(a) => Literal::Pos(fix_atom(a)),
                        Literal::Neg(a) => Literal::Neg(fix_atom(a)),
                        other => other.clone(),
                    })
                    .collect(),
            })
            .collect(),
    )
}

/// Rename skolem generator names according to the map (used alongside
/// [`rename_relations`] when instantiating SMO templates with globally
/// unique names).
pub fn rename_generators(rules: &RuleSet, map: &BTreeMap<String, String>) -> RuleSet {
    RuleSet::new(
        rules
            .rules
            .iter()
            .map(|r| Rule {
                head: r.head.clone(),
                body: r
                    .body
                    .iter()
                    .map(|l| match l {
                        Literal::Skolem {
                            var,
                            generator,
                            args,
                        } => Literal::Skolem {
                            var: var.clone(),
                            generator: map
                                .get(generator)
                                .cloned()
                                .unwrap_or_else(|| generator.clone()),
                            args: args.clone(),
                        },
                        other => other.clone(),
                    })
                    .collect(),
            })
            .collect(),
    )
}

/// Lemma 2: relations known to be empty. Rules with a positive occurrence
/// are dropped; negative occurrences are removed from bodies.
pub fn apply_empty(rules: &RuleSet, empty: &BTreeSet<String>, deriv: &mut Derivation) -> RuleSet {
    let mut out = Vec::new();
    'rules: for rule in &rules.rules {
        let mut body = Vec::new();
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) if empty.contains(&a.relation) => {
                    deriv.log(format!(
                        "Lemma 2: dropped rule (positive literal over empty '{}'): {rule}",
                        a.relation
                    ));
                    continue 'rules;
                }
                Literal::Neg(a) if empty.contains(&a.relation) => {
                    deriv.log(format!("Lemma 2: removed ¬{} from: {rule}", a.relation));
                }
                other => body.push(other.clone()),
            }
        }
        out.push(Rule::new(rule.head.clone(), body));
    }
    RuleSet::new(out)
}

/// Lemma 1: unfold every body literal over a predicate defined in `defs`,
/// to fixpoint. `defs` must be non-recursive.
pub fn unfold(outer: &RuleSet, defs: &RuleSet, deriv: &mut Derivation) -> RuleSet {
    let def_heads: BTreeSet<String> = defs.head_relations().into_iter().collect();
    let mut fresh = FreshVars::new(outer, defs);
    let mut work: Vec<Rule> = outer.rules.clone();
    let mut done: Vec<Rule> = Vec::new();
    let mut guard = 0usize;
    while let Some(rule) = work.pop() {
        guard += 1;
        assert!(
            guard < 100_000,
            "unfolding did not terminate (recursive defs?)"
        );
        let target = rule
            .body
            .iter()
            .position(|l| l.relation().map(|r| def_heads.contains(r)).unwrap_or(false));
        match target {
            None => done.push(rule),
            Some(i) => {
                let expanded = unfold_literal(&rule, i, defs, &mut fresh, deriv);
                work.extend(expanded);
            }
        }
    }
    done.reverse();
    RuleSet::new(done)
}

fn unfold_literal(
    rule: &Rule,
    idx: usize,
    defs: &RuleSet,
    fresh: &mut FreshVars,
    deriv: &mut Derivation,
) -> Vec<Rule> {
    match &rule.body[idx] {
        Literal::Pos(atom) => {
            let mut out = Vec::new();
            for def in defs.rules_for(&atom.relation) {
                if let Some(new_rule) = unfold_positive(rule, idx, atom, def, fresh) {
                    deriv.log(format!(
                        "Lemma 1 (positive): unfolded {} in: {rule}  using  {def}",
                        atom
                    ));
                    out.push(new_rule);
                }
            }
            out
        }
        Literal::Neg(atom) => {
            // ¬q ≡ conjunction over defining rules of q; each defining rule
            // contributes one blocked literal choice (t(K)); the result is
            // the cross product of choices.
            let defining: Vec<&Rule> = defs.rules_for(&atom.relation);
            let mut variants: Vec<Vec<Literal>> = vec![Vec::new()];
            for def in &defining {
                let choices = negative_choices(atom, def, fresh);
                let mut next = Vec::new();
                for base in &variants {
                    for choice in &choices {
                        let mut v = base.clone();
                        v.extend(choice.clone());
                        next.push(v);
                    }
                }
                variants = next;
            }
            deriv.log(format!(
                "Lemma 1 (negative): unfolded ¬{atom} into {} variant(s) in: {rule}",
                variants.len()
            ));
            variants
                .into_iter()
                .map(|extra| {
                    let mut body: Vec<Literal> = rule
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != idx)
                        .map(|(_, l)| l.clone())
                        .collect();
                    body.extend(extra);
                    Rule::new(rule.head.clone(), body)
                })
                .collect()
        }
        _ => vec![rule.clone()],
    }
}

/// Unify the defining rule's head with the literal and inline its body.
fn unfold_positive(
    rule: &Rule,
    idx: usize,
    atom: &Atom,
    def: &Rule,
    fresh: &mut FreshVars,
) -> Option<Rule> {
    let renamed = rename_def_apart(atom, def, fresh)?;
    // `renamed.head` now has terms aligned with `atom` where possible; any
    // leftover constant-vs-constant mismatch was rejected in rename_def_apart.
    // Terms of `atom` that are constants while the def head has a variable
    // were substituted inside rename_def_apart as well.
    let mut body: Vec<Literal> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, l)| l.clone())
        .collect();
    // Positions where atom has a Var but def head has a Const: the host
    // rule's variable is fixed to that constant.
    let mut host_subst: BTreeMap<String, Term> = BTreeMap::new();
    for (at, ht) in atom.terms.iter().zip(renamed.head.terms.iter()) {
        match (at, ht) {
            (Term::Var(v), Term::Const(c)) => {
                host_subst.insert(v.clone(), Term::Const(c.clone()));
            }
            (Term::Const(a), Term::Const(b)) if a != b => return None,
            _ => {}
        }
    }
    body.extend(renamed.body.clone());
    let mut new_rule = Rule::new(rule.head.clone(), body);
    if !host_subst.is_empty() {
        new_rule = substitute_terms(&new_rule, &host_subst);
    }
    Some(new_rule)
}

/// Rename a defining rule so its head terms align with the literal's terms:
/// head variables become the literal's terms; local variables become fresh.
/// Returns `None` on constant clash.
fn rename_def_apart(atom: &Atom, def: &Rule, fresh: &mut FreshVars) -> Option<Rule> {
    if atom.terms.len() != def.head.terms.len() {
        return None;
    }
    let mut subst: BTreeMap<String, Term> = BTreeMap::new();
    for (lt, ht) in atom.terms.iter().zip(def.head.terms.iter()) {
        match ht {
            Term::Var(hv) => {
                let replacement = match lt {
                    Term::Var(v) => Term::Var(v.clone()),
                    Term::Const(c) => Term::Const(c.clone()),
                    Term::Anon => Term::Var(fresh.next(hv)),
                };
                match subst.get(hv) {
                    None => {
                        subst.insert(hv.clone(), replacement);
                    }
                    Some(existing) if *existing == replacement => {}
                    Some(_) => return None, // repeated head var, conflicting
                }
            }
            Term::Const(c) => {
                if let Term::Const(lc) = lt {
                    if lc != c {
                        return None;
                    }
                }
                // Var-vs-const handled by the caller (host substitution).
            }
            Term::Anon => {}
        }
    }
    // Local variables get fresh names.
    for v in def.variables() {
        if !subst.contains_key(&v) {
            subst.insert(v.clone(), Term::Var(fresh.next(&v)));
        }
    }
    Some(substitute_terms(def, &subst))
}

/// The paper's `t(K)` construction: ways a defining rule's body can be
/// blocked, expressed over the host rule's variables.
fn negative_choices(atom: &Atom, def: &Rule, fresh: &mut FreshVars) -> Vec<Vec<Literal>> {
    let renamed = match rename_def_apart(atom, def, fresh) {
        Some(r) => r,
        None => return vec![vec![]], // head cannot match: ¬q trivially true
    };
    let positive_atoms: Vec<&Atom> = renamed
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    let binders_for = |vars: &[String]| -> Vec<Literal> {
        positive_atoms
            .iter()
            .filter(|a| a.variables().iter().any(|v| vars.iter().any(|x| x == v)))
            .map(|a| Literal::Pos((*a).clone()))
            .collect()
    };
    // Variables visible to the host rule are those of the *outer* literal;
    // fresh variables introduced for `_` positions are local to the
    // unfolding and must be anonymized / bound by binder atoms.
    let head_vars: BTreeSet<String> = atom.variables().into_iter().map(String::from).collect();
    let mut choices = Vec::new();
    for lit in &renamed.body {
        match lit {
            Literal::Pos(a) => {
                // t(K) = ¬q_i with non-head variables anonymized.
                let keep: Vec<&str> = a
                    .variables()
                    .into_iter()
                    .filter(|v| head_vars.contains(*v))
                    .collect();
                choices.push(vec![Literal::Neg(a.anonymize_except(&keep))]);
            }
            Literal::Neg(a) => {
                // Double negation: the tuple exists. Include binders for its
                // local variables.
                let locals: Vec<String> = a
                    .variables()
                    .into_iter()
                    .filter(|v| !head_vars.contains(*v))
                    .map(String::from)
                    .collect();
                let mut c = binders_for(&locals);
                c.push(Literal::Pos(a.clone()));
                choices.push(c);
            }
            Literal::Cond(e) => {
                // t(K) = binding atoms for the condition's locals + ¬c.
                let locals: Vec<String> = e
                    .referenced_columns()
                    .into_iter()
                    .filter(|v| !head_vars.contains(v))
                    .collect();
                let mut c = binders_for(&locals);
                c.push(Literal::Cond(e.clone().negate()));
                choices.push(c);
            }
            Literal::Assign { var, expr } => {
                // Blocked iff the assigned value differs. Needs the binders
                // of the expression's locals and of the variable.
                let mut locals: Vec<String> = expr
                    .referenced_columns()
                    .into_iter()
                    .filter(|v| !head_vars.contains(v))
                    .collect();
                locals.push(var.clone());
                let mut c = binders_for(&locals);
                c.push(Literal::Cond(Expr::col(var.clone()).ne(expr.clone())));
                choices.push(c);
            }
            Literal::Skolem { .. } => {
                // Skolem functions are total: they never block a derivation
                // on their own, so they contribute no choice.
            }
        }
    }
    choices
}

/// Apply a term substitution to a whole rule (head and body, including
/// expressions — variables substituted by constants are folded into
/// expression literals where possible).
fn substitute_terms(rule: &Rule, subst: &BTreeMap<String, Term>) -> Rule {
    // Split into var->var renames (handled everywhere) and var->const.
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    let mut consts: BTreeMap<String, Term> = BTreeMap::new();
    for (k, v) in subst {
        match v {
            Term::Var(n) => {
                renames.insert(k.clone(), n.clone());
            }
            other => {
                consts.insert(k.clone(), other.clone());
            }
        }
    }
    let mut out = rule.rename(&renames);
    if consts.is_empty() {
        return out;
    }
    let fix_atom = |a: &Atom| Atom {
        relation: a.relation.clone(),
        terms: a
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => consts.get(v).cloned().unwrap_or_else(|| t.clone()),
                other => other.clone(),
            })
            .collect(),
    };
    let fix_expr = |e: &Expr| -> Expr { subst_expr_consts(e, &consts) };
    out = Rule {
        head: fix_atom(&out.head),
        body: out
            .body
            .iter()
            .map(|l| match l {
                Literal::Pos(a) => Literal::Pos(fix_atom(a)),
                Literal::Neg(a) => Literal::Neg(fix_atom(a)),
                Literal::Cond(e) => Literal::Cond(fix_expr(e)),
                Literal::Assign { var, expr } => Literal::Assign {
                    var: var.clone(),
                    expr: fix_expr(expr),
                },
                Literal::Skolem {
                    var,
                    generator,
                    args,
                } => Literal::Skolem {
                    var: var.clone(),
                    generator: generator.clone(),
                    args: args
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => consts.get(v).cloned().unwrap_or_else(|| t.clone()),
                            other => other.clone(),
                        })
                        .collect(),
                },
            })
            .collect(),
    };
    out
}

fn subst_expr_consts(e: &Expr, consts: &BTreeMap<String, Term>) -> Expr {
    match e {
        Expr::Column(c) => match consts.get(c) {
            Some(Term::Const(v)) => Expr::Lit(v.clone()),
            _ => e.clone(),
        },
        Expr::Lit(_) => e.clone(),
        Expr::Cmp(a, op, b) => Expr::Cmp(
            Box::new(subst_expr_consts(a, consts)),
            *op,
            Box::new(subst_expr_consts(b, consts)),
        ),
        Expr::Binary(a, op, b) => Expr::Binary(
            Box::new(subst_expr_consts(a, consts)),
            *op,
            Box::new(subst_expr_consts(b, consts)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(subst_expr_consts(a, consts)),
            Box::new(subst_expr_consts(b, consts)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(subst_expr_consts(a, consts)),
            Box::new(subst_expr_consts(b, consts)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(subst_expr_consts(a, consts))),
        Expr::IsNull(a) => Expr::IsNull(Box::new(subst_expr_consts(a, consts))),
        Expr::Call(n, args) => Expr::Call(
            n.clone(),
            args.iter().map(|a| subst_expr_consts(a, consts)).collect(),
        ),
    }
}

struct FreshVars {
    used: BTreeSet<String>,
    counter: usize,
}

impl FreshVars {
    fn new(a: &RuleSet, b: &RuleSet) -> Self {
        let mut used = BTreeSet::new();
        for rs in [a, b] {
            for r in &rs.rules {
                used.extend(r.variables());
            }
        }
        FreshVars { used, counter: 0 }
    }

    fn next(&mut self, base: &str) -> String {
        loop {
            self.counter += 1;
            let candidate = format!("{base}_{}", self.counter);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fixpoint simplification: Lemmas 3, 4, 5 + housekeeping.
// ---------------------------------------------------------------------------

/// Whether `a` is the structural complement of `b` (`a ≡ ¬b`).
pub fn exprs_complementary(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Not(x), y) | (y, Expr::Not(x)) => x.as_ref() == y,
        (Expr::Cmp(l1, op1, r1), Expr::Cmp(l2, op2, r2)) => {
            l1 == l2 && r1 == r2 && *op1 == complement_op(*op2)
        }
        (Expr::And(a1, a2), Expr::Or(b1, b2)) | (Expr::Or(b1, b2), Expr::And(a1, a2)) => {
            exprs_complementary(a1, b1) && exprs_complementary(a2, b2)
        }
        _ => false,
    }
}

fn complement_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Le => CmpOp::Gt,
    }
}

/// Constant truth value of an expression, if syntactically decidable.
fn truth_value(e: &Expr) -> Option<bool> {
    match e {
        Expr::Cmp(a, op, b) => {
            if a == b {
                // x ⊙ x (identical expressions, incl. NULL=NULL per our
                // distinct-from semantics).
                return Some(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
            }
            if let (Expr::Lit(x), Expr::Lit(y)) = (a.as_ref(), b.as_ref()) {
                return Some(op.apply(x, y));
            }
            None
        }
        Expr::Not(x) => truth_value(x).map(|b| !b),
        Expr::IsNull(x) => match x.as_ref() {
            Expr::Lit(v) => Some(v.is_null()),
            _ => None,
        },
        Expr::And(a, b) => match (truth_value(a), truth_value(b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expr::Or(a, b) => match (truth_value(a), truth_value(b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => None,
    }
}

/// Normalize an expression: eliminate double negations, push `NOT` through
/// `AND`/`OR` (De Morgan) and into comparisons (`¬(a < b)` → `a >= b`).
/// Keeps positive `AND`/`OR` structure intact so complement detection and
/// the twin-merge pattern still see the shapes the templates emit.
pub fn normalize_expr(e: &Expr) -> Expr {
    match e {
        Expr::Not(inner) => negate_normalized(&normalize_expr(inner)),
        Expr::And(a, b) => Expr::And(Box::new(normalize_expr(a)), Box::new(normalize_expr(b))),
        Expr::Or(a, b) => Expr::Or(Box::new(normalize_expr(a)), Box::new(normalize_expr(b))),
        other => other.clone(),
    }
}

fn negate_normalized(e: &Expr) -> Expr {
    match e {
        Expr::Not(inner) => (**inner).clone(),
        Expr::And(a, b) => Expr::Or(
            Box::new(negate_normalized(a)),
            Box::new(negate_normalized(b)),
        ),
        Expr::Or(a, b) => Expr::And(
            Box::new(negate_normalized(a)),
            Box::new(negate_normalized(b)),
        ),
        Expr::Cmp(l, op, r) => Expr::Cmp(l.clone(), complement_op(*op), r.clone()),
        Expr::Lit(v) => Expr::Lit(inverda_storage::Value::Bool(!v.is_truthy())),
        other => Expr::Not(Box::new(other.clone())),
    }
}

/// Split a normalized expression into its top-level conjuncts.
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// Whether two body literals are complementary.
fn literals_complementary(a: &Literal, b: &Literal) -> bool {
    match (a, b) {
        (Literal::Pos(x), Literal::Neg(y)) | (Literal::Neg(y), Literal::Pos(x)) => {
            atom_matches_pattern(x, y)
        }
        (Literal::Cond(x), Literal::Cond(y)) => exprs_complementary(x, y),
        _ => false,
    }
}

/// Whether the (witness) atom `a` satisfies the pattern of atom `b`:
/// same relation, and each term of `b` is anonymous or equal to `a`'s term.
fn atom_matches_pattern(a: &Atom, b: &Atom) -> bool {
    a.relation == b.relation
        && a.terms.len() == b.terms.len()
        && a.terms
            .iter()
            .zip(b.terms.iter())
            .all(|(ta, tb)| matches!(tb, Term::Anon) || ta == tb)
}

/// One fixpoint pass state.
struct Pass<'d> {
    deriv: &'d mut Derivation,
    changed: bool,
}

/// Simplify a rule set by iterating Lemmas 3–5, duplicate/trivial literal
/// removal, dead-assignment elimination, subsumption and the separated-twin
/// merge, until a fixpoint is reached.
pub fn simplify_fixpoint(mut rules: RuleSet, deriv: &mut Derivation) -> RuleSet {
    loop {
        let mut pass = Pass {
            deriv,
            changed: false,
        };
        rules = per_rule_pass(rules, &mut pass);
        // Alpha-rename every rule to canonical variable names so that
        // alpha-variant rules become syntactically comparable for the
        // merge passes below.
        rules = RuleSet::new(rules.rules.iter().map(canonical_rule).collect());
        rules = drop_duplicate_rules(rules, &mut pass);
        // Condition-complement merges first (the paper's derivation order:
        // Rules 111+115 and 112+116 merge on cS/¬cS before the twin merge
        // and the R/¬R merge) — merging atom complements too early can
        // strand rules that would otherwise pair up.
        rules = tautology_merge(rules, &mut pass, MergeScope::CondOnly);
        rules = twin_merge_pass(rules, &mut pass);
        rules = null_case_merge(rules, &mut pass);
        rules = tautology_merge(rules, &mut pass, MergeScope::Any);
        rules = subsumption(rules, &mut pass);
        if !pass.changed {
            return rules;
        }
    }
}

/// Lemma 5 + Lemma 4 + trivial-condition folding + duplicate-literal and
/// dead-assignment removal, per rule.
fn per_rule_pass(rules: RuleSet, pass: &mut Pass<'_>) -> RuleSet {
    let mut out = Vec::new();
    'rules: for rule in rules.rules {
        let mut rule = rule;
        // Normalize conditions (NNF) and split top-level conjunctions into
        // separate literals so complements and equalities become visible.
        {
            let mut body = Vec::new();
            let mut changed_here = false;
            for l in &rule.body {
                match l {
                    Literal::Cond(e) => {
                        let n = normalize_expr(e);
                        let mut conjuncts = Vec::new();
                        split_conjuncts(n.clone(), &mut conjuncts);
                        if conjuncts.len() > 1 || n != *e {
                            changed_here = true;
                        }
                        body.extend(conjuncts.into_iter().map(Literal::Cond));
                    }
                    other => body.push(other.clone()),
                }
            }
            if changed_here {
                pass.changed = true;
                rule.body = body;
            }
        }
        // Null propagation: `{x IS NULL}` pins the variable to NULL.
        loop {
            let found = rule.body.iter().enumerate().find_map(|(i, l)| match l {
                Literal::Cond(Expr::IsNull(inner)) => match inner.as_ref() {
                    Expr::Column(x) => Some((i, x.clone())),
                    _ => None,
                },
                _ => None,
            });
            let Some((i, x)) = found else { break };
            rule.body.remove(i);
            let mut subst = BTreeMap::new();
            subst.insert(x.clone(), Term::Const(inverda_storage::Value::Null));
            rule = substitute_terms(&rule, &subst);
            pass.changed = true;
            pass.deriv
                .log(format!("null propagation {x} IS NULL in: {rule}"));
        }
        // Equality propagation: a `{x = y}` condition between two variables
        // substitutes one for the other and disappears.
        loop {
            let found = rule.body.iter().enumerate().find_map(|(i, l)| match l {
                Literal::Cond(Expr::Cmp(a, CmpOp::Eq, b)) => match (a.as_ref(), b.as_ref()) {
                    (Expr::Column(x), Expr::Column(y)) if x != y => Some((i, x.clone(), y.clone())),
                    _ => None,
                },
                _ => None,
            });
            let Some((i, x, y)) = found else { break };
            // Prefer eliminating a variable that is not in the head.
            let head_vars: Vec<&str> = rule.head.variables();
            let (keep, drop) =
                if head_vars.contains(&y.as_str()) && !head_vars.contains(&x.as_str()) {
                    (y.clone(), x.clone())
                } else {
                    (x.clone(), y.clone())
                };
            rule.body.remove(i);
            let mut subst = BTreeMap::new();
            subst.insert(drop, Term::Var(keep));
            rule = substitute_terms(&rule, &subst);
            pass.changed = true;
            pass.deriv
                .log(format!("equality propagation {x} = {y} in: {rule}"));
        }
        // Lemma 5: unify positive atoms over the same relation and key term.
        loop {
            let mut subst: Option<BTreeMap<String, Term>> = None;
            let mut refined: Option<Rule> = None;
            'outer: for i in 0..rule.body.len() {
                let Literal::Pos(a) = &rule.body[i] else {
                    continue;
                };
                for j in (i + 1)..rule.body.len() {
                    let Literal::Pos(b) = &rule.body[j] else {
                        continue;
                    };
                    if a.relation != b.relation
                        || a.terms.len() != b.terms.len()
                        || a.terms[0] != b.terms[0]
                        || matches!(a.terms[0], Term::Anon)
                        || a.terms == b.terms
                    {
                        continue;
                    }
                    // Same relation, same key: payloads must unify.
                    let mut s: BTreeMap<String, Term> = BTreeMap::new();
                    let mut new_a = a.clone();
                    for (pos, (ta, tb)) in a.terms.iter().zip(b.terms.iter()).enumerate().skip(1) {
                        match (ta, tb) {
                            (Term::Var(x), Term::Var(y)) => {
                                if x != y {
                                    s.insert(y.clone(), Term::Var(x.clone()));
                                }
                            }
                            (Term::Anon, Term::Var(y)) => {
                                new_a.terms[pos] = Term::Var(y.clone());
                            }
                            (Term::Anon, Term::Const(c)) => {
                                new_a.terms[pos] = Term::Const(c.clone());
                            }
                            (Term::Var(_), Term::Anon)
                            | (Term::Const(_), Term::Anon)
                            | (Term::Anon, Term::Anon) => {}
                            (Term::Const(x), Term::Const(y)) if x != y => {
                                pass.deriv.log(format!(
                                    "Lemma 5+4: contradictory constants for one key, dropped: {rule}"
                                ));
                                pass.changed = true;
                                continue 'rules;
                            }
                            (Term::Const(_), Term::Const(_)) => {}
                            (Term::Var(x), Term::Const(c)) => {
                                s.insert(x.clone(), Term::Const(c.clone()));
                            }
                            (Term::Const(c), Term::Var(y)) => {
                                s.insert(y.clone(), Term::Const(c.clone()));
                            }
                        }
                    }
                    if new_a != *a {
                        let mut r2 = rule.clone();
                        r2.body[i] = Literal::Pos(new_a);
                        refined = Some(r2);
                        break 'outer;
                    }
                    if !s.is_empty() {
                        subst = Some(s);
                        break 'outer;
                    }
                    // Identical after refinement: drop the duplicate atom j.
                    let mut r2 = rule.clone();
                    r2.body.remove(j);
                    refined = Some(r2);
                    break 'outer;
                }
            }
            if let Some(r2) = refined {
                pass.deriv
                    .log(format!("Lemma 5: merged same-key atoms in: {rule}"));
                pass.changed = true;
                rule = r2;
                continue;
            }
            if let Some(s) = subst {
                pass.deriv
                    .log(format!("Lemma 5: unified payload variables in: {rule}"));
                pass.changed = true;
                rule = substitute_terms(&rule, &s);
                continue;
            }
            break;
        }
        // Remove exact duplicate literals.
        let mut deduped: Vec<Literal> = Vec::new();
        for l in &rule.body {
            if !deduped.contains(l) {
                deduped.push(l.clone());
            } else {
                pass.changed = true;
                pass.deriv
                    .log(format!("removed duplicate literal {l} in: {rule}"));
            }
        }
        rule.body = deduped;
        // Trivial conditions.
        let mut body = Vec::new();
        for l in rule.body {
            if let Literal::Cond(e) = &l {
                match truth_value(e) {
                    Some(true) => {
                        pass.changed = true;
                        pass.deriv.log(format!("folded true condition {{{e}}}"));
                        continue;
                    }
                    Some(false) => {
                        pass.changed = true;
                        pass.deriv.log(format!(
                            "Lemma 4: dropped rule with false condition {{{e}}}: {}",
                            rule.head
                        ));
                        continue 'rules;
                    }
                    None => {}
                }
            }
            body.push(l);
        }
        rule.body = body;
        // Lemma 4: complementary body literals.
        for i in 0..rule.body.len() {
            for j in (i + 1)..rule.body.len() {
                if literals_complementary(&rule.body[i], &rule.body[j]) {
                    pass.changed = true;
                    pass.deriv.log(format!(
                        "Lemma 4: dropped rule with contradictory literals {} / {}: {rule}",
                        rule.body[i], rule.body[j]
                    ));
                    continue 'rules;
                }
            }
        }
        // Dead assignments: assigned variable used nowhere else.
        let head_vars: BTreeSet<String> = rule
            .head
            .variables()
            .into_iter()
            .map(String::from)
            .collect();
        let mut usage: BTreeMap<String, usize> = BTreeMap::new();
        for l in &rule.body {
            for v in l.variables() {
                *usage.entry(v).or_insert(0) += 1;
            }
        }
        let before = rule.body.len();
        rule.body.retain(|l| match l {
            Literal::Assign { var, .. } | Literal::Skolem { var, .. } => {
                head_vars.contains(var) || usage.get(var).copied().unwrap_or(0) > 1
            }
            _ => true,
        });
        if rule.body.len() != before {
            pass.changed = true;
            pass.deriv
                .log(format!("removed dead assignment(s) in: {rule}"));
        }
        // Anonymize single-use variables not in the head (cleanup enabling
        // Lemma 3 matching on e.g. R_D(p, _)).
        let mut usage2: BTreeMap<String, usize> = BTreeMap::new();
        for l in &rule.body {
            for v in l.variables() {
                *usage2.entry(v).or_insert(0) += 1;
            }
        }
        let single_use: BTreeSet<String> = usage2
            .iter()
            .filter(|(v, n)| **n == 1 && !head_vars.contains(*v))
            .map(|(v, _)| v.clone())
            .collect();
        if !single_use.is_empty() {
            let anonymize_atom = |a: &Atom| Atom {
                relation: a.relation.clone(),
                terms: a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) if single_use.contains(v) => Term::Anon,
                        other => other.clone(),
                    })
                    .collect(),
            };
            let mut changed_here = false;
            let body: Vec<Literal> = rule
                .body
                .iter()
                .map(|l| match l {
                    Literal::Pos(a) => {
                        let na = anonymize_atom(a);
                        if na != *a {
                            changed_here = true;
                        }
                        Literal::Pos(na)
                    }
                    Literal::Neg(a) => {
                        let na = anonymize_atom(a);
                        if na != *a {
                            changed_here = true;
                        }
                        Literal::Neg(na)
                    }
                    other => other.clone(),
                })
                .collect();
            if changed_here {
                pass.changed = true;
                rule.body = body;
            }
        }
        out.push(rule);
    }
    RuleSet::new(out)
}

fn drop_duplicate_rules(rules: RuleSet, pass: &mut Pass<'_>) -> RuleSet {
    let mut seen: Vec<Rule> = Vec::new();
    let mut out = Vec::new();
    for rule in rules.rules {
        let canon = canonical_rule(&rule);
        if seen.contains(&canon) {
            pass.changed = true;
            pass.deriv.log(format!("removed duplicate rule: {rule}"));
            continue;
        }
        seen.push(canon);
        out.push(rule);
    }
    RuleSet::new(out)
}

/// Canonical form for rule comparison: body sorted by display, variables
/// renamed by first occurrence, body sorted again.
fn canonical_rule(rule: &Rule) -> Rule {
    let mut r = rule.clone();
    r.body.sort_by_key(|l| l.to_string());
    let r = r.canonicalize();
    let mut r2 = r;
    r2.body.sort_by_key(|l| l.to_string());
    r2
}

/// Which complementary-literal pairs a tautology-merge phase may merge on.
#[derive(Clone, Copy, PartialEq)]
enum MergeScope {
    /// Only condition/condition complements (`{c}` vs `{¬c}`).
    CondOnly,
    /// Any complementary pair, including atom/negated-atom.
    Any,
}

/// Lemma 3: merge rule pairs identical except one complementary literal.
fn tautology_merge(rules: RuleSet, pass: &mut Pass<'_>, scope: MergeScope) -> RuleSet {
    let mut list: Vec<Option<Rule>> = rules.rules.into_iter().map(Some).collect();
    for i in 0..list.len() {
        for j in (i + 1)..list.len() {
            let (Some(a), Some(b)) = (list[i].clone(), list[j].clone()) else {
                continue;
            };
            if a.head.relation != b.head.relation {
                continue;
            }
            if let Some(merged) = try_tautology_merge(&a, &b, scope) {
                pass.changed = true;
                pass.deriv.log(format!(
                    "Lemma 3: merged\n    {a}\n    {b}\n  into\n    {merged}"
                ));
                list[i] = Some(merged);
                list[j] = None;
            }
        }
    }
    RuleSet::new(list.into_iter().flatten().collect())
}

fn try_tautology_merge(a: &Rule, b: &Rule, scope: MergeScope) -> Option<Rule> {
    if a.head != b.head || a.body.len() != b.body.len() {
        return None;
    }
    // Match bodies as multisets: find the unique literal of `a` and of `b`
    // left unmatched; they must be complementary.
    let mut b_used = vec![false; b.body.len()];
    let mut a_unmatched = Vec::new();
    for la in &a.body {
        let mut found = false;
        for (j, lb) in b.body.iter().enumerate() {
            if !b_used[j] && la == lb {
                b_used[j] = true;
                found = true;
                break;
            }
        }
        if !found {
            a_unmatched.push(la.clone());
        }
    }
    let b_unmatched: Vec<Literal> = b
        .body
        .iter()
        .enumerate()
        .filter(|(j, _)| !b_used[*j])
        .map(|(_, l)| l.clone())
        .collect();
    if a_unmatched.len() != 1 || b_unmatched.len() != 1 {
        return None;
    }
    if scope == MergeScope::CondOnly
        && !(matches!(a_unmatched[0], Literal::Cond(_))
            && matches!(b_unmatched[0], Literal::Cond(_)))
    {
        return None;
    }
    if !literals_complementary(&a_unmatched[0], &b_unmatched[0]) {
        return None;
    }
    let body: Vec<Literal> = a
        .body
        .iter()
        .filter(|l| **l != a_unmatched[0])
        .cloned()
        .collect();
    Some(Rule::new(a.head.clone(), body))
}

/// The separated-twin merge (Rules 118 + 120 → 122 in Appendix A):
/// `H ← B, q(k, V̄)` merges with `H ← B, q(k, W̄), {V̄ ≠ W̄}` into
/// `H ← B, q(k, _)` — sound because `q` is functional in its key, so the two
/// rules jointly cover "the q-tuple equals V̄ or differs from it".
fn twin_merge_pass(rules: RuleSet, pass: &mut Pass<'_>) -> RuleSet {
    let mut list: Vec<Option<Rule>> = rules.rules.into_iter().map(Some).collect();
    for i in 0..list.len() {
        for j in 0..list.len() {
            if i == j {
                continue;
            }
            let (Some(a), Some(b)) = (list[i].clone(), list[j].clone()) else {
                continue;
            };
            if let Some(merged) = try_twin_merge(&a, &b) {
                pass.changed = true;
                pass.deriv.log(format!(
                    "Lemma 3 (twin merge): merged\n    {a}\n    {b}\n  into\n    {merged}"
                ));
                list[i] = Some(merged);
                list[j] = None;
            }
        }
    }
    RuleSet::new(list.into_iter().flatten().collect())
}

fn try_twin_merge(a: &Rule, b: &Rule) -> Option<Rule> {
    if a.head != b.head {
        return None;
    }
    for (ia, la) in a.body.iter().enumerate() {
        let Literal::Pos(atom_a) = la else { continue };
        for (ib, lb) in b.body.iter().enumerate() {
            let Literal::Pos(atom_b) = lb else { continue };
            if atom_a.relation != atom_b.relation
                || atom_a.terms.len() != atom_b.terms.len()
                || atom_a.terms[0] != atom_b.terms[0]
                || atom_a.terms == atom_b.terms
            {
                continue;
            }
            // rest of a and b must be equal (as multisets).
            let rest_a: Vec<&Literal> = a
                .body
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != ia)
                .map(|(_, l)| l)
                .collect();
            let rest_b: Vec<&Literal> = b
                .body
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != ib)
                .map(|(_, l)| l)
                .collect();
            // b should have exactly one extra literal: the ≠ condition.
            if rest_b.len() != rest_a.len() + 1 {
                continue;
            }
            let mut b_used = vec![false; rest_b.len()];
            let mut all_found = true;
            for la2 in &rest_a {
                let mut found = false;
                for (k, lb2) in rest_b.iter().enumerate() {
                    if !b_used[k] && la2 == lb2 {
                        b_used[k] = true;
                        found = true;
                        break;
                    }
                }
                if !found {
                    all_found = false;
                    break;
                }
            }
            if !all_found {
                continue;
            }
            let extra: Vec<&Literal> = rest_b
                .iter()
                .enumerate()
                .filter(|(k, _)| !b_used[*k])
                .map(|(_, l)| *l)
                .collect();
            let [Literal::Cond(ne)] = extra.as_slice() else {
                continue;
            };
            // The extra condition must be the pairwise ≠ of the two payloads.
            let pairs: Vec<(&str, &str)> = atom_a.terms[1..]
                .iter()
                .zip(atom_b.terms[1..].iter())
                .filter_map(|(ta, tb)| match (ta, tb) {
                    (Term::Var(x), Term::Var(y)) if x != y => Some((x.as_str(), y.as_str())),
                    _ => None,
                })
                .collect();
            if pairs.is_empty() {
                continue;
            }
            let xs: Vec<&str> = pairs.iter().map(|(x, _)| *x).collect();
            let ys: Vec<&str> = pairs.iter().map(|(_, y)| *y).collect();
            let expected = crate::ast::lists_ne(&xs, &ys);
            if *ne != expected {
                continue;
            }
            // Merge: keep rest_a plus the atom with the differing payload
            // positions anonymized.
            let merged_atom = Atom {
                relation: atom_a.relation.clone(),
                terms: atom_a
                    .terms
                    .iter()
                    .zip(atom_b.terms.iter())
                    .map(|(ta, tb)| if ta == tb { ta.clone() } else { Term::Anon })
                    .collect(),
            };
            let mut body: Vec<Literal> = rest_a.into_iter().cloned().collect();
            body.push(Literal::Pos(merged_atom));
            return Some(Rule::new(a.head.clone(), body));
        }
    }
    None
}

/// Null-case merge: `H ← B, {¬(x IS NULL)}` merges with its `x := NULL`
/// instance `H[x:=NULL] ← B[x:=NULL]` into `H ← B` — together the two rules
/// cover the null and non-null cases of `x` identically (the ω-padding
/// rules of DECOMPOSE ON PK, Appendix B.2).
fn null_case_merge(rules: RuleSet, pass: &mut Pass<'_>) -> RuleSet {
    let mut list: Vec<Option<Rule>> = rules.rules.into_iter().map(Some).collect();
    for i in 0..list.len() {
        for j in 0..list.len() {
            if i == j {
                continue;
            }
            let (Some(a), Some(b)) = (list[i].clone(), list[j].clone()) else {
                continue;
            };
            if a.head.relation != b.head.relation {
                continue;
            }
            // Find a `¬(x IS NULL)` condition in `a`.
            for (idx, lit) in a.body.iter().enumerate() {
                let Literal::Cond(Expr::Not(inner)) = lit else {
                    continue;
                };
                let Expr::IsNull(col) = inner.as_ref() else {
                    continue;
                };
                let Expr::Column(x) = col.as_ref() else {
                    continue;
                };
                let mut without = a.clone();
                without.body.remove(idx);
                let mut subst = BTreeMap::new();
                subst.insert(x.clone(), Term::Const(inverda_storage::Value::Null));
                // Drop trivially-true conditions the substitution creates.
                let mut candidate = substitute_terms(&without, &subst);
                candidate.body.retain(|l| match l {
                    Literal::Cond(e) => truth_value(e) != Some(true),
                    _ => true,
                });
                if canonical_rule(&candidate) == canonical_rule(&b) {
                    pass.changed = true;
                    pass.deriv.log(format!(
                        "null-case merge:\n    {a}\n    {b}\n  into\n    {without}"
                    ));
                    list[i] = Some(without);
                    list[j] = None;
                    break;
                }
            }
        }
    }
    RuleSet::new(list.into_iter().flatten().collect())
}

/// Drop rules subsumed by another rule with the same head and a body subset.
fn subsumption(rules: RuleSet, pass: &mut Pass<'_>) -> RuleSet {
    let list = rules.rules;
    let mut keep = vec![true; list.len()];
    for i in 0..list.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..list.len() {
            if i == j || !keep[j] {
                continue;
            }
            let (r, s) = (&list[i], &list[j]);
            if r.head == s.head
                && r.body.len() < s.body.len()
                && r.body.iter().all(|l| s.body.contains(l))
            {
                keep[j] = false;
                pass.changed = true;
                pass.deriv.log(format!("subsumption: {r}  subsumes  {s}"));
            }
        }
    }
    RuleSet::new(
        list.into_iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(r, _)| r)
            .collect(),
    )
}

/// Check that for every `(head, input)` pair the rule set derives `head`
/// with exactly one identity rule `head(p, X…) ← input(p, X…)`, and reports
/// any head in `expected` violating this. Heads not listed are ignored.
pub fn check_identity(
    rules: &RuleSet,
    expected: &BTreeMap<String, String>,
) -> std::result::Result<(), String> {
    for (head, input) in expected {
        let for_head = rules.rules_for(head);
        if for_head.len() != 1 {
            return Err(format!(
                "head '{head}': expected exactly 1 identity rule, found {}:\n{}",
                for_head.len(),
                for_head
                    .iter()
                    .map(|r| format!("  {r}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
        let rule = for_head[0];
        let ok = rule.body.len() == 1
            && match &rule.body[0] {
                Literal::Pos(a) => a.relation == *input && a.terms == rule.head.terms,
                _ => false,
            };
        if !ok {
            return Err(format!(
                "head '{head}': not an identity over '{input}': {rule}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::lists_ne;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::vars(rel, vars)
    }

    #[test]
    fn lemma2_drops_and_strips() {
        let rules = RuleSet::new(vec![
            Rule::new(
                atom("H", &["p", "a"]),
                vec![Literal::Pos(atom("Empty", &["p", "a"]))],
            ),
            Rule::new(
                atom("H", &["p", "a"]),
                vec![
                    Literal::Pos(atom("X", &["p", "a"])),
                    Literal::Neg(atom("Empty", &["p", "a"])),
                ],
            ),
        ]);
        let mut d = Derivation::new();
        let empty: BTreeSet<String> = ["Empty".to_string()].into_iter().collect();
        let out = apply_empty(&rules, &empty, &mut d);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rules[0].body.len(), 1);
        assert_eq!(d.steps.len(), 2);
    }

    #[test]
    fn positive_unfolding_inlines_definition() {
        // outer: T(p,a) ← R(p,a)        def: R(p,a) ← TD(p,a), {a > 0}
        let outer = RuleSet::new(vec![Rule::new(
            atom("T", &["p", "a"]),
            vec![Literal::Pos(atom("R", &["p", "a"]))],
        )]);
        let defs = RuleSet::new(vec![Rule::new(
            atom("R", &["p", "a"]),
            vec![
                Literal::Pos(atom("TD", &["p", "a"])),
                Literal::Cond(Expr::col("a").gt(Expr::lit(0))),
            ],
        )]);
        let mut d = Derivation::new();
        let out = unfold(&outer, &defs, &mut d);
        assert_eq!(out.len(), 1);
        let r = &out.rules[0];
        assert_eq!(r.to_string(), "T(p, a) ← TD(p, a), {a > 0}");
    }

    #[test]
    fn negative_unfolding_produces_choice_variants() {
        // outer: T(p,a) ← S(p,a), ¬R(p,_)
        // def:   R(p,a) ← TD(p,a), {a > 0}
        // Expected variants: ¬TD(p,_)  and  TD(p,a'), {¬(a' > 0)}.
        let outer = RuleSet::new(vec![Rule::new(
            atom("T", &["p", "a"]),
            vec![
                Literal::Pos(atom("S", &["p", "a"])),
                Literal::Neg(Atom::new("R", vec![Term::var("p"), Term::Anon])),
            ],
        )]);
        let defs = RuleSet::new(vec![Rule::new(
            atom("R", &["p", "a"]),
            vec![
                Literal::Pos(atom("TD", &["p", "a"])),
                Literal::Cond(Expr::col("a").gt(Expr::lit(0))),
            ],
        )]);
        let mut d = Derivation::new();
        let out = unfold(&outer, &defs, &mut d);
        assert_eq!(out.len(), 2);
        let texts: Vec<String> = out.rules.iter().map(|r| r.to_string()).collect();
        assert!(
            texts.iter().any(|t| t.contains("¬TD(p, _)")),
            "got: {texts:?}"
        );
        assert!(
            texts
                .iter()
                .any(|t| t.contains("TD(p, a_") && t.contains("NOT (a_")),
            "got: {texts:?}"
        );
    }

    #[test]
    fn lemma4_contradiction_dropped() {
        let rules = RuleSet::new(vec![Rule::new(
            atom("H", &["p", "a"]),
            vec![
                Literal::Pos(atom("X", &["p", "a"])),
                Literal::Cond(Expr::col("a").gt(Expr::lit(0))),
                Literal::Cond(Expr::col("a").gt(Expr::lit(0)).negate()),
            ],
        )]);
        let mut d = Derivation::new();
        let out = simplify_fixpoint(rules, &mut d);
        assert!(out.is_empty());
    }

    #[test]
    fn lemma4_pos_neg_same_atom_dropped() {
        let rules = RuleSet::new(vec![Rule::new(
            atom("H", &["p", "a"]),
            vec![
                Literal::Pos(atom("X", &["p", "a"])),
                Literal::Neg(Atom::new("X", vec![Term::var("p"), Term::Anon])),
            ],
        )]);
        let mut d = Derivation::new();
        let out = simplify_fixpoint(rules, &mut d);
        assert!(out.is_empty());
    }

    #[test]
    fn lemma3_merges_complementary_pair() {
        // H ← X, {a>0}  and  H ← X, {¬(a>0)}  →  H ← X.
        let c = Expr::col("a").gt(Expr::lit(0));
        let rules = RuleSet::new(vec![
            Rule::new(
                atom("H", &["p", "a"]),
                vec![
                    Literal::Pos(atom("X", &["p", "a"])),
                    Literal::Cond(c.clone()),
                ],
            ),
            Rule::new(
                atom("H", &["p", "a"]),
                vec![
                    Literal::Pos(atom("X", &["p", "a"])),
                    Literal::Cond(c.negate()),
                ],
            ),
        ]);
        let mut d = Derivation::new();
        let out = simplify_fixpoint(rules, &mut d);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rules[0].to_string(), "H(v0, v1) ← X(v0, v1)");
    }

    #[test]
    fn lemma5_unifies_same_key_atoms() {
        // S+(p,a) ← TD(p,a), TD(p,b), {a ≠ b} must vanish (Rule 38).
        let rules = RuleSet::new(vec![Rule::new(
            atom("Splus", &["p", "a"]),
            vec![
                Literal::Pos(atom("TD", &["p", "a"])),
                Literal::Pos(atom("TD", &["p", "b"])),
                Literal::Cond(lists_ne(&["a"], &["b"])),
            ],
        )]);
        let mut d = Derivation::new();
        let out = simplify_fixpoint(rules, &mut d);
        assert!(out.is_empty(), "got: {out}");
    }

    #[test]
    fn subsumption_drops_more_specific_rule() {
        let rules = RuleSet::new(vec![
            Rule::new(
                atom("H", &["p", "a"]),
                vec![Literal::Pos(atom("X", &["p", "a"]))],
            ),
            Rule::new(
                atom("H", &["p", "a"]),
                vec![
                    Literal::Pos(atom("X", &["p", "a"])),
                    Literal::Neg(Atom::new("Y", vec![Term::var("p"), Term::Anon])),
                ],
            ),
        ]);
        let mut d = Derivation::new();
        let out = simplify_fixpoint(rules, &mut d);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rules[0].body.len(), 1);
    }

    #[test]
    fn twin_merge_reproduces_appendix_a_step() {
        // S(p,a) ← SD(p,a), RD(p,a)   [Rule 118]
        // S(p,a) ← SD(p,a), RD(p,a2), {a ≠ a2}   [Rule 120]
        // → S(p,a) ← SD(p,a), RD(p,_)  [Rule 122]; with
        // S(p,a) ← SD(p,a), ¬RD(p,_)  [Rule 119] → S(p,a) ← SD(p,a).
        let rules = RuleSet::new(vec![
            Rule::new(
                atom("S", &["p", "a"]),
                vec![
                    Literal::Pos(atom("SD", &["p", "a"])),
                    Literal::Pos(atom("RD", &["p", "a"])),
                ],
            ),
            Rule::new(
                atom("S", &["p", "a"]),
                vec![
                    Literal::Pos(atom("SD", &["p", "a"])),
                    Literal::Neg(Atom::new("RD", vec![Term::var("p"), Term::Anon])),
                ],
            ),
            Rule::new(
                atom("S", &["p", "a"]),
                vec![
                    Literal::Pos(atom("SD", &["p", "a"])),
                    Literal::Pos(atom("RD", &["p", "a2"])),
                    Literal::Cond(lists_ne(&["a"], &["a2"])),
                ],
            ),
        ]);
        let mut d = Derivation::new();
        let out = simplify_fixpoint(rules, &mut d);
        assert_eq!(out.len(), 1, "got:\n{out}");
        assert_eq!(out.rules[0].to_string(), "S(v0, v1) ← SD(v0, v1)");
        let mut expected = BTreeMap::new();
        expected.insert("S".to_string(), "SD".to_string());
        assert!(check_identity(&out, &expected).is_ok());
    }

    #[test]
    fn check_identity_rejects_non_identity() {
        let rules = RuleSet::new(vec![Rule::new(
            atom("H", &["p", "a"]),
            vec![
                Literal::Pos(atom("X", &["p", "a"])),
                Literal::Cond(Expr::col("a").gt(Expr::lit(0))),
            ],
        )]);
        let mut expected = BTreeMap::new();
        expected.insert("H".to_string(), "X".to_string());
        assert!(check_identity(&rules, &expected).is_err());
    }

    #[test]
    fn complementary_expressions() {
        let a = Expr::col("x").eq(Expr::lit(1));
        assert!(exprs_complementary(&a, &a.clone().negate()));
        assert!(exprs_complementary(
            &Expr::col("x").lt(Expr::col("y")),
            &Expr::col("x").ge(Expr::col("y"))
        ));
        let eq2 = crate::ast::lists_eq(&["a", "b"], &["c", "d"]);
        let ne2 = crate::ast::lists_ne(&["a", "b"], &["c", "d"]);
        assert!(exprs_complementary(&eq2, &ne2));
        assert!(!exprs_complementary(&a, &a));
    }

    #[test]
    fn rename_relations_rewrites_atoms() {
        let rules = RuleSet::new(vec![Rule::new(
            atom("T", &["p", "a"]),
            vec![Literal::Pos(atom("T", &["p", "a"]))],
        )]);
        let mut map = BTreeMap::new();
        map.insert("T".to_string(), "TD".to_string());
        let out = rename_relations(&rules, &map);
        // Head and body both renamed (callers rename heads/bodies separately
        // in compositions by applying to the right rule set).
        assert_eq!(out.rules[0].to_string(), "TD(p, a) ← TD(p, a)");
    }
}
