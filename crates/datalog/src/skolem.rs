//! Skolem id-generating functions (`idT(B)` in Appendix B.3/B.4/B.6).
//!
//! The paper: "On every call, the function idT(B) returns a new unique
//! identifier for the payload data B in table T. In our implementation, this
//! is merely a regular SQL sequence and the mapping rules ensure that an
//! already generated identifier is reused for the same data."
//!
//! The registry memoizes `(generator, argument tuple) → id` so that equal
//! payloads always receive the same identifier — within one rule evaluation
//! (set semantics would otherwise be violated) and across evaluations
//! (repeatable reads on generated identifiers).

use inverda_storage::Value;
use std::collections::BTreeMap;

/// Memoized id-generating sequences.
#[derive(Debug, Default, Clone)]
pub struct SkolemRegistry {
    memo: BTreeMap<(String, Vec<Value>), u64>,
    counters: BTreeMap<String, u64>,
}

impl SkolemRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SkolemRegistry::default()
    }

    /// The id for `(generator, args)`, minting a fresh one on first call.
    pub fn get_or_create(&mut self, generator: &str, args: &[Value]) -> u64 {
        if let Some(id) = self.memo.get(&(generator.to_string(), args.to_vec())) {
            return *id;
        }
        let counter = self.counters.entry(generator.to_string()).or_insert(0);
        *counter += 1;
        let id = *counter;
        self.memo.insert((generator.to_string(), args.to_vec()), id);
        id
    }

    /// The id for `(generator, args)`, minting via `mint` on first call.
    ///
    /// Generated identifiers enter the same keyspace as the InVerDa tuple
    /// identifier `p` (e.g. Appendix B.3's Rules 149/152 key source rows by
    /// the generated `t`), so the engine mints them from the global key
    /// sequence rather than per-generator counters.
    pub fn get_or_create_with(
        &mut self,
        generator: &str,
        args: &[Value],
        mint: impl FnOnce() -> u64,
    ) -> u64 {
        if let Some(id) = self.memo.get(&(generator.to_string(), args.to_vec())) {
            return *id;
        }
        let id = mint();
        self.memo.insert((generator.to_string(), args.to_vec()), id);
        id
    }

    /// Record an externally assigned id (e.g. read back from a persisted
    /// `ID` auxiliary table after a migration or data load) so future mints
    /// neither collide with nor contradict it.
    pub fn observe(&mut self, generator: &str, args: &[Value], id: u64) {
        self.memo.insert((generator.to_string(), args.to_vec()), id);
        let counter = self.counters.entry(generator.to_string()).or_insert(0);
        if *counter < id {
            *counter = id;
        }
    }

    /// Forget the assignment for `(generator, args)` — used when the
    /// physical row carrying the id changes payload or is deleted, so a
    /// later occurrence of the old payload mints a fresh id instead of
    /// colliding with the repurposed one.
    pub fn unobserve(&mut self, generator: &str, args: &[Value]) {
        self.memo.remove(&(generator.to_string(), args.to_vec()));
    }

    /// Forget every assignment of a generator (migration re-seeds from the
    /// relocated tables afterwards).
    pub fn purge_generator(&mut self, generator: &str) {
        self.memo.retain(|(g, _), _| g != generator);
    }

    /// The memoized id, if any, without minting.
    pub fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.memo
            .get(&(generator.to_string(), args.to_vec()))
            .copied()
    }

    /// Debug dump of every memoized assignment (diagnostics).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for ((generator, args), id) in &self.memo {
            let cells: Vec<String> = args.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("{generator}({}) -> {id}\n", cells.join(", ")));
        }
        out
    }

    /// Number of memoized assignments (diagnostics).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True iff nothing has been generated or observed.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_args_same_id() {
        let mut r = SkolemRegistry::new();
        let a = r.get_or_create("id_Author", &[Value::text("Ann")]);
        let b = r.get_or_create("id_Author", &[Value::text("Ann")]);
        let c = r.get_or_create("id_Author", &[Value::text("Ben")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generators_are_independent() {
        let mut r = SkolemRegistry::new();
        let a = r.get_or_create("id_A", &[Value::Int(1)]);
        let b = r.get_or_create("id_B", &[Value::Int(1)]);
        assert_eq!(a, 1);
        assert_eq!(b, 1);
    }

    #[test]
    fn observe_prevents_collisions() {
        let mut r = SkolemRegistry::new();
        r.observe("id_T", &[Value::text("x")], 10);
        assert_eq!(r.peek("id_T", &[Value::text("x")]), Some(10));
        let fresh = r.get_or_create("id_T", &[Value::text("y")]);
        assert!(fresh > 10);
        // Re-query of observed payload returns the observed id.
        assert_eq!(r.get_or_create("id_T", &[Value::text("x")]), 10);
    }

    #[test]
    fn len_counts_assignments() {
        let mut r = SkolemRegistry::new();
        assert!(r.is_empty());
        r.get_or_create("g", &[Value::Int(1)]);
        r.get_or_create("g", &[Value::Int(1)]);
        r.get_or_create("g", &[Value::Int(2)]);
        assert_eq!(r.len(), 2);
    }
}
