//! Skolem id-generating functions (`idT(B)` in Appendix B.3/B.4/B.6).
//!
//! The paper: "On every call, the function idT(B) returns a new unique
//! identifier for the payload data B in table T. In our implementation, this
//! is merely a regular SQL sequence and the mapping rules ensure that an
//! already generated identifier is reused for the same data."
//!
//! Two layers live here:
//!
//! * [`SkolemRegistry`] — the durable memo `(generator, argument tuple) → id`
//!   so that equal payloads always receive the same identifier, within one
//!   rule evaluation (set semantics would otherwise be violated) and across
//!   evaluations (repeatable reads on generated identifiers). The memo is a
//!   two-level map (`generator → args → id`) so the hit path probes with
//!   **borrowed** keys and allocates only on insert.
//! * [`ReservationArena`] — the *reserve* half of the engine's two-phase
//!   **reserve-then-commit** minting discipline (DESIGN.md "Deterministic
//!   minting & reservation commit"). During evaluation, the first occurrence
//!   of a `(generator, args)` pair receives a **placeholder** id from a
//!   scope-disjoint range far above any real identifier; placeholders are
//!   perfectly usable as join keys and head keys *within* the evaluation
//!   (the memoized pair always yields the same placeholder). A sequential
//!   commit epilogue then assigns final ids in reservation order — which
//!   every engine (naive, compiled sequential, compiled parallel merge)
//!   produces identically — and a [`PlaceholderPatch`] rewrites the
//!   placeholders out of the emitted fragments. That is what lets id-minting
//!   rule sets fan out across worker threads without making id assignment
//!   depend on thread scheduling.

use inverda_storage::codec::{Codec, Reader};
use inverda_storage::{StorageError, Value};
use std::collections::BTreeMap;

/// One registry mutation, as journaled for the write-ahead log.
///
/// Registry state is database state (PR 4): recovery must reproduce the
/// memo *and* the per-generator counters exactly, so every mutating
/// [`SkolemRegistry`] method appends its effect here when journaling is on.
/// Replaying a `RegOp` with [`SkolemRegistry::apply_op`] reproduces the
/// original mutation without re-minting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegOp {
    /// `get_or_create_with` minted `id` (from the engine key sequence) for
    /// the pair — memo only, counters untouched.
    Mint {
        /// Generator name.
        generator: String,
        /// Argument tuple.
        args: Vec<Value>,
        /// The minted identifier.
        id: u64,
    },
    /// `observe` / `get_or_create` recorded `id` for the pair — memo insert
    /// plus counter fetch-max.
    Observe {
        /// Generator name.
        generator: String,
        /// Argument tuple.
        args: Vec<Value>,
        /// The observed identifier.
        id: u64,
    },
    /// `unobserve` forgot the pair's assignment.
    Unobserve {
        /// Generator name.
        generator: String,
        /// Argument tuple.
        args: Vec<Value>,
    },
    /// `purge_generator` forgot every assignment of the generator.
    Purge {
        /// Generator name.
        generator: String,
    },
}

const REGOP_MINT: u8 = 0;
const REGOP_OBSERVE: u8 = 1;
const REGOP_UNOBSERVE: u8 = 2;
const REGOP_PURGE: u8 = 3;

impl Codec for RegOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RegOp::Mint {
                generator,
                args,
                id,
            } => {
                out.push(REGOP_MINT);
                generator.encode(out);
                args.encode(out);
                id.encode(out);
            }
            RegOp::Observe {
                generator,
                args,
                id,
            } => {
                out.push(REGOP_OBSERVE);
                generator.encode(out);
                args.encode(out);
                id.encode(out);
            }
            RegOp::Unobserve { generator, args } => {
                out.push(REGOP_UNOBSERVE);
                generator.encode(out);
                args.encode(out);
            }
            RegOp::Purge { generator } => {
                out.push(REGOP_PURGE);
                generator.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        let tag = r.u8()?;
        let generator = r.string()?;
        match tag {
            REGOP_MINT => Ok(RegOp::Mint {
                generator,
                args: Vec::<Value>::decode(r)?,
                id: r.u64()?,
            }),
            REGOP_OBSERVE => Ok(RegOp::Observe {
                generator,
                args: Vec::<Value>::decode(r)?,
                id: r.u64()?,
            }),
            REGOP_UNOBSERVE => Ok(RegOp::Unobserve {
                generator,
                args: Vec::<Value>::decode(r)?,
            }),
            REGOP_PURGE => Ok(RegOp::Purge { generator }),
            t => Err(StorageError::codec(format!("invalid RegOp tag {t}"))),
        }
    }
}

/// Payload-level difference between two [`SkolemRegistry`] instances, as
/// reported by [`SkolemRegistry::divergence`]. Entries are in the
/// registries' own deterministic (BTreeMap) order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RegistryDivergence {
    /// `(generator, args, id)` memoized only in the left registry.
    pub only_left: Vec<(String, Vec<Value>, u64)>,
    /// `(generator, args, id)` memoized only in the right registry.
    pub only_right: Vec<(String, Vec<Value>, u64)>,
    /// `(generator, args, left_id, right_id)` memoized on both sides with
    /// differing ids.
    pub remapped: Vec<(String, Vec<Value>, u64, u64)>,
}

impl RegistryDivergence {
    /// True iff the registries agree on every memoized assignment.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty() && self.remapped.is_empty()
    }
}

/// Memoized id-generating sequences.
#[derive(Debug, Default, Clone)]
pub struct SkolemRegistry {
    /// `generator → args → id`. Two levels so lookups probe with `&str` /
    /// `&[Value]` and the hot hit path allocates nothing.
    memo: BTreeMap<String, BTreeMap<Vec<Value>, u64>>,
    counters: BTreeMap<String, u64>,
    /// When `Some`, every mutation is appended here for the WAL (enabled by
    /// the durability layer; `None` costs nothing on the in-memory path).
    journal: Option<Vec<RegOp>>,
    /// Bumped on every state mutation (mint, observe, unobserve, purge,
    /// replay). A cheap change probe: the serving layer's commit pipeline
    /// re-clones the registry for its published snapshot only when the
    /// revision moved. Not persisted; a decoded registry restarts at 0.
    revision: u64,
}

impl SkolemRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SkolemRegistry::default()
    }

    /// The id for `(generator, args)`, minting a fresh one on first call.
    pub fn get_or_create(&mut self, generator: &str, args: &[Value]) -> u64 {
        if let Some(id) = self.peek(generator, args) {
            return id;
        }
        let counter = self.counters.entry(generator.to_string()).or_insert(0);
        *counter += 1;
        let id = *counter;
        self.revision += 1;
        self.memo
            .entry(generator.to_string())
            .or_default()
            .insert(args.to_vec(), id);
        // Journaled as Observe: replaying `insert + counter fetch-max` on a
        // state where the pair was absent lands on exactly this outcome.
        self.journal_push(|| RegOp::Observe {
            generator: generator.to_string(),
            args: args.to_vec(),
            id,
        });
        id
    }

    /// The id for `(generator, args)`, minting via `mint` on first call.
    ///
    /// Generated identifiers enter the same keyspace as the InVerDa tuple
    /// identifier `p` (e.g. Appendix B.3's Rules 149/152 key source rows by
    /// the generated `t`), so the engine mints them from the global key
    /// sequence rather than per-generator counters.
    pub fn get_or_create_with(
        &mut self,
        generator: &str,
        args: &[Value],
        mint: impl FnOnce() -> u64,
    ) -> u64 {
        if let Some(id) = self.peek(generator, args) {
            return id;
        }
        let id = mint();
        self.revision += 1;
        self.memo
            .entry(generator.to_string())
            .or_default()
            .insert(args.to_vec(), id);
        self.journal_push(|| RegOp::Mint {
            generator: generator.to_string(),
            args: args.to_vec(),
            id,
        });
        id
    }

    /// Record an externally assigned id (e.g. read back from a persisted
    /// `ID` auxiliary table after a migration or data load) so future mints
    /// neither collide with nor contradict it.
    pub fn observe(&mut self, generator: &str, args: &[Value], id: u64) {
        self.revision += 1;
        self.memo
            .entry(generator.to_string())
            .or_default()
            .insert(args.to_vec(), id);
        let counter = self.counters.entry(generator.to_string()).or_insert(0);
        if *counter < id {
            *counter = id;
        }
        self.journal_push(|| RegOp::Observe {
            generator: generator.to_string(),
            args: args.to_vec(),
            id,
        });
    }

    /// Forget the assignment for `(generator, args)` — used when the
    /// physical row carrying the id changes payload or is deleted, so a
    /// later occurrence of the old payload mints a fresh id instead of
    /// colliding with the repurposed one.
    pub fn unobserve(&mut self, generator: &str, args: &[Value]) {
        self.revision += 1;
        if let Some(inner) = self.memo.get_mut(generator) {
            inner.remove(args);
        }
        self.journal_push(|| RegOp::Unobserve {
            generator: generator.to_string(),
            args: args.to_vec(),
        });
    }

    /// Forget every assignment of a generator (migration re-seeds from the
    /// relocated tables afterwards).
    pub fn purge_generator(&mut self, generator: &str) {
        self.revision += 1;
        self.memo.remove(generator);
        self.journal_push(|| RegOp::Purge {
            generator: generator.to_string(),
        });
    }

    /// The memoized id, if any, without minting. Probes with borrowed keys —
    /// no allocation on either hit or miss.
    pub fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.memo.get(generator)?.get(args).copied()
    }

    /// Debug dump of every memoized assignment (diagnostics).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (generator, inner) in &self.memo {
            for (args, id) in inner {
                let cells: Vec<String> = args.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("{generator}({}) -> {id}\n", cells.join(", ")));
            }
        }
        out
    }

    /// Per-assignment difference against `other` (the branch layer's
    /// genealogy-divergence report). Assignments are compared by payload
    /// `(generator, args)`: a payload memoized on only one side lands in
    /// `only_left` / `only_right`; a payload both sides memoized but bound
    /// to *different* ids lands in `remapped` — the expected shape when two
    /// branches independently minted the same skolem payload, and the case
    /// merge resolves by keeping the destination's id (payload-keyed
    /// identity, never re-minting).
    pub fn divergence(&self, other: &SkolemRegistry) -> RegistryDivergence {
        let mut out = RegistryDivergence::default();
        for (generator, inner) in &self.memo {
            let other_inner = other.memo.get(generator);
            for (args, id) in inner {
                match other_inner.and_then(|m| m.get(args)) {
                    None => out.only_left.push((generator.clone(), args.clone(), *id)),
                    Some(other_id) if other_id != id => {
                        out.remapped
                            .push((generator.clone(), args.clone(), *id, *other_id));
                    }
                    Some(_) => {}
                }
            }
        }
        for (generator, inner) in &other.memo {
            let self_inner = self.memo.get(generator);
            for (args, id) in inner {
                if self_inner.and_then(|m| m.get(args)).is_none() {
                    out.only_right.push((generator.clone(), args.clone(), *id));
                }
            }
        }
        out
    }

    /// Number of memoized assignments (diagnostics).
    pub fn len(&self) -> usize {
        self.memo.values().map(BTreeMap::len).sum()
    }

    /// True iff nothing has been generated or observed.
    pub fn is_empty(&self) -> bool {
        self.memo.values().all(BTreeMap::is_empty)
    }

    fn journal_push(&mut self, op: impl FnOnce() -> RegOp) {
        if let Some(journal) = &mut self.journal {
            journal.push(op());
        }
    }

    /// Turn mutation journaling on or off. Turning it on starts an empty
    /// journal; turning it off discards any pending entries.
    pub fn set_journaling(&mut self, on: bool) {
        self.journal = if on { Some(Vec::new()) } else { None };
    }

    /// Drain the pending journal entries (empty when journaling is off).
    /// Journaling stays in whatever state it was.
    pub fn take_journal(&mut self) -> Vec<RegOp> {
        match &mut self.journal {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// The mutation revision: bumped by every state-changing call since
    /// construction (decode restarts at 0). Equal revisions on the same
    /// instance mean no mutation happened in between.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Replay one journaled mutation. Does **not** journal the replay — the
    /// op came from the log and must not be re-recorded.
    pub fn apply_op(&mut self, op: &RegOp) {
        self.revision += 1;
        match op {
            RegOp::Mint {
                generator,
                args,
                id,
            } => {
                self.memo
                    .entry(generator.clone())
                    .or_default()
                    .insert(args.clone(), *id);
            }
            RegOp::Observe {
                generator,
                args,
                id,
            } => {
                self.memo
                    .entry(generator.clone())
                    .or_default()
                    .insert(args.clone(), *id);
                let counter = self.counters.entry(generator.clone()).or_insert(0);
                if *counter < *id {
                    *counter = *id;
                }
            }
            RegOp::Unobserve { generator, args } => {
                if let Some(inner) = self.memo.get_mut(generator) {
                    inner.remove(args);
                }
            }
            RegOp::Purge { generator } => {
                self.memo.remove(generator);
            }
        }
    }
}

impl Codec for SkolemRegistry {
    // Persisted state is the memo and the counters; the journal is a
    // runtime artifact and decodes as "off".
    fn encode(&self, out: &mut Vec<u8>) {
        self.memo.encode(out);
        self.counters.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        Ok(SkolemRegistry {
            memo: BTreeMap::decode(r)?,
            counters: BTreeMap::decode(r)?,
            journal: None,
            revision: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// Reservations: the reserve half of reserve-then-commit minting
// ---------------------------------------------------------------------------

/// Width of each placeholder scope (indices are asserted to stay below it).
const SCOPE_SPAN: u64 = 1 << 60;

/// Placeholder scope of worker-local (per evaluation chunk) reservations.
/// Chunk placeholders are translated into the owning evaluation's scope when
/// the chunk's fragment is merged, in chunk order.
pub const SCOPE_CHUNK: u64 = 5 << 60;

/// Placeholder scope of one full rule-set evaluation (the reservations
/// committed by [`evaluate_compiled`](crate::eval::evaluate_compiled)'s /
/// [`naive::evaluate`](crate::naive::evaluate)'s commit epilogue).
pub const SCOPE_EVAL: u64 = 6 << 60;

/// Placeholder scope of one SMO-hop propagation in the write path's
/// parallel hop fan-out (committed sequentially at distribute time, in hop
/// pop order).
pub const SCOPE_HOP: u64 = 7 << 60;

/// Whether an id value is a placeholder of *some* reservation scope. Real
/// identifiers come from the storage key sequence (or per-generator
/// counters) and live far below `SCOPE_CHUNK`; every scope stays below
/// `i64::MAX`, so placeholders survive the `Value::Int` round trip.
///
/// **Engine constraint:** user payload integers in `[SCOPE_CHUNK, 2⁶³)`
/// (≥ 5.7 · 10¹⁸) would alias active placeholders during a minting
/// evaluation — [`PlaceholderPatch`] only rewrites ids its arena actually
/// reserved (`base + index < base + len`), so the window is the handful of
/// live reservations, but inside that window an aliased payload would
/// unify (and be patched) as if it were the reservation. Keys and
/// generated ids can never reach the range (the key sequence is
/// monotonic from 0); payloads are expected to stay below it too.
pub fn is_placeholder(id: u64) -> bool {
    id >= SCOPE_CHUNK
}

/// An ordered set of first-occurrence `(generator, args)` reservations, each
/// standing in for a not-yet-minted id as `scope_base + index`.
///
/// Reservation argument tuples may themselves contain placeholders of the
/// same arena (a generator arg bound by an *earlier* skolem literal): commit
/// and translation resolve those through the already-assigned prefix, which
/// is always sufficient because an argument value existed strictly before
/// the reservation that uses it.
#[derive(Debug)]
pub struct ReservationArena {
    base: u64,
    entries: Vec<(String, Vec<Value>)>,
    /// `generator → args → entry index` (borrowed-key probes, like the
    /// registry memo).
    index: BTreeMap<String, BTreeMap<Vec<Value>, usize>>,
}

impl ReservationArena {
    /// Empty arena handing out placeholders from `scope_base`.
    pub fn new(scope_base: u64) -> Self {
        ReservationArena {
            base: scope_base,
            entries: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The placeholder already reserved for `(generator, args)`, if any.
    pub fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.index
            .get(generator)?
            .get(args)
            .map(|idx| self.base + *idx as u64)
    }

    /// The placeholder for `(generator, args)`, reserving a fresh one on
    /// first call.
    pub fn reserve(&mut self, generator: &str, args: &[Value]) -> u64 {
        if let Some(id) = self.peek(generator, args) {
            return id;
        }
        let idx = self.entries.len();
        assert!((idx as u64) < SCOPE_SPAN, "placeholder scope exhausted");
        self.entries.push((generator.to_string(), args.to_vec()));
        self.index
            .entry(generator.to_string())
            .or_default()
            .insert(args.to_vec(), idx);
        self.base + idx as u64
    }

    /// Number of reservations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing was reserved.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assign final ids in reservation order via `mint` and return the
    /// patch mapping this arena's placeholders to them. Each reservation's
    /// argument tuple is resolved through the already-assigned prefix
    /// before minting, so the durable memo never records placeholder args.
    pub fn commit(self, mut mint: impl FnMut(&str, &[Value]) -> u64) -> PlaceholderPatch {
        let mut patch = PlaceholderPatch::new(self.base, self.entries.len());
        for (generator, mut args) in self.entries {
            patch.resolve_row(&mut args);
            let id = mint(&generator, &args);
            patch.push(id);
        }
        patch
    }
}

/// The commit half: maps one scope's placeholders (`base + i`) to their
/// assigned final values. Values of other scopes — and real ids — pass
/// through untouched, which is what lets a chunk-scope patch run over rows
/// that also carry evaluation-scope placeholders.
#[derive(Debug)]
pub struct PlaceholderPatch {
    base: u64,
    finals: Vec<u64>,
}

impl PlaceholderPatch {
    /// Empty patch over a scope.
    pub fn new(base: u64, capacity: usize) -> Self {
        PlaceholderPatch {
            base,
            finals: Vec::with_capacity(capacity),
        }
    }

    /// Append the assignment for the next reservation index.
    pub fn push(&mut self, id: u64) {
        self.finals.push(id);
    }

    /// True iff the patch maps nothing (nothing was reserved).
    pub fn is_empty(&self) -> bool {
        self.finals.is_empty()
    }

    /// Whether `id` is one of this patch's placeholders (i.e.
    /// [`resolve_id`](PlaceholderPatch::resolve_id) would rewrite it).
    pub fn maps_id(&self, id: u64) -> bool {
        id >= self.base && ((id - self.base) as usize) < self.finals.len()
    }

    /// Resolve one id: a placeholder of this scope becomes its assigned
    /// value, everything else passes through.
    pub fn resolve_id(&self, id: u64) -> u64 {
        if id >= self.base {
            if let Some(assigned) = self.finals.get((id - self.base) as usize) {
                return *assigned;
            }
        }
        id
    }

    /// Resolve a value in place (only integer values can carry ids).
    pub fn resolve_value(&self, value: &mut Value) {
        if let Value::Int(i) = value {
            if *i >= 0 {
                let resolved = self.resolve_id(*i as u64);
                if resolved != *i as u64 {
                    *value = Value::Int(resolved as i64);
                }
            }
        }
    }

    /// Resolve every value of a row in place.
    pub fn resolve_row(&self, row: &mut [Value]) {
        for value in row {
            self.resolve_value(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_args_same_id() {
        let mut r = SkolemRegistry::new();
        let a = r.get_or_create("id_Author", &[Value::text("Ann")]);
        let b = r.get_or_create("id_Author", &[Value::text("Ann")]);
        let c = r.get_or_create("id_Author", &[Value::text("Ben")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generators_are_independent() {
        let mut r = SkolemRegistry::new();
        let a = r.get_or_create("id_A", &[Value::Int(1)]);
        let b = r.get_or_create("id_B", &[Value::Int(1)]);
        assert_eq!(a, 1);
        assert_eq!(b, 1);
    }

    #[test]
    fn observe_prevents_collisions() {
        let mut r = SkolemRegistry::new();
        r.observe("id_T", &[Value::text("x")], 10);
        assert_eq!(r.peek("id_T", &[Value::text("x")]), Some(10));
        let fresh = r.get_or_create("id_T", &[Value::text("y")]);
        assert!(fresh > 10);
        // Re-query of observed payload returns the observed id.
        assert_eq!(r.get_or_create("id_T", &[Value::text("x")]), 10);
    }

    #[test]
    fn len_counts_assignments() {
        let mut r = SkolemRegistry::new();
        assert!(r.is_empty());
        r.get_or_create("g", &[Value::Int(1)]);
        r.get_or_create("g", &[Value::Int(1)]);
        r.get_or_create("g", &[Value::Int(2)]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn unobserve_and_purge() {
        let mut r = SkolemRegistry::new();
        r.observe("g", &[Value::Int(1)], 5);
        r.observe("h", &[Value::Int(1)], 6);
        r.unobserve("g", &[Value::Int(1)]);
        assert_eq!(r.peek("g", &[Value::Int(1)]), None);
        r.purge_generator("h");
        assert_eq!(r.peek("h", &[Value::Int(1)]), None);
        assert!(r.is_empty());
    }

    #[test]
    fn journal_replay_reproduces_every_mutation() {
        let mut live = SkolemRegistry::new();
        live.set_journaling(true);
        live.get_or_create("g", &[Value::text("a")]);
        live.get_or_create_with("h", &[Value::Int(1)], || 77);
        live.observe("g", &[Value::text("b")], 40);
        live.unobserve("g", &[Value::text("a")]);
        live.get_or_create("g", &[Value::text("c")]); // counter continues at 41
        live.purge_generator("h");
        let ops = live.take_journal();
        assert_eq!(ops.len(), 6);
        assert!(live.take_journal().is_empty(), "journal drained");

        let mut replayed = SkolemRegistry::new();
        for op in &ops {
            replayed.apply_op(op);
        }
        assert_eq!(replayed.dump(), live.dump());
        // Counters too: the next mint must agree.
        assert_eq!(
            replayed.get_or_create("g", &[Value::text("d")]),
            live.get_or_create("g", &[Value::text("d")])
        );
    }

    #[test]
    fn journaling_off_costs_and_records_nothing() {
        let mut r = SkolemRegistry::new();
        r.get_or_create("g", &[Value::Int(1)]);
        assert!(r.take_journal().is_empty());
        r.set_journaling(true);
        r.get_or_create("g", &[Value::Int(1)]); // memo hit: no mutation
        assert!(r.take_journal().is_empty());
        r.set_journaling(false);
        r.get_or_create("g", &[Value::Int(2)]);
        assert!(r.take_journal().is_empty());
    }

    #[test]
    fn registry_codec_roundtrip_drops_journal() {
        let mut r = SkolemRegistry::new();
        r.set_journaling(true);
        r.get_or_create("g", &[Value::text("x"), Value::Null]);
        r.observe("h", &[Value::Float(1.5)], 9);
        let back = SkolemRegistry::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back.dump(), r.dump());
        assert!(back.journal.is_none());
        // Counter state survives: next mints agree.
        let mut a = back.clone();
        let mut b = r.clone();
        assert_eq!(
            a.get_or_create("h", &[Value::Int(0)]),
            b.get_or_create("h", &[Value::Int(0)])
        );
        assert!(SkolemRegistry::from_bytes(&r.to_bytes()[1..]).is_err());
    }

    #[test]
    fn arena_dedups_and_numbers_in_order() {
        let mut a = ReservationArena::new(SCOPE_EVAL);
        let p0 = a.reserve("g", &[Value::text("x")]);
        let p1 = a.reserve("g", &[Value::text("y")]);
        let again = a.reserve("g", &[Value::text("x")]);
        assert_eq!(p0, SCOPE_EVAL);
        assert_eq!(p1, SCOPE_EVAL + 1);
        assert_eq!(p0, again);
        assert!(is_placeholder(p0) && is_placeholder(p1));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn commit_assigns_in_reservation_order_and_patches_args() {
        let mut a = ReservationArena::new(SCOPE_EVAL);
        let p0 = a.reserve("g", &[Value::text("x")]);
        // Second reservation's args reference the first placeholder.
        let _p1 = a.reserve("h", &[Value::Int(p0 as i64)]);
        let mut minted: Vec<(String, Vec<Value>)> = Vec::new();
        let mut next = 100u64;
        let patch = a.commit(|generator, args| {
            minted.push((generator.to_string(), args.to_vec()));
            next += 1;
            next
        });
        assert_eq!(minted.len(), 2);
        // The arg placeholder was resolved through the prefix before minting.
        assert_eq!(minted[1].1, vec![Value::Int(101)]);
        assert_eq!(patch.resolve_id(p0), 101);
        assert_eq!(patch.resolve_id(SCOPE_EVAL + 1), 102);
        // Out-of-scope ids pass through.
        assert_eq!(patch.resolve_id(7), 7);
        assert_eq!(patch.resolve_id(SCOPE_HOP), SCOPE_HOP);
    }

    #[test]
    fn scopes_are_disjoint_and_fit_i64() {
        const {
            assert!(SCOPE_CHUNK + SCOPE_SPAN <= SCOPE_EVAL);
            assert!(SCOPE_EVAL + SCOPE_SPAN <= SCOPE_HOP);
            assert!(SCOPE_HOP + SCOPE_SPAN - 1 <= i64::MAX as u64);
        }
        assert!(!is_placeholder(SCOPE_CHUNK - 1));
    }
}
