//! The naive, name-based rule interpreter — kept as the **reference oracle**
//! for the compiled evaluator in [`crate::eval`].
//!
//! This is the original evaluation engine of the reproduction: bindings are
//! `BTreeMap<String, Value>` cloned at every join depth, and positive atoms
//! without a bound key term fall back to a full scan of the relation. It is
//! deliberately simple and obviously faithful to the paper's rule semantics
//! (Section 4), which makes it the right yardstick: the differential property
//! tests in `tests/compiled_vs_naive.rs` assert that the compiled engine
//! computes *exactly* the same derived relations (including memoized skolem
//! identifiers, whose assignment depends on evaluation order).
//!
//! Production code paths never use this module; they go through
//! [`crate::eval`].

use crate::ast::{Atom, Literal, Rule, RuleSet, Term};
use crate::error::DatalogError;
use crate::eval::{key_value, patch_relation, value_key, EdbView, IdSource, ReservingIds};
use crate::skolem;
use crate::Result;
use inverda_storage::{Key, Relation, Row, RowContext, TableSchema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Variable bindings during naive rule evaluation.
pub type Bindings = BTreeMap<String, Value>;

struct BindingsCtx<'a>(&'a Bindings);

impl RowContext for BindingsCtx<'_> {
    fn value_of(&self, column: &str) -> Option<Value> {
        self.0.get(column).cloned()
    }
}

/// Evaluate a rule set bottom-up against an EDB with the naive interpreter.
///
/// Semantics are identical to [`crate::eval::evaluate`]; see the module docs
/// for why this copy exists. Id-minting rule sets go through the same
/// two-phase reserve-then-commit cycle as the compiled engine (see
/// [`crate::skolem`]): skolem calls reserve placeholders during the join,
/// the commit epilogue mints real ids in reservation order (which equals
/// the compiled engine's merge order), and the placeholders are patched out
/// of the derived relations — so both engines stay byte-identical including
/// minted ids.
pub fn evaluate(
    rules: &RuleSet,
    edb: &dyn EdbView,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<BTreeMap<String, Relation>> {
    let mints = rules
        .rules
        .iter()
        .any(|r| r.body.iter().any(|l| matches!(l, Literal::Skolem { .. })));
    if !mints {
        let mut ev = Evaluator::new(edb, ids);
        run_rules(&mut ev, rules, head_columns)?;
        return Ok(ev.derived);
    }
    let reserving = ReservingIds::new(ids, skolem::SCOPE_EVAL);
    let derived = {
        let mut ev = Evaluator::new(edb, &reserving);
        run_rules(&mut ev, rules, head_columns)?;
        ev.derived
    };
    let patch = reserving.commit();
    if patch.is_empty() {
        return Ok(derived);
    }
    derived
        .into_iter()
        .map(|(name, rel)| patch_relation(rel, &patch).map(|rel| (name, rel)))
        .collect()
}

/// The shared bottom-up loop: rules in order, each rule's complete binding
/// sets emitted in exploration order.
fn run_rules(
    ev: &mut Evaluator<'_>,
    rules: &RuleSet,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<()> {
    for rule in &rules.rules {
        ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
        let results = ev.eval_rule(rule, None, &Bindings::new())?;
        for bindings in results {
            ev.emit(rule, &bindings)?;
        }
    }
    Ok(())
}

/// The naive evaluation engine. Holds derived heads (which shadow the EDB)
/// and a memo for key-seeded head evaluation.
pub struct Evaluator<'a> {
    edb: &'a dyn EdbView,
    ids: &'a dyn IdSource,
    /// Fully evaluated heads (full evaluation mode).
    pub derived: BTreeMap<String, Relation>,
    by_key_memo: BTreeMap<(String, Key), Option<Row>>,
}

enum RelHandle<'a> {
    Borrowed(&'a Relation),
    Shared(Arc<Relation>),
}

impl std::ops::Deref for RelHandle<'_> {
    type Target = Relation;

    fn deref(&self) -> &Relation {
        match self {
            RelHandle::Borrowed(r) => r,
            RelHandle::Shared(r) => r,
        }
    }
}

impl<'a> Evaluator<'a> {
    /// New naive evaluator over an EDB.
    pub fn new(edb: &'a dyn EdbView, ids: &'a dyn IdSource) -> Self {
        Evaluator {
            edb,
            ids,
            derived: BTreeMap::new(),
            by_key_memo: BTreeMap::new(),
        }
    }

    fn ensure_head(
        &mut self,
        head: &str,
        arity: usize,
        head_columns: &BTreeMap<String, Vec<String>>,
    ) {
        if !self.derived.contains_key(head) {
            let columns: Vec<String> = match head_columns.get(head) {
                Some(cols) => cols.clone(),
                None => (0..arity).map(|i| format!("c{i}")).collect(),
            };
            let schema = TableSchema::new(head.to_string(), columns).expect("unique columns");
            self.derived.insert(head.to_string(), Relation::new(schema));
        }
    }

    /// Add the head tuple induced by complete `bindings` to the derived head.
    fn emit(&mut self, rule: &Rule, bindings: &Bindings) -> Result<()> {
        let (key, row) = head_tuple(rule, bindings)?;
        let rel = self
            .derived
            .get_mut(&rule.head.relation)
            .expect("head relation pre-created");
        match rel.get(key) {
            Some(existing) if *existing == row => Ok(()),
            Some(_) => Err(DatalogError::KeyConflict {
                relation: rule.head.relation.clone(),
                key: key.0,
            }),
            None => {
                rel.upsert(key, row).map_err(DatalogError::from)?;
                Ok(())
            }
        }
    }

    /// Resolve a relation for matching: derived heads shadow the EDB.
    fn relation_full(&self, name: &str) -> Result<RelHandle<'_>> {
        if let Some(rel) = self.derived.get(name) {
            return Ok(RelHandle::Borrowed(rel));
        }
        Ok(RelHandle::Shared(self.edb.full(name)?))
    }

    fn relation_by_key(&self, name: &str, key: Key) -> Result<Option<Row>> {
        if let Some(rel) = self.derived.get(name) {
            return Ok(rel.get(key).cloned());
        }
        self.edb.by_key(name, key)
    }

    /// All bindings satisfying the rule body, with `skip` (a body literal
    /// index) excluded and `seed` pre-bound. Returns complete binding sets
    /// (every rule variable bound).
    pub fn eval_rule(
        &mut self,
        rule: &Rule,
        skip: Option<usize>,
        seed: &Bindings,
    ) -> Result<Vec<Bindings>> {
        let order = schedule(rule, skip, seed)?;
        let mut results = Vec::new();
        self.join(rule, &order, 0, seed.clone(), &mut results)?;
        Ok(results)
    }

    fn join(
        &mut self,
        rule: &Rule,
        order: &[usize],
        depth: usize,
        bindings: Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<()> {
        if depth == order.len() {
            out.push(bindings);
            return Ok(());
        }
        let lit = &rule.body[order[depth]];
        match lit {
            Literal::Pos(atom) => {
                let matches = self.match_atom(atom, &bindings)?;
                for b in matches {
                    self.join(rule, order, depth + 1, b, out)?;
                }
            }
            Literal::Neg(atom) => {
                if !self.atom_has_match(atom, &bindings)? {
                    self.join(rule, order, depth + 1, bindings, out)?;
                }
            }
            Literal::Cond(expr) => {
                if expr
                    .matches(&BindingsCtx(&bindings))
                    .map_err(DatalogError::from)?
                {
                    self.join(rule, order, depth + 1, bindings, out)?;
                }
            }
            Literal::Assign { var, expr } => {
                let v = expr
                    .eval(&BindingsCtx(&bindings))
                    .map_err(DatalogError::from)?;
                match bindings.get(var) {
                    Some(bound) if *bound == v => {
                        self.join(rule, order, depth + 1, bindings, out)?
                    }
                    Some(_) => {} // equality check failed
                    None => {
                        let mut b = bindings;
                        b.insert(var.clone(), v);
                        self.join(rule, order, depth + 1, b, out)?;
                    }
                }
            }
            Literal::Skolem {
                var,
                generator,
                args,
            } => {
                let mut vals = Vec::with_capacity(args.len());
                for t in args {
                    match t {
                        Term::Var(name) => match bindings.get(name) {
                            Some(v) => vals.push(v.clone()),
                            None => {
                                return Err(DatalogError::UnsafeRule {
                                    rule: rule.to_string(),
                                })
                            }
                        },
                        Term::Const(c) => vals.push(c.clone()),
                        Term::Anon => {
                            return Err(DatalogError::UnsafeRule {
                                rule: rule.to_string(),
                            })
                        }
                    }
                }
                let id = self.ids.generate(generator, &vals);
                let v = Value::Int(id as i64);
                match bindings.get(var) {
                    Some(bound) if *bound == v => {
                        self.join(rule, order, depth + 1, bindings, out)?
                    }
                    Some(_) => {}
                    None => {
                        let mut b = bindings;
                        b.insert(var.clone(), v);
                        self.join(rule, order, depth + 1, b, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// All binding extensions matching a positive atom.
    fn match_atom(&mut self, atom: &Atom, bindings: &Bindings) -> Result<Vec<Bindings>> {
        // Key-bound fast path.
        if let Some(kv) = resolved_term(&atom.terms[0], bindings) {
            // A non-key value (e.g. NULL from an ω fk) matches nothing.
            let Ok(key) = value_key(&atom.relation, &kv) else {
                return Ok(Vec::new());
            };
            let row = self.relation_by_key(&atom.relation, key)?;
            let mut out = Vec::new();
            if let Some(row) = row {
                check_arity(atom, row.len() + 1)?;
                if let Some(b) = unify_row(atom, key, &row, bindings) {
                    out.push(b);
                }
            }
            return Ok(out);
        }
        let rel = self.relation_full(&atom.relation)?;
        check_arity(atom, rel.schema().arity() + 1)?;
        let mut out = Vec::new();
        for (key, row) in rel.iter() {
            if let Some(b) = unify_row(atom, key, row, bindings) {
                out.push(b);
            }
        }
        Ok(out)
    }

    /// Whether any tuple matches the atom under the bindings (for negation).
    fn atom_has_match(&mut self, atom: &Atom, bindings: &Bindings) -> Result<bool> {
        if let Some(kv) = resolved_term(&atom.terms[0], bindings) {
            let Ok(key) = value_key(&atom.relation, &kv) else {
                return Ok(false);
            };
            return Ok(match self.relation_by_key(&atom.relation, key)? {
                Some(row) => unify_row(atom, key, &row, bindings).is_some(),
                None => false,
            });
        }
        let rel = self.relation_full(&atom.relation)?;
        check_arity(atom, rel.schema().arity() + 1)?;
        for (key, row) in rel.iter() {
            if unify_row(atom, key, row, bindings).is_some() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Key-seeded evaluation: the row `head` derives for `key` under the
    /// given rule set, or `None`. Memoized per (head, key).
    ///
    /// Falls back to full evaluation of the head when the key binding cannot
    /// be pushed into a rule's body (e.g. the key is produced by a skolem
    /// function — the id-generating SMOs).
    pub fn head_row_for_key(
        &mut self,
        rules: &RuleSet,
        head: &str,
        key: Key,
    ) -> Result<Option<Row>> {
        if let Some(memo) = self.by_key_memo.get(&(head.to_string(), key)) {
            return Ok(memo.clone());
        }
        // If the head was already fully derived, serve from it.
        if let Some(rel) = self.derived.get(head) {
            let row = rel.get(key).cloned();
            self.by_key_memo
                .insert((head.to_string(), key), row.clone());
            return Ok(row);
        }
        let mut found: Option<Row> = None;
        for rule in rules.rules_for(head) {
            let rows = match rule.head_key_var() {
                Some(kvar) if seedable(rule, kvar) => {
                    let mut seed = Bindings::new();
                    seed.insert(kvar.to_string(), key_value(key));
                    let bindings = self.eval_rule(rule, None, &seed)?;
                    bindings
                        .iter()
                        .map(|b| head_tuple(rule, b))
                        .collect::<Result<Vec<_>>>()?
                }
                _ => {
                    // Key not pushable: evaluate the rule fully and filter.
                    let bindings = self.eval_rule(rule, None, &Bindings::new())?;
                    bindings
                        .iter()
                        .map(|b| head_tuple(rule, b))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .filter(|(k, _)| *k == key)
                        .collect()
                }
            };
            for (k, row) in rows {
                if k != key {
                    continue;
                }
                match &found {
                    Some(existing) if *existing == row => {}
                    Some(_) => {
                        return Err(DatalogError::KeyConflict {
                            relation: head.to_string(),
                            key: key.0,
                        })
                    }
                    None => found = Some(row),
                }
            }
        }
        self.by_key_memo
            .insert((head.to_string(), key), found.clone());
        Ok(found)
    }
}

/// Whether the rule's key variable occurs in some body atom, so that seeding
/// it restricts evaluation.
fn seedable(rule: &Rule, key_var: &str) -> bool {
    rule.body.iter().any(|lit| match lit {
        Literal::Pos(a) => a.variables().contains(&key_var),
        _ => false,
    })
}

/// Build the head tuple from complete bindings.
fn head_tuple(rule: &Rule, bindings: &Bindings) -> Result<(Key, Row)> {
    let head = &rule.head;
    let mut values = Vec::with_capacity(head.terms.len());
    for t in &head.terms {
        match t {
            Term::Var(v) => match bindings.get(v) {
                Some(val) => values.push(val.clone()),
                None => {
                    return Err(DatalogError::UnsafeRule {
                        rule: rule.to_string(),
                    })
                }
            },
            Term::Const(c) => values.push(c.clone()),
            Term::Anon => {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.to_string(),
                })
            }
        }
    }
    let key = value_key(&head.relation, &values[0])?;
    Ok((key, values[1..].to_vec()))
}

/// Try to extend `bindings` so the atom matches `(key, row)`.
fn unify_row(atom: &Atom, key: Key, row: &[Value], bindings: &Bindings) -> Option<Bindings> {
    let mut out = bindings.clone();
    let kv = key_value(key);
    if !unify_term(&atom.terms[0], &kv, &mut out) {
        return None;
    }
    for (t, v) in atom.terms[1..].iter().zip(row.iter()) {
        if !unify_term(t, v, &mut out) {
            return None;
        }
    }
    Some(out)
}

fn unify_term(term: &Term, value: &Value, bindings: &mut Bindings) -> bool {
    match term {
        Term::Anon => true,
        Term::Const(c) => c == value,
        Term::Var(v) => match bindings.get(v) {
            Some(bound) => bound == value,
            None => {
                bindings.insert(v.clone(), value.clone());
                true
            }
        },
    }
}

/// The value a term resolves to under the bindings, if fully resolved.
fn resolved_term(term: &Term, bindings: &Bindings) -> Option<Value> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => bindings.get(v).cloned(),
        Term::Anon => None,
    }
}

fn check_arity(atom: &Atom, relation_arity: usize) -> Result<()> {
    if atom.terms.len() != relation_arity {
        return Err(DatalogError::ArityMismatch {
            relation: atom.relation.clone(),
            atom_arity: atom.terms.len(),
            relation_arity,
        });
    }
    Ok(())
}

/// Compute a safe evaluation order for the body literals.
///
/// Positive atoms are always schedulable; negations, conditions and
/// assignments wait until their variables are bound. Among schedulable
/// positive atoms, those with a resolvable key term are preferred (index
/// lookup beats scan). The compiled evaluator mirrors this algorithm exactly
/// (over slot bitmasks) so both engines explore joins in the same order —
/// which matters for the id-minting order of skolem generators.
pub(crate) fn schedule(rule: &Rule, skip: Option<usize>, seed: &Bindings) -> Result<Vec<usize>> {
    let mut bound: BTreeSet<String> = seed.keys().cloned().collect();
    let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|i| Some(*i) != skip).collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // 1. Any non-atom literal whose inputs are bound, or negation with
        //    all vars bound — cheap filters first.
        let ready_filter = remaining.iter().position(|&i| match &rule.body[i] {
            Literal::Neg(a) => a.variables().iter().all(|v| bound.contains(*v)),
            Literal::Cond(e) => e.referenced_columns().iter().all(|c| bound.contains(c)),
            Literal::Assign { expr, .. } => {
                expr.referenced_columns().iter().all(|c| bound.contains(c))
            }
            Literal::Skolem { args, .. } => args
                .iter()
                .filter_map(|t| t.as_var())
                .all(|v| bound.contains(v)),
            Literal::Pos(_) => false,
        });
        if let Some(pos) = ready_filter {
            let i = remaining.remove(pos);
            for v in rule.body[i].variables() {
                bound.insert(v);
            }
            order.push(i);
            continue;
        }
        // 2. A positive atom, preferring one with a bound key term.
        let keyed = remaining.iter().position(|&i| match &rule.body[i] {
            Literal::Pos(a) => match a.key_term() {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
                Term::Anon => false,
            },
            _ => false,
        });
        let any_pos = keyed.or_else(|| {
            remaining
                .iter()
                .position(|&i| rule.body[i].is_positive_atom())
        });
        match any_pos {
            Some(pos) => {
                let i = remaining.remove(pos);
                for v in rule.body[i].variables() {
                    bound.insert(v);
                }
                order.push(i);
            }
            None => {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.to_string(),
                })
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MapEdb;
    use crate::skolem::SkolemRegistry;
    use parking_lot::Mutex;

    fn ids() -> Mutex<SkolemRegistry> {
        Mutex::new(SkolemRegistry::new())
    }

    #[test]
    fn schedule_rejects_unsafe_rules() {
        // Negation over a variable never bound positively.
        let rule = Rule::new(
            Atom::vars("H", &["p"]),
            vec![Literal::Neg(Atom::vars("X", &["p"]))],
        );
        assert!(schedule(&rule, None, &Bindings::new()).is_err());
    }

    #[test]
    fn naive_evaluate_smoke() {
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "a"]),
            vec![Literal::Pos(Atom::vars("X", &["p", "a"]))],
        )]);
        let mut x = Relation::with_columns("X", ["a"]);
        x.insert(Key(1), vec![Value::Int(7)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(x);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["H"].get(Key(1)), Some(&vec![Value::Int(7)]));
    }

    #[test]
    fn naive_head_row_for_key_smoke() {
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "a"]),
            vec![Literal::Pos(Atom::vars("X", &["p", "a"]))],
        )]);
        let mut x = Relation::with_columns("X", ["a"]);
        x.insert(Key(1), vec![Value::Int(7)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(x);
        let sk = ids();
        let mut ev = Evaluator::new(&edb, &sk);
        assert_eq!(
            ev.head_row_for_key(&rules, "H", Key(1)).unwrap(),
            Some(vec![Value::Int(7)])
        );
        assert_eq!(ev.head_row_for_key(&rules, "H", Key(9)).unwrap(), None);
    }
}
