//! The engine's parallelism knob and shared thread pool.
//!
//! Every parallel fan-out in the engine — independent rules of one γ
//! mapping, chunked join scans, delta-probe batches, independent SMO hops in
//! the write path, cold resolution of distinct virtual relations — draws its
//! workers from one process-wide [`ThreadPool`] (the vendored `workpool`
//! crate) and its *logical width* from [`threads`]:
//!
//! * `INVERDA_THREADS=1` (or [`set_threads`]`(1)`) disables every parallel
//!   path — the engine runs exactly the sequential code that existed before
//!   parallel evaluation landed;
//! * `INVERDA_THREADS=n` fans out into ~`n`-way task splits;
//! * unset, the width defaults to [`std::thread::available_parallelism`].
//!
//! **Determinism contract** (see DESIGN.md "Parallel evaluation &
//! deterministic merge"): the width only decides how work is *split*; every
//! parallel path in the engine merges its fragments in canonical task order
//! and is gated to side-effect-free (non-id-minting) work, so results —
//! including skolem id assignment — are byte-identical at every width.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use workpool::ThreadPool;

/// Runtime override of the logical width; 0 = not set.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide pool, created on first parallel use.
static POOL: OnceLock<ThreadPool> = OnceLock::new();

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("INVERDA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n >= 1)
}

/// The configured logical parallelism: a [`set_threads`] override, else the
/// `INVERDA_THREADS` environment variable, else the machine's available
/// parallelism. `1` means "stay on the sequential paths".
pub fn threads() -> usize {
    let over = OVERRIDE.load(Ordering::Relaxed);
    if over >= 1 {
        return over;
    }
    env_threads().unwrap_or_else(available)
}

/// Override the logical width at runtime (benchmarks sweep 1/2/4/8; the
/// differential property tests randomize it per case). `None` restores the
/// `INVERDA_THREADS` / auto-detect behavior.
pub fn set_threads(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The shared pool. Sized once, generously (`max(available, 8) - 1`
/// workers, the scope owner being the extra one), so a width override above
/// the core count still genuinely interleaves — that is what lets the
/// differential tests exercise real cross-thread execution even on small
/// CI machines.
pub fn pool() -> &'static ThreadPool {
    POOL.get_or_init(|| {
        let width = available().max(env_threads().unwrap_or(0)).clamp(8, 16);
        ThreadPool::new(width - 1)
    })
}

/// Run `n` independent tasks at the configured width and return results in
/// task order. With width 1 (or a single task) everything runs inline on
/// the caller — byte-identical results either way is the caller's contract:
/// tasks must be pure (no id minting, no shared mutable state beyond
/// interior-mutability caches whose content is deterministic).
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let width = threads();
    if width <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    pool().map_indexed(n, width, f)
}

/// Split `len` items into at most `width * 2` contiguous chunks of at
/// least [`crate::tuning::min_chunk`] items, returned as `(start, end)`
/// ranges covering `0..len` in order. Used by the chunked join scans:
/// fragment boundaries never change results, only how evaluation is
/// distributed.
pub fn chunk_ranges(len: usize, width: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let max_chunks = (width.max(1) * 2).max(1);
    let chunk = (len.div_ceil(max_chunks)).max(crate::tuning::min_chunk());
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push((start, end));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        for len in [0usize, 1, 7, 64, 1000] {
            for width in [1usize, 2, 4, 8] {
                let ranges = chunk_ranges(len, width);
                let mut expect = 0;
                for (s, e) in &ranges {
                    assert_eq!(*s, expect);
                    assert!(*e > *s);
                    expect = *e;
                }
                assert_eq!(expect, len);
                assert!(ranges.len() <= width * 2 + 1);
            }
        }
    }

    /// One test body for everything that toggles the process-global width
    /// override — separate `#[test]` fns would race each other through
    /// `set_threads` under libtest's default parallel execution.
    #[test]
    fn width_override_behaviors() {
        // Order-deterministic at width 4.
        set_threads(Some(4));
        let out = map_indexed(257, |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
        // Width 1 never touches the pool.
        set_threads(Some(1));
        let tid = std::thread::current().id();
        let out = map_indexed(5, move |_| std::thread::current().id() == tid);
        assert!(out.iter().all(|b| *b));
        set_threads(None);
    }
}
