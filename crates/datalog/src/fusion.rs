//! γ-chain fusion: statically compose adjacent SMO mappings.
//!
//! A cold read of a virtual table version k hops from its data evaluates k
//! rule sets, each materializing one intermediate version. For the
//! column-level SMOs (ADD/DROP/RENAME COLUMN, RENAME TABLE) the composition
//! is itself expressible as a single rule set: the intermediate version's
//! defining rules are inlined into their consumer with Lemma 1
//! ([`crate::simplify::unfold`]) — body-atom substitution with variable
//! renaming for positive occurrences, the `t(K)` choice construction for
//! negative ones. This module provides the policy around that mechanism:
//!
//! * the `INVERDA_FUSION={on,off}` knob ([`enabled`] / [`set_enabled`]),
//!   defaulting **on**;
//! * the structural gate [`hop_fusable`]: a mapping participates in a fused
//!   run only if it is skolem-free (fused runs must not reorder id minting)
//!   and non-staged (staged sets consume their own intermediate heads, which
//!   inlining would have to evaluate in sequence);
//! * [`inline_hop`], one fusion step under a [`FusionBudget`] — negative
//!   unfolding multiplies rule counts (an ADD COLUMN hop has an aux-present
//!   and an aux-absent rule, so k naive hops can cost 2^k rules), so a run
//!   whose fused form outgrows the budget simply stops early and leaves the
//!   remaining hops to ordinary recursive resolution.
//!
//! The caller (the core crate's `VersionedEdb`) decides *which* hops to
//! fuse — SMO kinds, aux-emptiness assumptions, and caching live there,
//! next to the catalog; this module is pure rule-set surgery.

use crate::ast::{Literal, RuleSet};
use crate::simplify::{unfold, Derivation};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runtime override of the knob: 0 = not set, 1 = on, 2 = off.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_enabled() -> bool {
    match std::env::var("INVERDA_FUSION") {
        Ok(v) => !matches!(v.trim(), "off" | "0" | "false" | "no"),
        Err(_) => true,
    }
}

/// Whether γ-chain fusion is enabled: a [`set_enabled`] override, else the
/// `INVERDA_FUSION` environment variable (`off`/`0`/`false`/`no` disable),
/// else **on**. Disabled fusion runs exactly the hop-by-hop resolution that
/// existed before fusion landed.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Override the knob at runtime (benchmarks toggle it per measurement; the
/// differential property tests run both settings over one scenario). `None`
/// restores the `INVERDA_FUSION` / default-on behavior.
pub fn set_enabled(on: Option<bool>) {
    OVERRIDE.store(
        match on {
            Some(true) => 1,
            Some(false) => 2,
            None => 0,
        },
        Ordering::Relaxed,
    );
}

/// Size bounds on a fused rule set. Fusion trades k small evaluations for
/// one larger one; past these bounds the larger one stops winning (and
/// negative unfolding can grow exponentially), so the run is cut short.
#[derive(Debug, Clone, Copy)]
pub struct FusionBudget {
    /// Maximum rules in the fused set.
    pub max_rules: usize,
    /// Maximum body literals in any single fused rule.
    pub max_body: usize,
}

impl Default for FusionBudget {
    fn default() -> Self {
        FusionBudget {
            max_rules: 64,
            max_body: 32,
        }
    }
}

/// Whether `rules` fits within `budget`.
pub fn within_budget(rules: &RuleSet, budget: &FusionBudget) -> bool {
    rules.len() <= budget.max_rules && rules.rules.iter().all(|r| r.body.len() <= budget.max_body)
}

/// Structural gate: a mapping may participate in a fused run only if it is
/// **skolem-free** (no rule binds a variable through a generator — fusing a
/// minting hop would evaluate its generators under a different outer rule
/// set, changing the canonical minting order) and **non-staged** (no body
/// atom references a head of the same set; staged intermediates are
/// evaluated in rule order, which inlining does not preserve).
pub fn hop_fusable(rules: &RuleSet) -> bool {
    let heads: BTreeSet<&str> = rules
        .rules
        .iter()
        .map(|r| r.head.relation.as_str())
        .collect();
    for rule in &rules.rules {
        for lit in &rule.body {
            match lit {
                Literal::Skolem { .. } => return false,
                Literal::Pos(a) | Literal::Neg(a) if heads.contains(a.relation.as_str()) => {
                    return false;
                }
                _ => {}
            }
        }
    }
    true
}

/// One fusion step: inline `defs` (the defining rules of one intermediate
/// relation) into every occurrence in `outer`, returning the fused set —
/// or `None` when the result outgrows `budget`, in which case the caller
/// keeps `outer` and lets ordinary resolution handle the remaining hops.
///
/// `defs` must be restricted to the rules of the single relation being
/// inlined and must satisfy [`hop_fusable`]; under those conditions
/// [`unfold`] terminates and is exact (Lemma 1 over functional relations).
pub fn inline_hop(outer: &RuleSet, defs: &RuleSet, budget: &FusionBudget) -> Option<RuleSet> {
    let fused = unfold(outer, defs, &mut Derivation::new());
    if within_budget(&fused, budget) {
        Some(fused)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Rule, Term};

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::vars(rel, vars)
    }

    #[test]
    fn knob_override_wins() {
        set_enabled(Some(false));
        assert!(!enabled());
        set_enabled(Some(true));
        assert!(enabled());
        set_enabled(None);
    }

    #[test]
    fn staged_and_minting_sets_are_not_fusable() {
        let staged = RuleSet::new(vec![
            Rule::new(
                atom("Mid", &["p", "a"]),
                vec![Literal::Pos(atom("In", &["p", "a"]))],
            ),
            Rule::new(
                atom("Out", &["p", "a"]),
                vec![Literal::Pos(atom("Mid", &["p", "a"]))],
            ),
        ]);
        assert!(!hop_fusable(&staged));
        let minting = RuleSet::new(vec![Rule::new(
            atom("Out", &["p", "a", "i"]),
            vec![
                Literal::Pos(atom("In", &["p", "a"])),
                Literal::Skolem {
                    var: "i".to_string(),
                    generator: "idT".to_string(),
                    args: vec![Term::var("a")],
                },
            ],
        )]);
        assert!(!hop_fusable(&minting));
        let plain = RuleSet::new(vec![Rule::new(
            atom("Out", &["p", "a"]),
            vec![Literal::Pos(atom("In", &["p", "a"]))],
        )]);
        assert!(hop_fusable(&plain));
    }

    #[test]
    fn inline_hop_composes_rename_chain() {
        // V3(p,a) ← V2(p,a); V2(p,a) ← V1(p,a) fuse to V3(p,a) ← V1(p,a).
        let outer = RuleSet::new(vec![Rule::new(
            atom("V3", &["p", "a"]),
            vec![Literal::Pos(atom("V2", &["p", "a"]))],
        )]);
        let defs = RuleSet::new(vec![Rule::new(
            atom("V2", &["p", "a"]),
            vec![Literal::Pos(atom("V1", &["p", "a"]))],
        )]);
        let fused = inline_hop(&outer, &defs, &FusionBudget::default()).unwrap();
        assert_eq!(fused.len(), 1);
        assert_eq!(fused.rules[0].to_string(), "V3(p, a) ← V1(p, a)");
    }

    #[test]
    fn budget_overflow_rejects_fusion() {
        let outer = RuleSet::new(vec![Rule::new(
            atom("V3", &["p", "a"]),
            vec![Literal::Pos(atom("V2", &["p", "a"]))],
        )]);
        let defs = RuleSet::new(
            (0..4)
                .map(|i| {
                    Rule::new(
                        atom("V2", &["p", "a"]),
                        vec![Literal::Pos(atom(&format!("V1_{i}"), &["p", "a"]))],
                    )
                })
                .collect(),
        );
        let tight = FusionBudget {
            max_rules: 2,
            max_body: 32,
        };
        assert!(inline_hop(&outer, &defs, &tight).is_none());
        assert!(inline_hop(&outer, &defs, &FusionBudget::default()).is_some());
    }
}
