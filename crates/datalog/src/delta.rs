//! Update propagation: mapping write deltas through a rule set.
//!
//! This is the engine-side equivalent of the paper's generated triggers.
//! Section 6: "InVerDa adopts an update propagation technique for Datalog
//! rules \[2] that results in minimal write operations" — e.g. Rules 52–54
//! propagate an insert on the source table of a materialized SPLIT to the
//! target-side tables it affects, and to nothing else.
//!
//! Implementation: semi-naive probing. For every body literal over a changed
//! relation, the changed tuples are bound into that literal and the rest of
//! the rule body is evaluated (against the pre-state for deletions, the
//! post-state for insertions) to find *candidate* head keys. Candidates are
//! then re-derived per key in both states and diffed, which yields an exact,
//! minimal head delta — including the `old ¬R(p,A)` existence guards of the
//! paper's update rules, which fall out of the diff.
//!
//! Rule sets whose rules consume earlier heads (the id-generating SMOs of
//! Appendix B.3/B.4/B.6, with their `old`/`new` staging) fall back to a full
//! two-state evaluation and diff; they are exactly the SMOs whose triggers
//! also need non-key joins in SQL.

use crate::ast::RuleSet;
use crate::error::DatalogError;
use crate::eval::{evaluate_compiled, CompiledRuleSet, EdbView, Evaluator, IdSource, ReservingIds};
use crate::skolem::{self, PlaceholderPatch};
use crate::Result;
use inverda_storage::{ColumnIndex, IndexCache, Key, Relation, Row};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Changes to one relation. A key present in both `deletes` and `inserts`
/// denotes an update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Rows removed, keyed by tuple identifier (old payload).
    pub deletes: BTreeMap<Key, Row>,
    /// Rows added, keyed by tuple identifier (new payload).
    pub inserts: BTreeMap<Key, Row>,
}

impl Delta {
    /// Empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Delta inserting one row.
    pub fn insert(key: Key, row: Row) -> Self {
        let mut d = Delta::new();
        d.inserts.insert(key, row);
        d
    }

    /// Delta deleting one row.
    pub fn delete(key: Key, row: Row) -> Self {
        let mut d = Delta::new();
        d.deletes.insert(key, row);
        d
    }

    /// Delta updating one row.
    pub fn update(key: Key, old: Row, new: Row) -> Self {
        let mut d = Delta::new();
        d.deletes.insert(key, old);
        d.inserts.insert(key, new);
        d
    }

    /// True iff no changes are recorded.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }

    /// Number of affected keys.
    pub fn len(&self) -> usize {
        let mut keys: BTreeSet<Key> = self.deletes.keys().copied().collect();
        keys.extend(self.inserts.keys().copied());
        keys.len()
    }

    /// Apply to a relation in place (delete-then-insert; same-key pairs act
    /// as updates).
    pub fn apply_to(&self, rel: &mut Relation) -> Result<()> {
        for key in self.deletes.keys() {
            rel.delete_if_present(*key);
        }
        for (key, row) in &self.inserts {
            rel.upsert(*key, row.clone()).map_err(DatalogError::from)?;
        }
        Ok(())
    }

    /// Fold another delta into this one (later changes win).
    pub fn merge(&mut self, other: &Delta) {
        for (k, row) in &other.deletes {
            if self.inserts.remove(k).is_none() {
                self.deletes.entry(*k).or_insert_with(|| row.clone());
            } else if !self.deletes.contains_key(k) {
                // The earlier insert is cancelled; if we also had no delete
                // recorded, the tuple existed only transiently.
            }
        }
        for (k, row) in &other.inserts {
            self.inserts.insert(*k, row.clone());
        }
    }
}

/// Deltas for several relations, keyed by relation name.
pub type DeltaMap = BTreeMap<String, Delta>;

/// An EDB overlaying write deltas on a base view: the "new state".
pub struct PatchedEdb<'a> {
    /// Pre-state.
    pub base: &'a dyn EdbView,
    /// Changes to overlay.
    pub patches: &'a DeltaMap,
    cache: Mutex<BTreeMap<String, Arc<Relation>>>,
    indexes: IndexCache,
}

impl<'a> PatchedEdb<'a> {
    /// Overlay `patches` on `base`.
    pub fn new(base: &'a dyn EdbView, patches: &'a DeltaMap) -> Self {
        PatchedEdb {
            base,
            patches,
            cache: Mutex::new(BTreeMap::new()),
            indexes: IndexCache::new(),
        }
    }
}

impl EdbView for PatchedEdb<'_> {
    fn full(&self, relation: &str) -> Result<Arc<Relation>> {
        if let Some(cached) = self.cache.lock().get(relation) {
            return Ok(Arc::clone(cached));
        }
        let base = self.base.full(relation)?;
        let out = match self.patches.get(relation) {
            None => base,
            Some(delta) if delta.is_empty() => base,
            Some(delta) => {
                let mut rel = (*base).clone();
                delta.apply_to(&mut rel)?;
                Arc::new(rel)
            }
        };
        self.cache
            .lock()
            .insert(relation.to_string(), Arc::clone(&out));
        Ok(out)
    }

    fn prepare_parallel(&self, relations: &[&str]) -> Result<bool> {
        // The base must be shareable first; patching itself is pure, but
        // pre-patch every requested relation sequentially so workers only
        // hit the cache.
        if !self.base.prepare_parallel(relations)? {
            return Ok(false);
        }
        for rel in relations {
            if self.full(rel).is_err() {
                // Let the sequential path produce the canonical outcome.
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn by_key(&self, relation: &str, key: Key) -> Result<Option<Row>> {
        if let Some(delta) = self.patches.get(relation) {
            if let Some(row) = delta.inserts.get(&key) {
                return Ok(Some(row.clone()));
            }
            if delta.deletes.contains_key(&key) {
                return Ok(None);
            }
        }
        self.base.by_key(relation, key)
    }

    fn contains(&self, relation: &str) -> bool {
        self.base.contains(relation) || self.patches.contains_key(relation)
    }

    fn index(&self, relation: &str, column: usize) -> Result<Arc<ColumnIndex>> {
        self.indexes.get_or_build(relation, column, || {
            Ok(self.full(relation)?.build_column_index(column))
        })
    }
}

/// Propagate input deltas through a rule set, returning the exact deltas of
/// every head relation. Compiles the rules first; use
/// [`propagate_compiled`] to reuse a compiled set across writes.
pub fn propagate(
    rules: &RuleSet,
    base: &dyn EdbView,
    input_delta: &DeltaMap,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<DeltaMap> {
    propagate_compiled(
        &CompiledRuleSet::compile(rules)?,
        base,
        input_delta,
        ids,
        head_columns,
    )
}

/// Propagate input deltas through a pre-compiled rule set.
///
/// When the configured width exceeds 1 and the batch is large enough, the
/// probe and re-derivation phases fan out over the shared pool: probes are
/// independent pure joins whose candidate sets merge by set-union
/// (order-independent), and per-key re-derivations are independent point
/// evaluations merged by key — so the resulting delta is byte-identical to
/// a sequential run at any width. Small writes (the common OLTP statement)
/// stay sequential; fan-out pays off on bulk loads and whole-relation
/// migrations.
///
/// **Minting rule sets participate** (the PR-4 "probe fan-out" leftover):
/// a non-staged set that binds variables through skolem generators runs its
/// whole propagation — sequential or fanned out — under an evaluation-scope
/// [`ReservingIds`]. Probe and re-derivation workers reserve placeholders
/// in chunk-local arenas which the merge absorbs in canonical job order
/// (old phase, then rule, literal, tuple chunk; re-derivations in
/// new-then-old pass and key order — exactly the sequential exploration
/// order), and a final commit mints real ids in that order and patches them
/// through the returned deltas via [`patch_delta_map`]. Staged sets (which
/// consume their own heads) still take the recompute fallback.
pub fn propagate_compiled(
    crs: &CompiledRuleSet,
    base: &dyn EdbView,
    input_delta: &DeltaMap,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<DeltaMap> {
    if crs.staged() {
        return propagate_by_recompute_compiled(crs, base, input_delta, ids, head_columns);
    }
    if !crs.mints_ids() {
        return propagate_unstaged(crs, base, input_delta, ids, None);
    }
    // Mint-capable: reserve-then-commit, so the parallel phases never touch
    // the shared registry and the sequential commit epilogue reproduces the
    // width-1 minting order bit for bit.
    let reserving = ReservingIds::new(ids, skolem::SCOPE_EVAL);
    let out = propagate_unstaged(crs, base, input_delta, &reserving, Some(&reserving))?;
    let patch = reserving.commit();
    Ok(patch_delta_map(out, &patch))
}

/// The shared body of [`propagate_compiled`] for non-staged rule sets.
/// `scope` is the evaluation-scope reservation arena when the set can mint
/// (workers then reserve into chunk-local arenas absorbed in job order);
/// `None` for mint-free sets, whose workers run on [`NO_MINT_IDS`].
fn propagate_unstaged(
    crs: &CompiledRuleSet,
    base: &dyn EdbView,
    input_delta: &DeltaMap,
    ids: &dyn IdSource,
    scope: Option<&ReservingIds<'_>>,
) -> Result<DeltaMap> {
    let patched = PatchedEdb::new(base, input_delta);
    let probe_work: usize = input_delta
        .values()
        .map(|d| d.deletes.len() + d.inserts.len())
        .sum();
    // Preparing the patched view also prepares (and pre-resolves) the base.
    let par_min_work = crate::tuning::par_min_work();
    let par = crate::parallel::threads() > 1
        && probe_work >= par_min_work
        && patched
            .prepare_parallel(&crs.body_relations())
            .unwrap_or(false);

    // ---- Phase 1 (old state): probe deletions at positive literals and
    // insertions at negative literals.
    // ---- Phase 2 (new state): probe insertions at positive literals and
    // deletions at negative literals.
    let mut candidates: BTreeMap<String, BTreeSet<Key>> = BTreeMap::new();
    if par {
        probe_rules_parallel(crs, base, &patched, input_delta, scope, &mut candidates)?;
    } else {
        let old_ev = Evaluator::new(base, ids);
        probe_rules(crs, &old_ev, input_delta, ProbeState::Old, &mut candidates)?;
        let new_ev = Evaluator::new(&patched, ids);
        probe_rules(crs, &new_ev, input_delta, ProbeState::New, &mut candidates)?;
    }

    // ---- Phase 3: resolve candidates exactly in both states.
    let n_candidates: usize = candidates.values().map(BTreeSet::len).sum();
    let (new_rows, old_rows) = if par && n_candidates >= par_min_work {
        resolve_candidates_parallel(crs, base, &patched, &candidates, scope)?
    } else {
        let mut new_rows: BTreeMap<(String, Key), Option<Row>> = BTreeMap::new();
        {
            let mut new_ev = Evaluator::new(&patched, ids);
            for (head, keys) in &candidates {
                for key in keys {
                    let row = new_ev.head_row_for_key(crs, head, *key)?;
                    new_rows.insert((head.clone(), *key), row);
                }
            }
        }
        let mut old_rows: BTreeMap<(String, Key), Option<Row>> = BTreeMap::new();
        {
            let mut old_ev = Evaluator::new(base, ids);
            for (head, keys) in &candidates {
                for key in keys {
                    let row = old_ev.head_row_for_key(crs, head, *key)?;
                    old_rows.insert((head.clone(), *key), row);
                }
            }
        }
        (new_rows, old_rows)
    };

    let mut out: DeltaMap = DeltaMap::new();
    for (head, keys) in &candidates {
        let delta = out.entry(head.clone()).or_default();
        for key in keys {
            let old = old_rows.get(&(head.clone(), *key)).cloned().flatten();
            let new = new_rows.get(&(head.clone(), *key)).cloned().flatten();
            match (old, new) {
                (None, Some(row)) => {
                    delta.inserts.insert(*key, row);
                }
                (Some(row), None) => {
                    delta.deletes.insert(*key, row);
                }
                (Some(old_row), Some(new_row)) if old_row != new_row => {
                    delta.deletes.insert(*key, old_row);
                    delta.inserts.insert(*key, new_row);
                }
                _ => {}
            }
        }
    }
    out.retain(|_, d| !d.is_empty());
    Ok(out)
}

/// Fallback: evaluate the whole rule set in both states and diff the heads.
/// Exact but O(state); used for staged rule sets (id-generating SMOs).
pub fn propagate_by_recompute(
    rules: &RuleSet,
    base: &dyn EdbView,
    input_delta: &DeltaMap,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<DeltaMap> {
    propagate_by_recompute_compiled(
        &CompiledRuleSet::compile(rules)?,
        base,
        input_delta,
        ids,
        head_columns,
    )
}

/// [`propagate_by_recompute`] over a pre-compiled rule set.
pub fn propagate_by_recompute_compiled(
    crs: &CompiledRuleSet,
    base: &dyn EdbView,
    input_delta: &DeltaMap,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<DeltaMap> {
    let old_out = evaluate_compiled(crs, base, ids, head_columns)?;
    let patched = PatchedEdb::new(base, input_delta);
    let new_out = evaluate_compiled(crs, &patched, ids, head_columns)?;
    let mut out = DeltaMap::new();
    for (head, new_rel) in &new_out {
        let old_rel = &old_out[head];
        let d = new_rel.diff(old_rel);
        if d.is_empty() {
            continue;
        }
        let mut delta = Delta::new();
        for (k, row) in d.deletes {
            delta.deletes.insert(k, row);
        }
        for (k, row) in d.inserts {
            delta.inserts.insert(k, row);
        }
        for (k, old_row, new_row) in d.updates {
            delta.deletes.insert(k, old_row);
            delta.inserts.insert(k, new_row);
        }
        out.insert(head.clone(), delta);
    }
    Ok(out)
}

/// Rewrite a committed reservation patch through a delta map: placeholder
/// keys and payload cells become the minted ids. A no-op (and
/// allocation-free) when nothing was reserved. Shared by
/// [`propagate_compiled`]'s commit epilogue and the write path's hop-scope
/// commits (`inverda-core`), so both patch emitted deltas identically.
pub fn patch_delta_map(deltas: DeltaMap, patch: &PlaceholderPatch) -> DeltaMap {
    if patch.is_empty() {
        return deltas;
    }
    deltas
        .into_iter()
        .map(|(rel, delta)| {
            let resolve = |side: BTreeMap<Key, Row>| {
                side.into_iter()
                    .map(|(key, mut row)| {
                        patch.resolve_row(&mut row);
                        (Key(patch.resolve_id(key.0)), row)
                    })
                    .collect()
            };
            let patched = Delta {
                deletes: resolve(delta.deletes),
                inserts: resolve(delta.inserts),
            };
            (rel, patched)
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum ProbeState {
    Old,
    New,
}

/// Parallel probe phases: every (state, rule, literal, tuple-chunk) is an
/// independent pure join; fragments are candidate-key sets merged by union,
/// which is order-independent — errors are reported in canonical job order
/// (old phase first, then rule, literal, tuple), matching the sequential
/// scan. With a reservation `scope` (minting rule sets), each job reserves
/// into its own chunk arena; the merge absorbs arenas in job order — the
/// sequential reservation order — and translates the job's candidate keys
/// through the resulting patch, so a skolem-bound head key names the same
/// reservation no matter which worker found it.
fn probe_rules_parallel(
    crs: &CompiledRuleSet,
    base: &dyn EdbView,
    patched: &PatchedEdb<'_>,
    input_delta: &DeltaMap,
    scope: Option<&ReservingIds<'_>>,
    candidates: &mut BTreeMap<String, BTreeSet<Key>>,
) -> Result<()> {
    struct Job {
        new_state: bool,
        rule_idx: usize,
        lit_idx: usize,
        tuples: Arc<Vec<(Key, Row)>>,
        range: (usize, usize),
    }
    let width = crate::parallel::threads();
    // One shared tuple buffer per (relation, deletes|inserts): the same
    // changed-tuple list is probed at every literal over that relation in
    // both states, so copy it out of the delta maps once, not per job.
    type TupleBuffers<'a> = BTreeMap<(&'a str, bool), Arc<Vec<(Key, Row)>>>;
    let mut buffers: TupleBuffers = BTreeMap::new();
    let mut jobs: Vec<Job> = Vec::new();
    for state in [ProbeState::Old, ProbeState::New] {
        for rule_idx in 0..crs.rules.len() {
            for (lit_idx, atom, positive) in crs.body_atoms(rule_idx) {
                let Some(delta) = input_delta.get(&atom.relation) else {
                    continue;
                };
                let inserts = matches!(
                    (state, positive),
                    (ProbeState::Old, false) | (ProbeState::New, true)
                );
                let tuples = Arc::clone(
                    buffers
                        .entry((atom.relation.as_str(), inserts))
                        .or_insert_with(|| {
                            let side = if inserts {
                                &delta.inserts
                            } else {
                                &delta.deletes
                            };
                            Arc::new(side.iter().map(|(k, r)| (*k, r.clone())).collect())
                        }),
                );
                for range in crate::parallel::chunk_ranges(tuples.len(), width) {
                    jobs.push(Job {
                        new_state: state == ProbeState::New,
                        rule_idx,
                        lit_idx,
                        tuples: Arc::clone(&tuples),
                        range,
                    });
                }
            }
        }
    }
    type ProbeFragment = (BTreeSet<Key>, Option<crate::skolem::ReservationArena>);
    let results: Vec<Result<ProbeFragment>> = crate::parallel::map_indexed(jobs.len(), |ji| {
        let job = &jobs[ji];
        let chunk_ids = scope.map(|s| ReservingIds::new(s, skolem::SCOPE_CHUNK));
        let worker_ids: &dyn IdSource = match &chunk_ids {
            Some(c) => c,
            None => &crate::eval::NO_MINT_IDS,
        };
        let ev = if job.new_state {
            Evaluator::new(patched, worker_ids)
        } else {
            Evaluator::new(base, worker_ids)
        };
        let mut keys = BTreeSet::new();
        for (key, row) in &job.tuples[job.range.0..job.range.1] {
            ev.probe_head_keys(crs, job.rule_idx, job.lit_idx, *key, row, &mut keys)?;
        }
        Ok((keys, chunk_ids.map(ReservingIds::into_arena)))
    });
    for (job, result) in jobs.iter().zip(results) {
        let (keys, arena) = result?;
        let keys = match (scope, arena) {
            (Some(scope), Some(arena)) => {
                let translation = scope.absorb(arena);
                keys.into_iter()
                    .map(|k| Key(translation.resolve_id(k.0)))
                    .collect()
            }
            _ => keys,
        };
        let head = &crs.rules[job.rule_idx].head.relation;
        candidates.entry(head.clone()).or_default().extend(keys);
    }
    candidates.retain(|_, keys| !keys.is_empty());
    Ok(())
}

/// Parallel phase 3: re-derive every candidate key in both states on the
/// pool, merging fragments by key. Each chunk gets its own evaluator (and
/// memo); derivations are independent point evaluations, so the merged maps
/// equal the sequential ones exactly. With a reservation `scope`, chunk
/// workers reserve into their own arenas, absorbed in pass-then-range order
/// (the sequential exploration order) with the derived rows translated
/// through each absorption's patch.
#[allow(clippy::type_complexity)]
fn resolve_candidates_parallel(
    crs: &CompiledRuleSet,
    base: &dyn EdbView,
    patched: &PatchedEdb<'_>,
    candidates: &BTreeMap<String, BTreeSet<Key>>,
    scope: Option<&ReservingIds<'_>>,
) -> Result<(
    BTreeMap<(String, Key), Option<Row>>,
    BTreeMap<(String, Key), Option<Row>>,
)> {
    let pairs: Vec<(&str, Key)> = candidates
        .iter()
        .flat_map(|(head, keys)| keys.iter().map(move |k| (head.as_str(), *k)))
        .collect();
    let width = crate::parallel::threads();
    let ranges = crate::parallel::chunk_ranges(pairs.len(), width);
    // The new-state pass runs first, like the sequential code.
    let mut maps: Vec<BTreeMap<(String, Key), Option<Row>>> = Vec::new();
    for new_state in [true, false] {
        type ResolveFragment = (Vec<Option<Row>>, Option<crate::skolem::ReservationArena>);
        let results: Vec<Result<ResolveFragment>> =
            crate::parallel::map_indexed(ranges.len(), |ci| {
                let (start, end) = ranges[ci];
                let chunk_ids = scope.map(|s| ReservingIds::new(s, skolem::SCOPE_CHUNK));
                let worker_ids: &dyn IdSource = match &chunk_ids {
                    Some(c) => c,
                    None => &crate::eval::NO_MINT_IDS,
                };
                let mut ev = if new_state {
                    Evaluator::new(patched, worker_ids)
                } else {
                    Evaluator::new(base, worker_ids)
                };
                let rows = pairs[start..end]
                    .iter()
                    .map(|(head, key)| ev.head_row_for_key(crs, head, *key))
                    .collect::<Result<Vec<Option<Row>>>>()?;
                Ok((rows, chunk_ids.map(ReservingIds::into_arena)))
            });
        let mut merged = BTreeMap::new();
        for ((start, end), result) in ranges.iter().zip(results) {
            let (rows, arena) = result?;
            let translation = match (scope, arena) {
                (Some(scope), Some(arena)) => Some(scope.absorb(arena)),
                _ => None,
            };
            for ((head, key), mut row) in pairs[*start..*end].iter().zip(rows) {
                if let (Some(tr), Some(row)) = (&translation, row.as_mut()) {
                    tr.resolve_row(row);
                }
                merged.insert(((*head).to_string(), *key), row);
            }
        }
        maps.push(merged);
    }
    let old_rows = maps.pop().expect("two passes");
    let new_rows = maps.pop().expect("two passes");
    Ok((new_rows, old_rows))
}

/// Seed every rule with changed tuples and collect candidate head keys.
fn probe_rules(
    crs: &CompiledRuleSet,
    ev: &Evaluator<'_>,
    input_delta: &DeltaMap,
    state: ProbeState,
    candidates: &mut BTreeMap<String, BTreeSet<Key>>,
) -> Result<()> {
    for rule_idx in 0..crs.rules.len() {
        for (lit_idx, atom, positive) in crs.body_atoms(rule_idx) {
            let Some(delta) = input_delta.get(&atom.relation) else {
                continue;
            };
            // Which changed tuples to probe in this state:
            // old state: deletions of positive literals (they supported old
            //   derivations) and insertions at negative literals (they kill
            //   old derivations);
            // new state: insertions at positive literals and deletions at
            //   negative literals.
            let tuples: Vec<(&Key, &Row)> = match (state, positive) {
                (ProbeState::Old, true) => delta.deletes.iter().collect(),
                (ProbeState::Old, false) => delta.inserts.iter().collect(),
                (ProbeState::New, true) => delta.inserts.iter().collect(),
                (ProbeState::New, false) => delta.deletes.iter().collect(),
            };
            let head = &crs.rules[rule_idx].head.relation;
            let keys = candidates.entry(head.clone()).or_default();
            for (key, row) in tuples {
                // For positive literals in their supporting state the tuple
                // is present, so skipping the literal is exact; for the
                // other cases skipping over-approximates, which is fine —
                // candidates are re-derived exactly afterwards.
                ev.probe_head_keys(crs, rule_idx, lit_idx, *key, row, keys)?;
            }
        }
    }
    candidates.retain(|_, keys| !keys.is_empty());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Literal, Rule, RuleSet, Term};
    use crate::eval::MapEdb;
    use crate::skolem::SkolemRegistry;
    use inverda_storage::{Expr, Value};

    fn ids() -> Mutex<SkolemRegistry> {
        Mutex::new(SkolemRegistry::new())
    }

    /// γtgt of a materialized SPLIT on prio (simplified clean-state shape).
    fn split_gamma_tgt() -> RuleSet {
        let vars = ["p", "author", "task", "prio"];
        RuleSet::new(vec![
            Rule::new(
                Atom::vars("R", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(Expr::col("prio").eq(Expr::lit(1))),
                    Literal::Neg(Atom::new("Rminus", vec![Term::var("p")])),
                ],
            ),
            Rule::new(
                Atom::vars("S", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(Expr::col("prio").ge(Expr::lit(2))),
                ],
            ),
        ])
    }

    fn task_edb() -> MapEdb {
        let mut t = Relation::with_columns("T", ["author", "task", "prio"]);
        t.insert(
            Key(1),
            vec!["Ann".into(), "Organize party".into(), 3.into()],
        )
        .unwrap();
        t.insert(Key(3), vec!["Ann".into(), "Write paper".into(), 1.into()])
            .unwrap();
        t.insert(Key(4), vec!["Ben".into(), "Clean room".into(), 1.into()])
            .unwrap();
        let mut edb = MapEdb::new();
        edb.add(t);
        edb.add(Relation::with_columns("Rminus", [] as [&str; 0]));
        edb
    }

    #[test]
    fn insert_propagates_to_matching_partition_only() {
        let edb = task_edb();
        let sk = ids();
        let mut input = DeltaMap::new();
        input.insert(
            "T".into(),
            Delta::insert(Key(9), vec!["Eve".into(), "New".into(), 1.into()]),
        );
        let out = propagate(&split_gamma_tgt(), &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert!(out.contains_key("R"));
        assert!(!out.contains_key("S"));
        let r = &out["R"];
        assert_eq!(r.inserts.len(), 1);
        assert!(r.deletes.is_empty());
        assert_eq!(
            r.inserts[&Key(9)],
            vec![Value::text("Eve"), Value::text("New"), Value::Int(1)]
        );
    }

    #[test]
    fn update_moving_between_partitions_deletes_and_inserts() {
        let edb = task_edb();
        let sk = ids();
        // prio 1 -> 2: leaves R, enters S.
        let mut input = DeltaMap::new();
        input.insert(
            "T".into(),
            Delta::update(
                Key(3),
                vec!["Ann".into(), "Write paper".into(), 1.into()],
                vec!["Ann".into(), "Write paper".into(), 2.into()],
            ),
        );
        let out = propagate(&split_gamma_tgt(), &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["R"].deletes.len(), 1);
        assert!(out["R"].inserts.is_empty());
        assert_eq!(out["S"].inserts.len(), 1);
        assert!(out["S"].deletes.is_empty());
    }

    #[test]
    fn delete_propagates_to_partition() {
        let edb = task_edb();
        let sk = ids();
        let mut input = DeltaMap::new();
        input.insert(
            "T".into(),
            Delta::delete(
                Key(1),
                vec!["Ann".into(), "Organize party".into(), 3.into()],
            ),
        );
        let out = propagate(&split_gamma_tgt(), &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert!(!out.contains_key("R"));
        assert_eq!(out["S"].deletes.len(), 1);
    }

    #[test]
    fn negative_literal_insert_kills_derivation() {
        // Inserting p into Rminus removes p from R.
        let edb = task_edb();
        let sk = ids();
        let mut input = DeltaMap::new();
        input.insert("Rminus".into(), Delta::insert(Key(3), vec![]));
        let out = propagate(&split_gamma_tgt(), &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["R"].deletes.len(), 1);
        assert!(out["R"].deletes.contains_key(&Key(3)));
    }

    #[test]
    fn negative_literal_delete_restores_derivation() {
        // Rminus contains key 3; removing it restores R(3).
        let mut edb = task_edb();
        let mut rminus = Relation::with_columns("Rminus", [] as [&str; 0]);
        rminus.insert(Key(3), vec![]).unwrap();
        edb.add(rminus);
        let sk = ids();
        let mut input = DeltaMap::new();
        input.insert("Rminus".into(), Delta::delete(Key(3), vec![]));
        let out = propagate(&split_gamma_tgt(), &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["R"].inserts.len(), 1);
        assert!(out["R"].inserts.contains_key(&Key(3)));
    }

    #[test]
    fn noop_write_produces_no_delta() {
        let edb = task_edb();
        let sk = ids();
        // "Update" that does not change the row.
        let mut input = DeltaMap::new();
        input.insert(
            "T".into(),
            Delta::update(
                Key(3),
                vec!["Ann".into(), "Write paper".into(), 1.into()],
                vec!["Ann".into(), "Write paper".into(), 1.into()],
            ),
        );
        let out = propagate(&split_gamma_tgt(), &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn propagate_agrees_with_recompute() {
        let edb = task_edb();
        let rules = split_gamma_tgt();
        let mut input = DeltaMap::new();
        input.insert(
            "T".into(),
            Delta::update(
                Key(4),
                vec!["Ben".into(), "Clean room".into(), 1.into()],
                vec!["Ben".into(), "Clean room".into(), 5.into()],
            ),
        );
        let sk1 = ids();
        let fast = propagate(&rules, &edb, &input, &sk1, &BTreeMap::new()).unwrap();
        let sk2 = ids();
        let slow = propagate_by_recompute(&rules, &edb, &input, &sk2, &BTreeMap::new()).unwrap();
        let slow: DeltaMap = slow.into_iter().filter(|(_, d)| !d.is_empty()).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn staged_rulesets_use_recompute_fallback() {
        // Second rule consumes the first rule's head -> staged.
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("Mid", &["p", "x"]),
                vec![Literal::Pos(Atom::vars("In", &["p", "x"]))],
            ),
            Rule::new(
                Atom::vars("Out", &["p", "x"]),
                vec![
                    Literal::Pos(Atom::vars("Mid", &["p", "x"])),
                    Literal::Cond(Expr::col("x").gt(Expr::lit(0))),
                ],
            ),
        ]);
        let mut input_rel = Relation::with_columns("In", ["x"]);
        input_rel.insert(Key(1), vec![Value::Int(5)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(input_rel);
        let sk = ids();
        let mut input = DeltaMap::new();
        input.insert("In".into(), Delta::insert(Key(2), vec![Value::Int(7)]));
        let out = propagate(&rules, &edb, &input, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["Mid"].inserts.len(), 1);
        assert_eq!(out["Out"].inserts.len(), 1);
    }

    #[test]
    fn patched_edb_overlays_deltas() {
        let edb = task_edb();
        let mut patches = DeltaMap::new();
        patches.insert(
            "T".into(),
            Delta::update(
                Key(1),
                vec!["Ann".into(), "Organize party".into(), 3.into()],
                vec!["Ann".into(), "Organize party".into(), 1.into()],
            ),
        );
        let patched = PatchedEdb::new(&edb, &patches);
        let row = patched.by_key("T", Key(1)).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(1));
        let full = patched.full("T").unwrap();
        assert_eq!(full.get(Key(1)).unwrap()[2], Value::Int(1));
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn delta_merge_cancels_transients() {
        let mut a = Delta::insert(Key(1), vec![Value::Int(1)]);
        let b = Delta::delete(Key(1), vec![Value::Int(1)]);
        a.merge(&b);
        assert!(a.inserts.is_empty());
        // Insert-then-delete of a previously absent tuple nets to nothing
        // visible (the delete entry is harmless for apply_to).
        let mut rel = Relation::with_columns("X", ["v"]);
        a.apply_to(&mut rel).unwrap();
        assert!(rel.is_empty());
    }
}
