//! Staged, non-recursive rule evaluation.
//!
//! Evaluation follows the paper's reading of a rule set: rules are processed
//! in order; each rule's body is matched against the EDB *plus* all heads
//! derived by earlier rules (which realizes the `old`/`new` staging of the
//! id-generating SMOs). Derived heads shadow EDB relations of the same name.
//!
//! Two entry points:
//!
//! * [`evaluate`] — full bottom-up evaluation of a rule set;
//! * [`Evaluator::head_row_for_key`] — key-seeded evaluation used by the
//!   delta engine and by lazy view expansion: computes the single row a head
//!   relation derives for one key, pushing the key binding into body atoms
//!   (the engine-side analogue of a DBMS optimizer pushing a key predicate
//!   into a generated view).

use crate::ast::{Atom, Literal, Rule, RuleSet, Term};
use crate::error::DatalogError;
use crate::skolem::SkolemRegistry;
use crate::Result;
use inverda_storage::{Key, Relation, Row, RowContext, TableSchema, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Read access to the extensional database during evaluation.
///
/// Implementations may serve relations lazily — the InVerDa core resolves
/// *virtual* table versions through SMO mappings on demand, so a key lookup
/// on a virtual relation need not materialize the whole relation. Relations
/// are returned as `Arc` so repeated `full` calls stay cheap.
pub trait EdbView {
    /// Full state of the relation.
    fn full(&self, relation: &str) -> Result<Arc<Relation>>;

    /// The row stored under `key`, if any.
    fn by_key(&self, relation: &str, key: Key) -> Result<Option<Row>> {
        Ok(self.full(relation)?.get(key).cloned())
    }

    /// Whether the relation is served by this view.
    fn contains(&self, relation: &str) -> bool;
}

/// A source of memoized skolem identifiers usable behind a shared reference
/// (rule evaluation happens on read paths too, which may mint fresh ids for
/// new payloads).
pub trait IdSource {
    /// The id for `(generator, args)`, minted on first use.
    fn generate(&self, generator: &str, args: &[Value]) -> u64;
}

impl IdSource for RefCell<SkolemRegistry> {
    fn generate(&self, generator: &str, args: &[Value]) -> u64 {
        self.borrow_mut().get_or_create(generator, args)
    }
}

/// A plain map-backed EDB.
#[derive(Debug, Clone, Default)]
pub struct MapEdb(pub BTreeMap<String, Arc<Relation>>);

impl MapEdb {
    /// Empty EDB.
    pub fn new() -> Self {
        MapEdb(BTreeMap::new())
    }

    /// Insert a relation under its own name.
    pub fn add(&mut self, rel: Relation) -> &mut Self {
        self.0.insert(rel.name().to_string(), Arc::new(rel));
        self
    }

    /// Insert a shared relation under the given name.
    pub fn add_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) -> &mut Self {
        self.0.insert(name.into(), rel);
        self
    }
}

impl EdbView for MapEdb {
    fn full(&self, relation: &str) -> Result<Arc<Relation>> {
        self.0
            .get(relation)
            .cloned()
            .ok_or_else(|| DatalogError::UnboundRelation {
                relation: relation.to_string(),
            })
    }

    fn by_key(&self, relation: &str, key: Key) -> Result<Option<Row>> {
        match self.0.get(relation) {
            Some(rel) => Ok(rel.get(key).cloned()),
            None => Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            }),
        }
    }

    fn contains(&self, relation: &str) -> bool {
        self.0.contains_key(relation)
    }
}

/// Variable bindings during rule evaluation.
pub type Bindings = BTreeMap<String, Value>;

struct BindingsCtx<'a>(&'a Bindings);

impl RowContext for BindingsCtx<'_> {
    fn value_of(&self, column: &str) -> Option<Value> {
        self.0.get(column).cloned()
    }
}

/// Convert a key to its binding value.
pub fn key_value(key: Key) -> Value {
    Value::Int(key.0 as i64)
}

/// Convert a binding value back to a key.
pub fn value_key(relation: &str, v: &Value) -> Result<Key> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(Key(*i as u64)),
        other => Err(DatalogError::BadKey {
            relation: relation.to_string(),
            value: other.to_string(),
        }),
    }
}

/// Evaluate a rule set bottom-up against an EDB.
///
/// Returns the derived relations keyed by head name. `head_columns` supplies
/// column names for derived relations; heads without an entry get synthetic
/// positional names (`c0`, `c1`, …).
pub fn evaluate(
    rules: &RuleSet,
    edb: &dyn EdbView,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<BTreeMap<String, Relation>> {
    let mut ev = Evaluator::new(edb, ids);
    for rule in &rules.rules {
        ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
        let results = ev.eval_rule(rule, None, &Bindings::new())?;
        for bindings in results {
            ev.emit(rule, &bindings)?;
        }
    }
    Ok(ev.derived)
}

/// The evaluation engine. Holds derived heads (which shadow the EDB) and a
/// memo for key-seeded head evaluation.
pub struct Evaluator<'a> {
    edb: &'a dyn EdbView,
    ids: &'a dyn IdSource,
    /// Fully evaluated heads (full evaluation mode).
    pub derived: BTreeMap<String, Relation>,
    by_key_memo: BTreeMap<(String, Key), Option<Row>>,
}

enum RelHandle<'a> {
    Borrowed(&'a Relation),
    Shared(Arc<Relation>),
}

impl std::ops::Deref for RelHandle<'_> {
    type Target = Relation;

    fn deref(&self) -> &Relation {
        match self {
            RelHandle::Borrowed(r) => r,
            RelHandle::Shared(r) => r,
        }
    }
}

impl<'a> Evaluator<'a> {
    /// New evaluator over an EDB.
    pub fn new(edb: &'a dyn EdbView, ids: &'a dyn IdSource) -> Self {
        Evaluator {
            edb,
            ids,
            derived: BTreeMap::new(),
            by_key_memo: BTreeMap::new(),
        }
    }

    fn ensure_head(
        &mut self,
        head: &str,
        arity: usize,
        head_columns: &BTreeMap<String, Vec<String>>,
    ) {
        if !self.derived.contains_key(head) {
            let columns: Vec<String> = match head_columns.get(head) {
                Some(cols) => cols.clone(),
                None => (0..arity).map(|i| format!("c{i}")).collect(),
            };
            let schema = TableSchema::new(head.to_string(), columns).expect("unique columns");
            self.derived.insert(head.to_string(), Relation::new(schema));
        }
    }

    /// Add the head tuple induced by complete `bindings` to the derived head.
    fn emit(&mut self, rule: &Rule, bindings: &Bindings) -> Result<()> {
        let (key, row) = head_tuple(rule, bindings)?;
        let rel = self
            .derived
            .get_mut(&rule.head.relation)
            .expect("head relation pre-created");
        match rel.get(key) {
            Some(existing) if *existing == row => Ok(()),
            Some(_) => Err(DatalogError::KeyConflict {
                relation: rule.head.relation.clone(),
                key: key.0,
            }),
            None => {
                rel.upsert(key, row).map_err(DatalogError::from)?;
                Ok(())
            }
        }
    }

    /// Resolve a relation for matching: derived heads shadow the EDB.
    fn relation_full(&self, name: &str) -> Result<RelHandle<'_>> {
        if let Some(rel) = self.derived.get(name) {
            return Ok(RelHandle::Borrowed(rel));
        }
        Ok(RelHandle::Shared(self.edb.full(name)?))
    }

    fn relation_by_key(&self, name: &str, key: Key) -> Result<Option<Row>> {
        if let Some(rel) = self.derived.get(name) {
            return Ok(rel.get(key).cloned());
        }
        self.edb.by_key(name, key)
    }

    /// All bindings satisfying the rule body, with `skip` (a body literal
    /// index) excluded and `seed` pre-bound. Returns complete binding sets
    /// (every rule variable bound).
    pub fn eval_rule(
        &mut self,
        rule: &Rule,
        skip: Option<usize>,
        seed: &Bindings,
    ) -> Result<Vec<Bindings>> {
        let order = schedule(rule, skip, seed)?;
        let mut results = Vec::new();
        self.join(rule, &order, 0, seed.clone(), &mut results)?;
        Ok(results)
    }

    fn join(
        &mut self,
        rule: &Rule,
        order: &[usize],
        depth: usize,
        bindings: Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<()> {
        if depth == order.len() {
            out.push(bindings);
            return Ok(());
        }
        let lit = &rule.body[order[depth]];
        match lit {
            Literal::Pos(atom) => {
                let matches = self.match_atom(atom, &bindings)?;
                for b in matches {
                    self.join(rule, order, depth + 1, b, out)?;
                }
            }
            Literal::Neg(atom) => {
                if !self.atom_has_match(atom, &bindings)? {
                    self.join(rule, order, depth + 1, bindings, out)?;
                }
            }
            Literal::Cond(expr) => {
                if expr.matches(&BindingsCtx(&bindings)).map_err(DatalogError::from)? {
                    self.join(rule, order, depth + 1, bindings, out)?;
                }
            }
            Literal::Assign { var, expr } => {
                let v = expr.eval(&BindingsCtx(&bindings)).map_err(DatalogError::from)?;
                match bindings.get(var) {
                    Some(bound) if *bound == v => {
                        self.join(rule, order, depth + 1, bindings, out)?
                    }
                    Some(_) => {} // equality check failed
                    None => {
                        let mut b = bindings;
                        b.insert(var.clone(), v);
                        self.join(rule, order, depth + 1, b, out)?;
                    }
                }
            }
            Literal::Skolem {
                var,
                generator,
                args,
            } => {
                let mut vals = Vec::with_capacity(args.len());
                for t in args {
                    match t {
                        Term::Var(name) => match bindings.get(name) {
                            Some(v) => vals.push(v.clone()),
                            None => {
                                return Err(DatalogError::UnsafeRule {
                                    rule: rule.to_string(),
                                })
                            }
                        },
                        Term::Const(c) => vals.push(c.clone()),
                        Term::Anon => {
                            return Err(DatalogError::UnsafeRule {
                                rule: rule.to_string(),
                            })
                        }
                    }
                }
                let id = self.ids.generate(generator, &vals);
                let v = Value::Int(id as i64);
                match bindings.get(var) {
                    Some(bound) if *bound == v => {
                        self.join(rule, order, depth + 1, bindings, out)?
                    }
                    Some(_) => {}
                    None => {
                        let mut b = bindings;
                        b.insert(var.clone(), v);
                        self.join(rule, order, depth + 1, b, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// All binding extensions matching a positive atom.
    fn match_atom(&mut self, atom: &Atom, bindings: &Bindings) -> Result<Vec<Bindings>> {
        // Key-bound fast path.
        if let Some(kv) = resolved_term(&atom.terms[0], bindings) {
            // A non-key value (e.g. NULL from an ω fk) matches nothing.
            let Ok(key) = value_key(&atom.relation, &kv) else {
                return Ok(Vec::new());
            };
            let row = self.relation_by_key(&atom.relation, key)?;
            let mut out = Vec::new();
            if let Some(row) = row {
                check_arity(atom, row.len() + 1)?;
                if let Some(b) = unify_row(atom, key, &row, bindings) {
                    out.push(b);
                }
            }
            return Ok(out);
        }
        let rel = self.relation_full(&atom.relation)?;
        check_arity(atom, rel.schema().arity() + 1)?;
        let mut out = Vec::new();
        for (key, row) in rel.iter() {
            if let Some(b) = unify_row(atom, key, row, bindings) {
                out.push(b);
            }
        }
        Ok(out)
    }

    /// Whether any tuple matches the atom under the bindings (for negation).
    fn atom_has_match(&mut self, atom: &Atom, bindings: &Bindings) -> Result<bool> {
        if let Some(kv) = resolved_term(&atom.terms[0], bindings) {
            let Ok(key) = value_key(&atom.relation, &kv) else {
                return Ok(false);
            };
            return Ok(match self.relation_by_key(&atom.relation, key)? {
                Some(row) => unify_row(atom, key, &row, bindings).is_some(),
                None => false,
            });
        }
        let rel = self.relation_full(&atom.relation)?;
        check_arity(atom, rel.schema().arity() + 1)?;
        for (key, row) in rel.iter() {
            if unify_row(atom, key, row, bindings).is_some() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Key-seeded evaluation: the row `head` derives for `key` under the
    /// given rule set, or `None`. Memoized per (head, key).
    ///
    /// Falls back to full evaluation of the head when the key binding cannot
    /// be pushed into a rule's body (e.g. the key is produced by a skolem
    /// function — the id-generating SMOs).
    pub fn head_row_for_key(
        &mut self,
        rules: &RuleSet,
        head: &str,
        key: Key,
    ) -> Result<Option<Row>> {
        if let Some(memo) = self.by_key_memo.get(&(head.to_string(), key)) {
            return Ok(memo.clone());
        }
        // If the head was already fully derived, serve from it.
        if let Some(rel) = self.derived.get(head) {
            let row = rel.get(key).cloned();
            self.by_key_memo.insert((head.to_string(), key), row.clone());
            return Ok(row);
        }
        let mut found: Option<Row> = None;
        for rule in rules.rules_for(head) {
            let rows = match rule.head_key_var() {
                Some(kvar) if seedable(rule, kvar) => {
                    let mut seed = Bindings::new();
                    seed.insert(kvar.to_string(), key_value(key));
                    let bindings = self.eval_rule(rule, None, &seed)?;
                    bindings
                        .iter()
                        .map(|b| head_tuple(rule, b))
                        .collect::<Result<Vec<_>>>()?
                }
                _ => {
                    // Key not pushable: evaluate the rule fully and filter.
                    let bindings = self.eval_rule(rule, None, &Bindings::new())?;
                    bindings
                        .iter()
                        .map(|b| head_tuple(rule, b))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .filter(|(k, _)| *k == key)
                        .collect()
                }
            };
            for (k, row) in rows {
                if k != key {
                    continue;
                }
                match &found {
                    Some(existing) if *existing == row => {}
                    Some(_) => {
                        return Err(DatalogError::KeyConflict {
                            relation: head.to_string(),
                            key: key.0,
                        })
                    }
                    None => found = Some(row),
                }
            }
        }
        self.by_key_memo
            .insert((head.to_string(), key), found.clone());
        Ok(found)
    }
}

/// Whether the rule's key variable occurs in some body atom, so that seeding
/// it restricts evaluation.
fn seedable(rule: &Rule, key_var: &str) -> bool {
    rule.body.iter().any(|lit| match lit {
        Literal::Pos(a) => a.variables().contains(&key_var),
        _ => false,
    })
}

/// Build the head tuple from complete bindings.
fn head_tuple(rule: &Rule, bindings: &Bindings) -> Result<(Key, Row)> {
    let head = &rule.head;
    let mut values = Vec::with_capacity(head.terms.len());
    for t in &head.terms {
        match t {
            Term::Var(v) => match bindings.get(v) {
                Some(val) => values.push(val.clone()),
                None => {
                    return Err(DatalogError::UnsafeRule {
                        rule: rule.to_string(),
                    })
                }
            },
            Term::Const(c) => values.push(c.clone()),
            Term::Anon => {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.to_string(),
                })
            }
        }
    }
    let key = value_key(&head.relation, &values[0])?;
    Ok((key, values[1..].to_vec()))
}

/// Try to extend `bindings` so the atom matches `(key, row)`.
fn unify_row(atom: &Atom, key: Key, row: &[Value], bindings: &Bindings) -> Option<Bindings> {
    let mut out = bindings.clone();
    let kv = key_value(key);
    if !unify_term(&atom.terms[0], &kv, &mut out) {
        return None;
    }
    for (t, v) in atom.terms[1..].iter().zip(row.iter()) {
        if !unify_term(t, v, &mut out) {
            return None;
        }
    }
    Some(out)
}

fn unify_term(term: &Term, value: &Value, bindings: &mut Bindings) -> bool {
    match term {
        Term::Anon => true,
        Term::Const(c) => c == value,
        Term::Var(v) => match bindings.get(v) {
            Some(bound) => bound == value,
            None => {
                bindings.insert(v.clone(), value.clone());
                true
            }
        },
    }
}

/// The value a term resolves to under the bindings, if fully resolved.
fn resolved_term(term: &Term, bindings: &Bindings) -> Option<Value> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => bindings.get(v).cloned(),
        Term::Anon => None,
    }
}

fn check_arity(atom: &Atom, relation_arity: usize) -> Result<()> {
    if atom.terms.len() != relation_arity {
        return Err(DatalogError::ArityMismatch {
            relation: atom.relation.clone(),
            atom_arity: atom.terms.len(),
            relation_arity,
        });
    }
    Ok(())
}

/// Compute a safe evaluation order for the body literals.
///
/// Positive atoms are always schedulable; negations, conditions and
/// assignments wait until their variables are bound. Among schedulable
/// positive atoms, those with a resolvable key term are preferred (index
/// lookup beats scan).
fn schedule(rule: &Rule, skip: Option<usize>, seed: &Bindings) -> Result<Vec<usize>> {
    let mut bound: BTreeSet<String> = seed.keys().cloned().collect();
    let mut remaining: Vec<usize> = (0..rule.body.len())
        .filter(|i| Some(*i) != skip)
        .collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // 1. Any non-atom literal whose inputs are bound, or negation with
        //    all vars bound — cheap filters first.
        let ready_filter = remaining.iter().position(|&i| match &rule.body[i] {
            Literal::Neg(a) => a
                .variables()
                .iter()
                .all(|v| bound.contains(&v.to_string())),
            Literal::Cond(e) => e.referenced_columns().iter().all(|c| bound.contains(c)),
            Literal::Assign { expr, .. } => expr
                .referenced_columns()
                .iter()
                .all(|c| bound.contains(c)),
            Literal::Skolem { args, .. } => args
                .iter()
                .filter_map(|t| t.as_var())
                .all(|v| bound.contains(&v.to_string())),
            Literal::Pos(_) => false,
        });
        if let Some(pos) = ready_filter {
            let i = remaining.remove(pos);
            for v in rule.body[i].variables() {
                bound.insert(v);
            }
            order.push(i);
            continue;
        }
        // 2. A positive atom, preferring one with a bound key term.
        let keyed = remaining.iter().position(|&i| match &rule.body[i] {
            Literal::Pos(a) => match a.key_term() {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
                Term::Anon => false,
            },
            _ => false,
        });
        let any_pos = keyed.or_else(|| {
            remaining
                .iter()
                .position(|&i| rule.body[i].is_positive_atom())
        });
        match any_pos {
            Some(pos) => {
                let i = remaining.remove(pos);
                for v in rule.body[i].variables() {
                    bound.insert(v);
                }
                order.push(i);
            }
            None => {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.to_string(),
                })
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::Expr;

    fn ids() -> RefCell<SkolemRegistry> {
        RefCell::new(SkolemRegistry::new())
    }

    fn edb_task() -> MapEdb {
        // The paper's TasKy table: Task(author, task, prio).
        let mut t = Relation::with_columns("T", ["author", "task", "prio"]);
        t.insert(Key(1), vec!["Ann".into(), "Organize party".into(), 3.into()])
            .unwrap();
        t.insert(Key(2), vec!["Ben".into(), "Learn for exam".into(), 2.into()])
            .unwrap();
        t.insert(Key(3), vec!["Ann".into(), "Write paper".into(), 1.into()])
            .unwrap();
        t.insert(Key(4), vec!["Ben".into(), "Clean room".into(), 1.into()])
            .unwrap();
        let mut edb = MapEdb::new();
        edb.add(t);
        edb
    }

    fn split_rules() -> RuleSet {
        // Simplified SPLIT (clean state): R = σ_{prio=1}(T), S = σ_{prio>=2}(T),
        // T' = rest (empty here since conditions cover everything).
        let vars = ["p", "author", "task", "prio"];
        RuleSet::new(vec![
            Rule::new(
                Atom::vars("R", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(Expr::col("prio").eq(Expr::lit(1))),
                ],
            ),
            Rule::new(
                Atom::vars("S", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(Expr::col("prio").ge(Expr::lit(2))),
                ],
            ),
            Rule::new(
                Atom::vars("T2", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(
                        Expr::col("prio")
                            .eq(Expr::lit(1))
                            .negate()
                            .and(Expr::col("prio").ge(Expr::lit(2)).negate()),
                    ),
                ],
            ),
        ])
    }

    #[test]
    fn split_selects_partitions() {
        let edb = edb_task();
        let sk = ids();
        let out = evaluate(&split_rules(), &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["R"].len(), 2);
        assert_eq!(out["S"].len(), 2);
        assert_eq!(out["T2"].len(), 0);
        assert!(out["R"].contains_key(Key(3)));
        assert!(out["R"].contains_key(Key(4)));
    }

    #[test]
    fn union_with_negation_reconstructs_source() {
        // γsrc of SPLIT (rules 18-20 shape): T ← R; T ← S, ¬R(p,_); T ← T'.
        let vars = ["p", "a"];
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("T", &vars),
                vec![Literal::Pos(Atom::vars("R", &vars))],
            ),
            Rule::new(
                Atom::vars("T", &vars),
                vec![
                    Literal::Pos(Atom::vars("S", &vars)),
                    Literal::Neg(Atom::new("R", vec![Term::var("p"), Term::Anon])),
                ],
            ),
            Rule::new(
                Atom::vars("T", &vars),
                vec![Literal::Pos(Atom::vars("Tp", &vars))],
            ),
        ]);
        let mut r = Relation::with_columns("R", ["a"]);
        r.insert(Key(1), vec![Value::Int(10)]).unwrap();
        r.insert(Key(2), vec![Value::Int(20)]).unwrap();
        let mut s = Relation::with_columns("S", ["a"]);
        // Twin of key 1 (same value) and an S-only tuple.
        s.insert(Key(1), vec![Value::Int(10)]).unwrap();
        s.insert(Key(5), vec![Value::Int(50)]).unwrap();
        let mut tp = Relation::with_columns("Tp", ["a"]);
        tp.insert(Key(9), vec![Value::Int(90)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(r).add(s).add(tp);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        let t = &out["T"];
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(Key(1)), Some(&vec![Value::Int(10)]));
        assert_eq!(t.get(Key(5)), Some(&vec![Value::Int(50)]));
        assert_eq!(t.get(Key(9)), Some(&vec![Value::Int(90)]));
    }

    #[test]
    fn key_conflict_detected() {
        // Two rules derive different payloads for the same key.
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("H", &["p", "a"]),
                vec![Literal::Pos(Atom::vars("X", &["p", "a"]))],
            ),
            Rule::new(
                Atom::vars("H", &["p", "b"]),
                vec![Literal::Pos(Atom::vars("Y", &["p", "b"]))],
            ),
        ]);
        let mut x = Relation::with_columns("X", ["a"]);
        x.insert(Key(1), vec![Value::Int(1)]).unwrap();
        let mut y = Relation::with_columns("Y", ["b"]);
        y.insert(Key(1), vec![Value::Int(2)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(x).add(y);
        let sk = ids();
        let err = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, DatalogError::KeyConflict { .. }));
    }

    #[test]
    fn assignment_computes_new_column() {
        // ADD COLUMN shape: R'(p, a, b) ← R(p, a), b = a * 2.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("Rp", &["p", "a", "b"]),
            vec![
                Literal::Pos(Atom::vars("R", &["p", "a"])),
                Literal::Assign {
                    var: "b".into(),
                    expr: inverda_storage::Expr::Binary(
                        Box::new(Expr::col("a")),
                        inverda_storage::BinaryOp::Mul,
                        Box::new(Expr::lit(2)),
                    ),
                },
            ],
        )]);
        let mut r = Relation::with_columns("R", ["a"]);
        r.insert(Key(1), vec![Value::Int(21)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(r);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["Rp"].get(Key(1)), Some(&vec![Value::Int(21), Value::Int(42)]));
    }

    #[test]
    fn skolem_assignment_generates_stable_ids() {
        // FK-decompose shape: Author(t, name) ← T(p, name), t = id(name).
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("Author", &["t", "name"]),
            vec![
                Literal::Pos(Atom::vars("T", &["p", "name"])),
                Literal::Skolem {
                    var: "t".into(),
                    generator: "id_Author".into(),
                    args: vec![Term::var("name")],
                },
            ],
        )]);
        let mut t = Relation::with_columns("T", ["name"]);
        t.insert(Key(1), vec!["Ann".into()]).unwrap();
        t.insert(Key(2), vec!["Ben".into()]).unwrap();
        t.insert(Key(3), vec!["Ann".into()]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(t);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        // Two distinct authors -> two rows (duplicate "Ann" collapses by id).
        assert_eq!(out["Author"].len(), 2);
    }

    #[test]
    fn staged_heads_visible_to_later_rules() {
        // Second rule reads the head of the first.
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("A", &["p", "x"]),
                vec![Literal::Pos(Atom::vars("In", &["p", "x"]))],
            ),
            Rule::new(
                Atom::vars("B", &["p", "x"]),
                vec![
                    Literal::Pos(Atom::vars("A", &["p", "x"])),
                    Literal::Cond(Expr::col("x").gt(Expr::lit(1))),
                ],
            ),
        ]);
        let mut input = Relation::with_columns("In", ["x"]);
        input.insert(Key(1), vec![Value::Int(1)]).unwrap();
        input.insert(Key(2), vec![Value::Int(5)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(input);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["B"].len(), 1);
        assert!(out["B"].contains_key(Key(2)));
    }

    #[test]
    fn missing_relation_is_reported() {
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p"]),
            vec![Literal::Pos(Atom::vars("Ghost", &["p"]))],
        )]);
        let edb = MapEdb::new();
        let sk = ids();
        let err = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, DatalogError::UnboundRelation { .. }));
    }

    #[test]
    fn head_row_for_key_matches_full_eval() {
        let edb = edb_task();
        let rules = split_rules();
        let sk = ids();
        let full = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        let sk2 = ids();
        let mut ev = Evaluator::new(&edb, &sk2);
        for key in [Key(1), Key(2), Key(3), Key(4), Key(99)] {
            let seeded = ev.head_row_for_key(&rules, "R", key).unwrap();
            assert_eq!(seeded.as_ref(), full["R"].get(key), "key {key:?}");
        }
    }

    #[test]
    fn null_key_binding_matches_nothing() {
        // Joining through an ω (NULL) foreign key finds no partner rather
        // than erroring (FK-decompose Rule 147 with a NULL fk).
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "t"]),
            vec![
                Literal::Pos(Atom::vars("S", &["p", "t"])),
                Literal::Pos(Atom::new(
                    "T",
                    vec![Term::var("t"), Term::Anon],
                )),
            ],
        )]);
        let mut s = Relation::with_columns("S", ["t"]);
        s.insert(Key(1), vec![Value::Null]).unwrap();
        let mut t = Relation::with_columns("T", ["b"]);
        t.insert(Key(7), vec![Value::Int(1)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(s).add(t);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert!(out["H"].is_empty());
    }

    #[test]
    fn schedule_rejects_unsafe_rules() {
        // Negation over a variable never bound positively.
        let rule = Rule::new(
            Atom::vars("H", &["p"]),
            vec![Literal::Neg(Atom::vars("X", &["p"]))],
        );
        assert!(schedule(&rule, None, &Bindings::new()).is_err());
    }

    #[test]
    fn duplicate_variable_in_atom_requires_equal_values() {
        // H(p, a) ← X(p, a, a): both payload cells must be equal.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "a"]),
            vec![Literal::Pos(Atom::vars("X", &["p", "a", "a"]))],
        )]);
        let mut x = Relation::with_columns("X", ["c1", "c2"]);
        x.insert(Key(1), vec![Value::Int(7), Value::Int(7)]).unwrap();
        x.insert(Key(2), vec![Value::Int(1), Value::Int(2)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(x);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["H"].len(), 1);
        assert!(out["H"].contains_key(Key(1)));
    }
}
