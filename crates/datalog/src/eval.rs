//! Compiled, staged, non-recursive rule evaluation — the hot path of every
//! read on a virtual schema version, every write-propagation hop, and every
//! migration.
//!
//! Evaluation follows the paper's reading of a rule set: rules are processed
//! in order; each rule's body is matched against the EDB *plus* all heads
//! derived by earlier rules (which realizes the `old`/`new` staging of the
//! id-generating SMOs). Derived heads shadow EDB relations of the same name.
//!
//! Unlike the naive reference interpreter ([`crate::naive`]), this engine
//! **compiles** each rule once before evaluating it:
//!
//! * rule variables are interned into numeric **slots**, so a set of bindings
//!   is a flat [`Frame`] (`Vec<Option<Value>>`) mutated in place with a
//!   backtracking trail instead of a `BTreeMap` cloned at every join depth;
//! * safe evaluation orders (base, key-seeded, and one per probe literal for
//!   the delta engine) are **scheduled at compile time** over slot bitsets;
//! * positive and negated atoms whose key term is unbound probe an on-demand
//!   **secondary join index** ([`ColumnIndex`]) on the first bound payload
//!   column instead of scanning the relation — O(1) per probe after a single
//!   O(n) build, cached per evaluation (and across statements by the
//!   `VersionedEdb` in `inverda-core`);
//! * the per-(head, key) memo is a two-level map keyed by `&str` then `Key`,
//!   so lookups allocate nothing.
//!
//! The compiled engine explores joins in **exactly** the same order as the
//! naive interpreter (same scheduling preferences and tie-breaks, and index
//! probes enumerate matches in key order like a scan would), so the two
//! engines derive identical relations *and* mint identical skolem ids. The
//! differential property tests in `tests/compiled_vs_naive.rs` hold them to
//! that.
//!
//! Two entry points:
//!
//! * [`evaluate`] / [`evaluate_compiled`] — full bottom-up evaluation;
//! * [`Evaluator::head_row_for_key`] — key-seeded evaluation used by the
//!   delta engine and by lazy view expansion: computes the single row a head
//!   relation derives for one key, pushing the key binding into body atoms
//!   (the engine-side analogue of a DBMS optimizer pushing a key predicate
//!   into a generated view).
//!
//! Full evaluation additionally **fans out** on the shared pool
//! ([`crate::parallel`]) when the configured width exceeds 1, over a view
//! that passed [`EdbView::prepare_parallel`]:
//!
//! * [`CompiledRuleSet::parallel_safe`] sets (non-staged, mint-free) run
//!   independent rules in parallel and split each rule's depth-0 scan into
//!   key-range chunks, with a sequential epilogue merging fragments in rule
//!   order then chunk order;
//! * staged and/or id-minting sets evaluate rules strictly in order but
//!   still chunk each rule's depth-0 scan; skolem generators hand out
//!   **reservation placeholders** from per-worker arenas, which the merge
//!   renumbers in rule-then-chunk order and a sequential commit epilogue
//!   exchanges for real ids in exactly the order a width-1 run would have
//!   minted them (see [`crate::skolem`] and DESIGN.md "Deterministic
//!   minting & reservation commit").
//!
//! Either way, worker threads perform no observable side effects, so
//! results — including skolem id assignment and error precedence — are
//! byte-identical at any width (DESIGN.md "Parallel evaluation &
//! deterministic merge").

use crate::ast::{Literal, Rule, RuleSet, Term};
use crate::error::DatalogError;
use crate::skolem::{self, PlaceholderPatch, ReservationArena, SkolemRegistry};
use crate::Result;
use inverda_storage::{
    ColumnIndex, IndexCache, Key, Relation, Row, RowContext, TableSchema, Value,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// EDB access
// ---------------------------------------------------------------------------

/// Read access to the extensional database during evaluation.
///
/// Implementations may serve relations lazily — the InVerDa core resolves
/// *virtual* table versions through SMO mappings on demand, so a key lookup
/// on a virtual relation need not materialize the whole relation. Relations
/// are returned as `Arc` so repeated `full` calls stay cheap.
///
/// Views are `Sync`: the parallel evaluation paths share one view across
/// worker threads, so interior caches must be lock-guarded (they all go
/// through the mutex-based [`IndexCache`] / lock-guarded maps). Laziness is
/// the one thing that is *not* thread-transparent — a lazy resolution can
/// mint skolem ids — which is what [`EdbView::prepare_parallel`] gates.
pub trait EdbView: Sync {
    /// Full state of the relation.
    fn full(&self, relation: &str) -> Result<Arc<Relation>>;

    /// Make the view safe to share with parallel evaluation workers for
    /// the given relations: materialize any lazy state whose resolution has
    /// side effects (id minting) **now, sequentially**, so worker threads
    /// only ever perform pure reads.
    ///
    /// Returns `Ok(false)` if that cannot be guaranteed — the caller must
    /// then stay on the sequential path (which is always correct).
    /// Implementations must *never* error for conditions the sequential
    /// path would handle differently: report such relations via `Ok(false)`
    /// and let sequential evaluation produce the canonical outcome. The
    /// default implementation declares the view pure (true for plain
    /// map-backed views such as [`MapEdb`]).
    fn prepare_parallel(&self, relations: &[&str]) -> Result<bool> {
        let _ = relations;
        Ok(true)
    }

    /// The row stored under `key`, if any.
    fn by_key(&self, relation: &str, key: Key) -> Result<Option<Row>> {
        Ok(self.full(relation)?.get(key).cloned())
    }

    /// Whether the relation is served by this view.
    fn contains(&self, relation: &str) -> bool;

    /// A secondary join index over one payload column of the relation's
    /// current state. The default builds it on the spot; caching
    /// implementations (`MapEdb` here, `VersionedEdb` in `inverda-core`)
    /// build each `(relation, column)` index once per snapshot.
    fn index(&self, relation: &str, column: usize) -> Result<Arc<ColumnIndex>> {
        Ok(Arc::new(self.full(relation)?.build_column_index(column)))
    }

    /// The rows whose payload column `column` equals `value` (the same
    /// numeric-folding [`Value`] equality an index probe or a scan uses),
    /// in ascending key order. A `column` beyond the relation's arity
    /// matches nothing.
    ///
    /// This is the depth-0 candidate fetch of **column-seeded evaluation**
    /// ([`Evaluator::head_rows_by_column`]). The default materializes the
    /// relation and probes its index; a lazy view (`VersionedEdb` in
    /// `inverda-core`) overrides it to push the binding through the
    /// relation's defining mapping instead — which is what lets an equality
    /// predicate recurse down a whole mapping chain touching only matching
    /// rows.
    fn by_column(&self, relation: &str, column: usize, value: &Value) -> Result<Vec<(Key, Row)>> {
        let rel = self.full(relation)?;
        if column >= rel.schema().arity() {
            return Ok(Vec::new());
        }
        Ok(self.index(relation, column)?.rows_for(&rel, value))
    }
}

/// A source of memoized skolem identifiers usable behind a shared reference
/// (rule evaluation happens on read paths too, which may mint fresh ids for
/// new payloads).
///
/// Sources are `Sync`: evaluation fans out onto worker threads which must
/// at least be able to [`peek`](IdSource::peek) already-assigned ids.
/// Reservation-backed sources ([`ReservingIds`]) defer actual minting to a
/// sequential commit epilogue, so `generate` from a worker never touches
/// shared minting state.
pub trait IdSource: Sync {
    /// The id for `(generator, args)`, minted (or reserved) on first use.
    fn generate(&self, generator: &str, args: &[Value]) -> u64;

    /// The id already assigned — or reserved — for `(generator, args)`,
    /// with no minting side effect.
    fn peek(&self, generator: &str, args: &[Value]) -> Option<u64>;
}

impl IdSource for Mutex<SkolemRegistry> {
    fn generate(&self, generator: &str, args: &[Value]) -> u64 {
        self.lock().get_or_create(generator, args)
    }

    fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.lock().peek(generator, args)
    }
}

/// The [`IdSource`] handed to parallel workers of **mint-free** fan-outs
/// (delta probes and re-derivations, pure hop propagations). Those paths
/// are gated to rule sets that cannot mint
/// ([`CompiledRuleSet::parallel_safe`]), so any call is an engine bug.
/// Minting fan-outs use [`ReservingIds`] instead. Use the shared
/// [`NO_MINT_IDS`] instance.
pub struct NoMintIds;

/// The canonical [`NoMintIds`] instance.
pub static NO_MINT_IDS: NoMintIds = NoMintIds;

impl IdSource for NoMintIds {
    fn generate(&self, generator: &str, _args: &[Value]) -> u64 {
        unreachable!("parallel paths are gated to mint-free rule sets (generator {generator})")
    }

    fn peek(&self, _generator: &str, _args: &[Value]) -> Option<u64> {
        None
    }
}

/// The reserve half of the engine's two-phase minting (see
/// [`crate::skolem`]): `generate` first peeks the parent source (the
/// durable registry, or an enclosing reservation scope) and only then
/// reserves a scope-local placeholder. `commit` / [`absorb`] replay the
/// reservations against the parent in reservation order — the sequential
/// epilogue that makes id assignment independent of how evaluation work was
/// split across threads.
///
/// [`absorb`]: ReservingIds::absorb
pub struct ReservingIds<'a> {
    parent: &'a dyn IdSource,
    arena: Mutex<ReservationArena>,
}

impl<'a> ReservingIds<'a> {
    /// A fresh reservation scope over `parent`, drawing placeholders from
    /// `scope_base` (one of [`skolem::SCOPE_CHUNK`], [`skolem::SCOPE_EVAL`],
    /// [`skolem::SCOPE_HOP`] — nested scopes must use distinct bases so a
    /// placeholder peeked from the parent is never mistaken for a local
    /// one).
    pub fn new(parent: &'a dyn IdSource, scope_base: u64) -> Self {
        ReservingIds {
            parent,
            arena: Mutex::new(ReservationArena::new(scope_base)),
        }
    }

    /// Consume the scope, returning the raw arena (parallel chunk workers
    /// ship their arena back to the merge epilogue this way).
    pub fn into_arena(self) -> ReservationArena {
        self.arena.into_inner()
    }

    /// Fold a worker-local arena into this scope **in the worker's
    /// reservation order**, translating placeholder references inside
    /// argument tuples through the assignments made so far. Returns the
    /// patch mapping the local placeholders to this scope's values (which
    /// may themselves be placeholders of this scope, or committed ids the
    /// parent already knew). This *is* an arena commit — just one whose
    /// "mint" reserves at the enclosing scope instead of minting for real.
    pub fn absorb(&self, local: ReservationArena) -> PlaceholderPatch {
        local.commit(|generator, args| self.generate(generator, args))
    }

    /// Commit every reservation against the parent source in reservation
    /// order, returning the patch mapping this scope's placeholders to the
    /// final ids. Argument tuples are resolved through the already-committed
    /// prefix first, so the durable memo records real ids only.
    pub fn commit(self) -> PlaceholderPatch {
        let parent = self.parent;
        self.arena
            .into_inner()
            .commit(|generator, args| parent.generate(generator, args))
    }
}

impl IdSource for ReservingIds<'_> {
    fn generate(&self, generator: &str, args: &[Value]) -> u64 {
        if let Some(id) = self.parent.peek(generator, args) {
            return id;
        }
        self.arena.lock().reserve(generator, args)
    }

    fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.parent
            .peek(generator, args)
            .or_else(|| self.arena.lock().peek(generator, args))
    }
}

/// Rewrite a committed patch through a derived relation: placeholder keys
/// and payload values become their assigned ids. Key collisions that only
/// materialize under final ids (a minted id equal to an existing key with a
/// different payload) surface here as the same [`DatalogError::KeyConflict`]
/// an eager-minting emit would have raised — both engines share this
/// function, so they fail identically.
pub fn patch_relation(rel: Relation, patch: &PlaceholderPatch) -> Result<Relation> {
    if patch.is_empty() {
        return Ok(rel);
    }
    // Most heads of a minting evaluation carry no placeholder at all (only
    // the generator-keyed ones do) — detect that with a scan of integer
    // comparisons and hand the relation back untouched instead of
    // deep-copying every row.
    let untouched = rel.iter().all(|(key, row)| {
        !patch.maps_id(key.0)
            && row
                .iter()
                .all(|v| !matches!(v, Value::Int(i) if *i >= 0 && patch.maps_id(*i as u64)))
    });
    if untouched {
        return Ok(rel);
    }
    let mut out = Relation::new(rel.schema().clone());
    for (key, row) in rel.iter() {
        let key = Key(patch.resolve_id(key.0));
        let mut row = row.clone();
        patch.resolve_row(&mut row);
        match out.get(key) {
            Some(existing) if *existing == row => {}
            Some(_) => {
                return Err(DatalogError::KeyConflict {
                    relation: rel.name().to_string(),
                    key: key.0,
                })
            }
            None => out.upsert(key, row).map_err(DatalogError::from)?,
        }
    }
    Ok(out)
}

/// A plain map-backed EDB with a per-snapshot join-index cache.
#[derive(Debug, Default)]
pub struct MapEdb {
    rels: BTreeMap<String, Arc<Relation>>,
    indexes: IndexCache,
}

impl Clone for MapEdb {
    fn clone(&self) -> Self {
        MapEdb {
            rels: self.rels.clone(),
            indexes: IndexCache::new(),
        }
    }
}

impl MapEdb {
    /// Empty EDB.
    pub fn new() -> Self {
        MapEdb::default()
    }

    /// Insert a relation under its own name.
    pub fn add(&mut self, rel: Relation) -> &mut Self {
        self.indexes.invalidate(rel.name());
        self.rels.insert(rel.name().to_string(), Arc::new(rel));
        self
    }

    /// Insert a shared relation under the given name.
    pub fn add_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) -> &mut Self {
        let name = name.into();
        self.indexes.invalidate(&name);
        self.rels.insert(name, rel);
        self
    }
}

impl EdbView for MapEdb {
    fn full(&self, relation: &str) -> Result<Arc<Relation>> {
        self.rels
            .get(relation)
            .cloned()
            .ok_or_else(|| DatalogError::UnboundRelation {
                relation: relation.to_string(),
            })
    }

    fn by_key(&self, relation: &str, key: Key) -> Result<Option<Row>> {
        match self.rels.get(relation) {
            Some(rel) => Ok(rel.get(key).cloned()),
            None => Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            }),
        }
    }

    fn contains(&self, relation: &str) -> bool {
        self.rels.contains_key(relation)
    }

    fn index(&self, relation: &str, column: usize) -> Result<Arc<ColumnIndex>> {
        self.indexes.get_or_build(relation, column, || {
            Ok(self.full(relation)?.build_column_index(column))
        })
    }
}

/// Convert a key to its binding value.
pub fn key_value(key: Key) -> Value {
    Value::Int(key.0 as i64)
}

/// Convert a binding value back to a key.
pub fn value_key(relation: &str, v: &Value) -> Result<Key> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(Key(*i as u64)),
        other => Err(DatalogError::BadKey {
            relation: relation.to_string(),
            value: other.to_string(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Compiled rule representation
// ---------------------------------------------------------------------------

/// A binding frame: one `Option<Value>` per interned rule variable.
pub type Frame = Vec<Option<Value>>;

/// A compiled term: variables are slot numbers into the rule's [`Frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum CTerm {
    /// A variable, as a frame slot.
    Var(usize),
    /// A constant value.
    Const(Value),
    /// The anonymous variable `_`.
    Anon,
}

impl CTerm {
    /// The value this term resolves to under `frame`, if fully resolved.
    pub(crate) fn resolved<'a>(&'a self, frame: &'a [Option<Value>]) -> Option<&'a Value> {
        match self {
            CTerm::Const(c) => Some(c),
            CTerm::Var(s) => frame[*s].as_ref(),
            CTerm::Anon => None,
        }
    }
}

/// A compiled atom `q(t0, t1, …, tn)`; `t0` is the key position.
#[derive(Debug, Clone, PartialEq)]
pub struct CAtom {
    /// Relation name.
    pub relation: String,
    /// Terms; index 0 is the key position.
    pub terms: Vec<CTerm>,
}

impl CAtom {
    /// The first payload column whose term resolves under `frame`, as
    /// `(column, value)` — the probe column for an index lookup.
    fn bound_payload<'a>(&'a self, frame: &'a Frame) -> Option<(usize, &'a Value)> {
        self.terms[1..]
            .iter()
            .enumerate()
            .find_map(|(col, t)| t.resolved(frame).map(|v| (col, v)))
    }
}

/// A compiled body literal. Condition and assignment expressions keep their
/// column-name ASTs but carry a precomputed name→slot table so evaluation
/// does no string building.
#[derive(Debug, Clone)]
pub(crate) enum CLit {
    Pos(CAtom),
    Neg(CAtom),
    Cond {
        expr: inverda_storage::Expr,
        cols: Vec<(String, usize)>,
    },
    Assign {
        slot: usize,
        expr: inverda_storage::Expr,
        cols: Vec<(String, usize)>,
    },
    Skolem {
        slot: usize,
        generator: String,
        args: Vec<CTerm>,
    },
}

/// One rule, compiled: slot-interned terms plus precomputed safe evaluation
/// orders for every way the engine enters the rule.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Head atom (first term is the derived key).
    pub head: CAtom,
    pub(crate) body: Vec<CLit>,
    /// Number of interned variables (= frame width).
    pub n_vars: usize,
    /// Slot → variable name (diagnostics).
    pub var_names: Vec<String>,
    /// Evaluation order with nothing pre-bound.
    pub(crate) base_order: Vec<usize>,
    /// Evaluation order with the head key variable pre-bound (key-seeded
    /// evaluation); `None` when the head key is not a pushable variable.
    keyed_order: Option<Vec<usize>>,
    /// Per body literal: evaluation order with that literal skipped and its
    /// variables pre-bound (delta-engine probing). `None` for non-atoms.
    probe_orders: Vec<Option<Vec<usize>>>,
    /// Slot of the head key variable, if it is a variable.
    pub head_key_slot: Option<usize>,
    /// Whether the head key variable occurs in some positive body atom, so
    /// seeding it restricts evaluation.
    pub seedable: bool,
    /// Display form of the source rule (for errors).
    pub(crate) display: String,
}

/// A rule set compiled for evaluation. Built once per rule set via
/// [`CompiledRuleSet::compile`] and reused across statements (the engine
/// caches compiled sets per SMO and invalidates on catalog changes).
#[derive(Debug, Clone)]
pub struct CompiledRuleSet {
    /// Compiled rules, in evaluation order.
    pub rules: Vec<CompiledRule>,
    /// Head name → indices of rules deriving it.
    head_index: BTreeMap<String, Vec<usize>>,
    /// Whether some rule consumes a head derived by the set itself
    /// (`old`/`new` staging of the id-generating SMOs).
    staged: bool,
    /// The batch (vectorized) execution plan, compiled once here so every
    /// cached `Arc<CompiledRuleSet>` (the core crate's `CompiledStore`)
    /// carries its plan for free. `None` for staged/minting sets and sets
    /// with no batchable rule — they stay on the frame machine.
    batch_plan: Option<crate::batch::BatchPlan>,
}

impl CompiledRuleSet {
    /// Compile a rule set. Fails with [`DatalogError::UnsafeRule`] if some
    /// rule's body cannot be scheduled (same error the naive interpreter
    /// reports at evaluation time).
    pub fn compile(rules: &RuleSet) -> Result<CompiledRuleSet> {
        let compiled: Vec<CompiledRule> = rules
            .rules
            .iter()
            .map(compile_rule)
            .collect::<Result<_>>()?;
        let mut head_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, rule) in compiled.iter().enumerate() {
            head_index
                .entry(rule.head.relation.clone())
                .or_default()
                .push(i);
        }
        let staged = compiled.iter().any(|r| {
            r.body.iter().any(|lit| match lit {
                CLit::Pos(a) | CLit::Neg(a) => head_index.contains_key(&a.relation),
                _ => false,
            })
        });
        // Staged sets need strict rule ordering with heads shadowing the
        // EDB, and minting sets need the frame machine's reservation
        // scopes — only parallel-safe sets get a batch plan.
        let mints = compiled
            .iter()
            .any(|r| r.body.iter().any(|l| matches!(l, CLit::Skolem { .. })));
        let batch_plan = if staged || mints {
            None
        } else {
            crate::batch::compile_plan(&compiled)
        };
        Ok(CompiledRuleSet {
            rules: compiled,
            head_index,
            staged,
            batch_plan,
        })
    }

    /// The precompiled batch execution plan, if the set has one (see
    /// [`crate::batch`]).
    pub(crate) fn batch_plan(&self) -> Option<&crate::batch::BatchPlan> {
        self.batch_plan.as_ref()
    }

    /// Whether the set consumes its own heads (`old`/`new` staging).
    pub fn staged(&self) -> bool {
        self.staged
    }

    /// Whether any rule binds a variable through a skolem generator —
    /// evaluating such a set can mint fresh ids, i.e. it has side effects
    /// beyond its derived heads.
    pub fn mints_ids(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(|lit| matches!(lit, CLit::Skolem { .. })))
    }

    /// Whether the set is eligible for the **independent-rule** fan-out and
    /// the other fully unordered parallel paths (delta probes, pure hop
    /// propagations): rules must be **independent** (no rule consumes a head
    /// of the set — the staged `old`/`new` SMOs evaluate strictly in rule
    /// order) and **pure** (no skolem generators). Staged and minting sets
    /// are *also* evaluated in parallel, but through the ordered per-rule
    /// fan-out with reservation arenas (see [`evaluate_compiled`]), which
    /// preserves staging and the deterministic minting order.
    pub fn parallel_safe(&self) -> bool {
        !self.staged && !self.mints_ids()
    }

    /// Names of every **external** relation the rule bodies read, in the
    /// order the scheduled sequential evaluation would first touch them
    /// (rule order, then scheduled-literal order). Heads of the set itself
    /// (the staged `old`/`new` intermediates) are derived in place and
    /// excluded. This is what a view must prepare before the set is
    /// evaluated on worker threads.
    pub fn body_relations(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for rule in &self.rules {
            for &lit in &rule.base_order {
                if let CLit::Pos(a) | CLit::Neg(a) = &rule.body[lit] {
                    if self.head_index.contains_key(&a.relation) {
                        continue;
                    }
                    if seen.insert(a.relation.as_str()) {
                        out.push(a.relation.as_str());
                    }
                }
            }
        }
        out
    }

    /// Indices of the rules deriving `head`.
    pub fn rules_for(&self, head: &str) -> &[usize] {
        self.head_index.get(head).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Relation names of positive/negative atoms of one rule's body, with
    /// literal indices — the probe points of the delta engine.
    pub fn body_atoms(&self, rule: usize) -> impl Iterator<Item = (usize, &CAtom, bool)> {
        self.rules[rule]
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, lit)| match lit {
                CLit::Pos(a) => Some((i, a, true)),
                CLit::Neg(a) => Some((i, a, false)),
                _ => None,
            })
    }
}

/// Slot bitset used by compile-time scheduling.
#[derive(Clone)]
struct SlotSet(Vec<u64>);

impl SlotSet {
    fn new(n: usize) -> SlotSet {
        SlotSet(vec![0; n.div_ceil(64)])
    }

    fn insert(&mut self, slot: usize) {
        self.0[slot / 64] |= 1 << (slot % 64);
    }

    fn contains(&self, slot: usize) -> bool {
        self.0[slot / 64] & (1 << (slot % 64)) != 0
    }

    fn contains_all(&self, slots: &[usize]) -> bool {
        slots.iter().all(|s| self.contains(*s))
    }
}

/// Key-term shape of a positive atom, for scheduling.
enum KeyKind {
    Const,
    Var(usize),
    Anon,
}

/// Scheduling metadata for one body literal.
struct LitMeta {
    /// Slots that must be bound before the literal is schedulable as a
    /// filter (empty for positive atoms, which are always schedulable).
    requires: Vec<usize>,
    /// Slots bound once the literal is scheduled.
    binds: Vec<usize>,
    /// `Some` for positive atoms.
    pos_key: Option<KeyKind>,
    /// Whether the literal is a filter (anything but a positive atom).
    filter: bool,
}

fn compile_rule(rule: &Rule) -> Result<CompiledRule> {
    // Intern variables (first-occurrence order over head then body).
    let var_names = rule.variables();
    let n_vars = var_names.len();
    let slot_of: HashMap<&str, usize> = var_names
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let cterm = |t: &Term| match t {
        Term::Var(v) => CTerm::Var(slot_of[v.as_str()]),
        Term::Const(c) => CTerm::Const(c.clone()),
        Term::Anon => CTerm::Anon,
    };
    let catom = |a: &crate::ast::Atom| CAtom {
        relation: a.relation.clone(),
        terms: a.terms.iter().map(cterm).collect(),
    };
    let expr_cols = |e: &inverda_storage::Expr| -> Vec<(String, usize)> {
        e.referenced_columns()
            .into_iter()
            .map(|c| {
                let slot = slot_of[c.as_str()];
                (c, slot)
            })
            .collect()
    };

    let mut body = Vec::with_capacity(rule.body.len());
    let mut meta = Vec::with_capacity(rule.body.len());
    for lit in &rule.body {
        let var_slots =
            |vars: &[String]| -> Vec<usize> { vars.iter().map(|v| slot_of[v.as_str()]).collect() };
        match lit {
            Literal::Pos(a) => {
                let atom = catom(a);
                let key = match &atom.terms[0] {
                    CTerm::Const(_) => KeyKind::Const,
                    CTerm::Var(s) => KeyKind::Var(*s),
                    CTerm::Anon => KeyKind::Anon,
                };
                meta.push(LitMeta {
                    requires: Vec::new(),
                    binds: var_slots(&lit.variables()),
                    pos_key: Some(key),
                    filter: false,
                });
                body.push(CLit::Pos(atom));
            }
            Literal::Neg(a) => {
                let slots = var_slots(&lit.variables());
                meta.push(LitMeta {
                    requires: slots.clone(),
                    binds: slots,
                    pos_key: None,
                    filter: true,
                });
                body.push(CLit::Neg(catom(a)));
            }
            Literal::Cond(e) => {
                let cols = expr_cols(e);
                let slots: Vec<usize> = cols.iter().map(|(_, s)| *s).collect();
                meta.push(LitMeta {
                    requires: slots.clone(),
                    binds: slots,
                    pos_key: None,
                    filter: true,
                });
                body.push(CLit::Cond {
                    expr: e.clone(),
                    cols,
                });
            }
            Literal::Assign { var, expr } => {
                let cols = expr_cols(expr);
                let requires: Vec<usize> = cols.iter().map(|(_, s)| *s).collect();
                let mut binds = requires.clone();
                binds.push(slot_of[var.as_str()]);
                meta.push(LitMeta {
                    requires,
                    binds,
                    pos_key: None,
                    filter: true,
                });
                body.push(CLit::Assign {
                    slot: slot_of[var.as_str()],
                    expr: expr.clone(),
                    cols,
                });
            }
            Literal::Skolem {
                var,
                generator,
                args,
            } => {
                let requires: Vec<usize> = args
                    .iter()
                    .filter_map(|t| t.as_var())
                    .map(|v| slot_of[v])
                    .collect();
                let mut binds = requires.clone();
                binds.push(slot_of[var.as_str()]);
                meta.push(LitMeta {
                    requires,
                    binds,
                    pos_key: None,
                    filter: true,
                });
                body.push(CLit::Skolem {
                    slot: slot_of[var.as_str()],
                    generator: generator.clone(),
                    args: args.iter().map(cterm).collect(),
                });
            }
        }
    }

    let display = rule.to_string();
    let empty = SlotSet::new(n_vars);
    let base_order = schedule_slots(&meta, None, &empty, &display)?;

    let head_key_slot = match rule.head.key_term() {
        Term::Var(v) => Some(slot_of[v.as_str()]),
        _ => None,
    };
    let seedable = head_key_slot.is_some()
        && meta.iter().zip(&body).any(|(m, lit)| {
            matches!(lit, CLit::Pos(_)) && m.binds.contains(&head_key_slot.expect("checked"))
        });
    let keyed_order = match head_key_slot {
        Some(slot) => {
            let mut seed = SlotSet::new(n_vars);
            seed.insert(slot);
            schedule_slots(&meta, None, &seed, &display).ok()
        }
        None => None,
    };
    let probe_orders: Vec<Option<Vec<usize>>> = meta
        .iter()
        .enumerate()
        .map(|(i, m)| {
            if !matches!(&body[i], CLit::Pos(_) | CLit::Neg(_)) {
                return None;
            }
            let mut seed = SlotSet::new(n_vars);
            for s in &m.binds {
                seed.insert(*s);
            }
            schedule_slots(&meta, Some(i), &seed, &display).ok()
        })
        .collect();

    Ok(CompiledRule {
        head: catom(&rule.head),
        body,
        n_vars,
        var_names,
        base_order,
        keyed_order,
        probe_orders,
        head_key_slot,
        seedable,
        display,
    })
}

/// Compile-time scheduling over slot bitsets. Mirrors the naive
/// interpreter's `schedule` exactly — same preferences (ready filters first,
/// then positive atoms with a bound key term, then any positive atom) and
/// same first-position tie-breaks — so both engines explore joins in the
/// same order.
fn schedule_slots(
    meta: &[LitMeta],
    skip: Option<usize>,
    seed: &SlotSet,
    display: &str,
) -> Result<Vec<usize>> {
    let mut bound = seed.clone();
    let mut remaining: Vec<usize> = (0..meta.len()).filter(|i| Some(*i) != skip).collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let ready_filter = remaining
            .iter()
            .position(|&i| meta[i].filter && bound.contains_all(&meta[i].requires));
        if let Some(pos) = ready_filter {
            let i = remaining.remove(pos);
            for s in &meta[i].binds {
                bound.insert(*s);
            }
            order.push(i);
            continue;
        }
        let keyed = remaining.iter().position(|&i| match &meta[i].pos_key {
            Some(KeyKind::Const) => true,
            Some(KeyKind::Var(s)) => bound.contains(*s),
            Some(KeyKind::Anon) | None => false,
        });
        let any_pos = keyed.or_else(|| remaining.iter().position(|&i| meta[i].pos_key.is_some()));
        match any_pos {
            Some(pos) => {
                let i = remaining.remove(pos);
                for s in &meta[i].binds {
                    bound.insert(*s);
                }
                order.push(i);
            }
            None => {
                return Err(DatalogError::UnsafeRule {
                    rule: display.to_string(),
                })
            }
        }
    }
    Ok(order)
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Evaluate a rule set bottom-up against an EDB. Compiles the rules first;
/// use [`evaluate_compiled`] to reuse a compiled set across calls.
///
/// Returns the derived relations keyed by head name. `head_columns` supplies
/// column names for derived relations; heads without an entry get synthetic
/// positional names (`c0`, `c1`, …).
pub fn evaluate(
    rules: &RuleSet,
    edb: &dyn EdbView,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<BTreeMap<String, Relation>> {
    evaluate_compiled(&CompiledRuleSet::compile(rules)?, edb, ids, head_columns)
}

/// Evaluate a pre-compiled rule set bottom-up against an EDB.
///
/// When the configured width ([`crate::parallel::threads`]) exceeds 1,
/// evaluation fans out over the shared thread pool and re-assembles the
/// fragments in a deterministic sequential epilogue (rule order, then chunk
/// order), so the derived relations, the tuple insertion order, any
/// key-conflict error, and the skolem registry state are byte-identical to
/// a `threads = 1` run:
///
/// * [`CompiledRuleSet::parallel_safe`] sets (non-staged, mint-free) fan
///   out independent rules *and* chunk each rule's depth-0 scan;
/// * staged and/or id-minting sets evaluate rules strictly in order but
///   still chunk each rule's depth-0 scan, with skolem calls going through
///   a **reserve-then-commit** cycle ([`ReservingIds`]): workers hand out
///   scope-local placeholder ids, the merge epilogue renumbers them in
///   rule-then-chunk order (exactly the sequential reservation order), and
///   a final commit mints real ids in that order and patches them through
///   the derived relations.
pub fn evaluate_compiled(
    crs: &CompiledRuleSet,
    edb: &dyn EdbView,
    ids: &dyn IdSource,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<BTreeMap<String, Relation>> {
    if crs.parallel_safe() {
        // Batch (vectorized) execution first: relational-algebra pipelines
        // over whole chunks, chunk-parallel at width ≥ 2, byte-identical
        // to the frame machine (see `crate::batch`). `None` falls through
        // to the tuple-at-a-time engines.
        if let Some(out) = crate::batch::try_evaluate(crs, edb, head_columns)? {
            return Ok(out);
        }
        if let Some(out) = try_evaluate_parallel(crs, edb, head_columns)? {
            return Ok(out);
        }
        let mut ev = Evaluator::new(edb, ids);
        for rule in &crs.rules {
            ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
            let tuples = ev.rule_head_tuples(rule, &rule.base_order, None)?;
            for (key, row) in tuples {
                ev.emit(&rule.head.relation, key, row)?;
            }
        }
        return Ok(ev.into_derived());
    }
    // Staged and/or minting: evaluate rules strictly in order behind a
    // reservation scope; commit reservations (in reservation order — the
    // same at every width) and patch the final ids through the output.
    let reserving = ReservingIds::new(ids, skolem::SCOPE_EVAL);
    let derived = evaluate_ordered(crs, edb, &reserving, head_columns)?;
    let patch = reserving.commit();
    if patch.is_empty() {
        return Ok(derived);
    }
    derived
        .into_iter()
        .map(|(name, rel)| patch_relation(rel, &patch).map(|rel| (name, rel)))
        .collect()
}

/// Rule-order-preserving evaluation of a staged and/or minting set, with an
/// optional per-rule chunked fan-out of each rule's depth-0 scan. Skolem
/// calls reserve placeholders: directly on `reserving` when a rule runs
/// inline, via a worker-local chunk arena (translated into `reserving` at
/// merge time, in chunk order) when it fans out — either way the scope's
/// reservation order equals the sequential exploration order exactly.
fn evaluate_ordered(
    crs: &CompiledRuleSet,
    edb: &dyn EdbView,
    reserving: &ReservingIds<'_>,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<BTreeMap<String, Relation>> {
    let width = crate::parallel::threads();
    let par = width >= 2 && edb.prepare_parallel(&crs.body_relations())?;
    let mut ev = Evaluator::new(edb, reserving);
    for rule in &crs.rules {
        ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
        // Planning failures (unbound relation, arity mismatch) fall back to
        // the inline join, which raises the canonical sequential error.
        let plan = if par {
            ev.plan_chunk_scan(rule).unwrap_or(None)
        } else {
            None
        };
        let ranges = plan
            .as_ref()
            .map(|(_, _, keys)| crate::parallel::chunk_ranges(keys.len(), width))
            .unwrap_or_default();
        if ranges.len() < 2 {
            let tuples = ev.rule_head_tuples(rule, &rule.base_order, None)?;
            for (key, row) in tuples {
                ev.emit(&rule.head.relation, key, row)?;
            }
            continue;
        }
        let (lit, rel, keys) = plan.expect("ranges imply a plan");
        // Workers share the EDB plus a read-only snapshot of the heads
        // derived so far (staged rules read earlier heads); each gets its
        // own reservation arena so placeholder numbering never depends on
        // scheduling.
        let derived = ev.derived.clone();
        type Fragment = (Vec<(Key, Row)>, ReservationArena);
        let results: Vec<Result<Fragment>> = crate::parallel::map_indexed(ranges.len(), |ci| {
            let chunk_ids = ReservingIds::new(reserving, skolem::SCOPE_CHUNK);
            let wev = Evaluator::with_derived(edb, &chunk_ids, derived.clone());
            let (start, end) = ranges[ci];
            let tuples = wev.chunk_head_tuples(rule, lit, &rel, &keys[start..end])?;
            Ok((tuples, chunk_ids.into_arena()))
        });
        // The workers are done with the snapshot; release it so the merge's
        // emits don't see a second strong reference on the heads (which
        // would force `Arc::make_mut` to deep-copy each one once per rule).
        drop(derived);
        // Surface the rule's first chunk *error* (in chunk order) before
        // emitting anything: the width-1 path computes the whole rule's
        // tuples before its first emit, so a join error anywhere in the
        // rule must take precedence over an emit-time KeyConflict of an
        // earlier fragment.
        let fragments: Vec<Fragment> = results.into_iter().collect::<Result<_>>()?;
        // Merge in chunk order: absorb each chunk's reservations into the
        // evaluation scope and rewrite its fragment through the resulting
        // translation before emitting.
        for (tuples, arena) in fragments {
            let translation = reserving.absorb(arena);
            for (key, mut row) in tuples {
                let key = Key(translation.resolve_id(key.0));
                translation.resolve_row(&mut row);
                ev.emit(&rule.head.relation, key, row)?;
            }
        }
    }
    Ok(ev.into_derived())
}

/// One unit of parallel evaluation work.
enum ParTask {
    /// Evaluate the whole rule on one worker (depth-0 literal not
    /// chunkable, or planning hit an error the sequential join must
    /// reproduce in canonical order).
    Whole(usize),
    /// Evaluate one contiguous chunk of the rule's depth-0 candidate keys.
    Chunk {
        rule: usize,
        lit: usize,
        rel: Arc<Relation>,
        keys: Arc<Vec<Key>>,
        range: (usize, usize),
    },
}

impl ParTask {
    fn rule(&self) -> usize {
        match self {
            ParTask::Whole(rule) | ParTask::Chunk { rule, .. } => *rule,
        }
    }
}

/// The parallel fast path of [`evaluate_compiled`]; `None` means "stay
/// sequential" (width 1, unsafe rule set, or a view that cannot be shared).
fn try_evaluate_parallel(
    crs: &CompiledRuleSet,
    edb: &dyn EdbView,
    head_columns: &BTreeMap<String, Vec<String>>,
) -> Result<Option<BTreeMap<String, Relation>>> {
    let width = crate::parallel::threads();
    if width < 2 || !crs.parallel_safe() {
        return Ok(None);
    }
    if !edb.prepare_parallel(&crs.body_relations())? {
        return Ok(None);
    }

    // ---- Plan: one task per rule, or per chunk of the rule's depth-0
    // scan. Planning failures (unbound relation, arity mismatch) fall back
    // to a Whole task so the worker's sequential join raises the exact
    // error a `threads = 1` run would, at the same canonical position.
    let mut tasks: Vec<ParTask> = Vec::new();
    for ri in 0..crs.rules.len() {
        match plan_rule_chunks(crs, edb, ri, width).unwrap_or(None) {
            Some(chunks) => tasks.extend(chunks),
            None => tasks.push(ParTask::Whole(ri)),
        }
    }

    // ---- Fan out. Workers are pure: they share the prepared view, mint
    // nothing (`NO_MINT_IDS`), and each produces an ordered fragment of one
    // rule's head tuples.
    let results: Vec<Result<Vec<(Key, Row)>>> = crate::parallel::map_indexed(tasks.len(), |ti| {
        let ev = Evaluator::new(edb, &NO_MINT_IDS);
        match &tasks[ti] {
            ParTask::Whole(ri) => {
                let rule = &crs.rules[*ri];
                ev.rule_head_tuples(rule, &rule.base_order, None)
            }
            ParTask::Chunk {
                rule,
                lit,
                rel,
                keys,
                range,
            } => ev.chunk_head_tuples(&crs.rules[*rule], *lit, rel, &keys[range.0..range.1]),
        }
    });

    // ---- Deterministic epilogue: merge fragments and emit head tuples in
    // rule order then chunk order — exactly the sequential insertion order,
    // so key-conflict detection and error precedence are reproduced. Each
    // rule's fragment errors are drained (in task order) before any of its
    // fragments is emitted: the sequential engine computes a whole rule's
    // tuples before its first emit, so a join error anywhere in a rule
    // precedes an emit-time KeyConflict of that rule's earlier fragments.
    let mut ev = Evaluator::new(edb, &NO_MINT_IDS);
    let mut results = results.into_iter();
    let mut ti = 0;
    for (ri, rule) in crs.rules.iter().enumerate() {
        ev.ensure_head(&rule.head.relation, rule.head.terms.len() - 1, head_columns);
        let mut fragments: Vec<Vec<(Key, Row)>> = Vec::new();
        while ti < tasks.len() && tasks[ti].rule() == ri {
            fragments.push(results.next().expect("one result per task")?);
            ti += 1;
        }
        for tuples in fragments {
            for (key, row) in tuples {
                ev.emit(&rule.head.relation, key, row)?;
            }
        }
    }
    Ok(Some(ev.into_derived()))
}

/// Chunk one rule's depth-0 scan: only a positive atom whose key term is
/// unbound at depth 0 enumerates multiple candidates worth splitting.
/// `Ok(None)` / `Err` mean "evaluate the rule as one sequential task".
fn plan_rule_chunks(
    crs: &CompiledRuleSet,
    edb: &dyn EdbView,
    ri: usize,
    width: usize,
) -> Result<Option<Vec<ParTask>>> {
    // A throwaway evaluator with no derived heads resolves exactly like the
    // raw view (this path plans before any rule ran).
    let ev = Evaluator::new(edb, &NO_MINT_IDS);
    let Some((lit, rel, keys)) = ev.plan_chunk_scan(&crs.rules[ri])? else {
        return Ok(None);
    };
    let chunks = crate::parallel::chunk_ranges(keys.len(), width)
        .into_iter()
        .map(|range| ParTask::Chunk {
            rule: ri,
            lit,
            rel: Arc::clone(&rel),
            keys: Arc::clone(&keys),
            range,
        })
        .collect();
    Ok(Some(chunks))
}

/// The compiled evaluation engine. Holds derived heads (which shadow the
/// EDB), per-evaluation join indexes for derived heads, and an
/// allocation-free memo for key-seeded head evaluation.
pub struct Evaluator<'a> {
    edb: &'a dyn EdbView,
    ids: &'a dyn IdSource,
    /// Fully evaluated heads (full evaluation mode). Shared so the join can
    /// iterate a head while the evaluator hands out further references.
    pub derived: BTreeMap<String, Arc<Relation>>,
    /// `head → key → row` memo; outer lookups are by `&str` (no allocation).
    by_key_memo: HashMap<String, HashMap<Key, Option<Row>>>,
    /// Join indexes over *derived* heads, patched incrementally as heads
    /// grow (heads are append-only: a conflicting emit is an error).
    /// (EDB relations are indexed and cached by the [`EdbView`] itself.)
    derived_indexes: IndexCache,
}

impl<'a> Evaluator<'a> {
    /// New evaluator over an EDB.
    pub fn new(edb: &'a dyn EdbView, ids: &'a dyn IdSource) -> Self {
        Evaluator {
            edb,
            ids,
            derived: BTreeMap::new(),
            by_key_memo: HashMap::new(),
            derived_indexes: IndexCache::new(),
        }
    }

    /// Evaluator pre-seeded with already-derived heads — the read-only
    /// snapshot a parallel chunk worker of a *staged* rule set evaluates
    /// against (earlier rules' heads shadow the EDB exactly as they do for
    /// the merging evaluator; the worker itself never emits).
    fn with_derived(
        edb: &'a dyn EdbView,
        ids: &'a dyn IdSource,
        derived: BTreeMap<String, Arc<Relation>>,
    ) -> Self {
        Evaluator {
            edb,
            ids,
            derived,
            by_key_memo: HashMap::new(),
            derived_indexes: IndexCache::new(),
        }
    }

    /// Plan the chunked fan-out of one rule's depth-0 scan: only a positive
    /// atom whose key term is unbound at depth 0 enumerates multiple
    /// candidates worth splitting. Candidates mirror the sequential
    /// enumeration exactly — index probe on the first bound payload column,
    /// else a full scan, both in ascending key order — and resolve through
    /// this evaluator, so derived heads (staged sets) chunk just like EDB
    /// relations. `Ok(None)` / `Err` mean "evaluate the rule inline".
    #[allow(clippy::type_complexity)]
    pub(crate) fn plan_chunk_scan(
        &self,
        rule: &CompiledRule,
    ) -> Result<Option<(usize, Arc<Relation>, Arc<Vec<Key>>)>> {
        let Some(&first) = rule.base_order.first() else {
            return Ok(None);
        };
        let CLit::Pos(atom) = &rule.body[first] else {
            return Ok(None);
        };
        let empty: Frame = vec![None; rule.n_vars];
        if atom.terms[0].resolved(&empty).is_some() {
            // Key-bound depth 0 is a single point lookup — nothing to chunk.
            return Ok(None);
        }
        let rel = self.relation_full(&atom.relation)?;
        check_arity(atom, rel.schema().arity() + 1)?;
        let keys: Vec<Key> = match atom.bound_payload(&empty) {
            Some((col, value)) => {
                let value = value.clone();
                self.index_for(&atom.relation, col)?
                    .keys_for(&value)
                    .to_vec()
            }
            None => rel.keys().collect(),
        };
        Ok(Some((first, rel, Arc::new(keys))))
    }

    /// Evaluate one contiguous chunk of a rule's depth-0 candidates,
    /// returning the head tuples in candidate order (the fragment a merge
    /// epilogue emits in chunk order).
    pub(crate) fn chunk_head_tuples(
        &self,
        rule: &CompiledRule,
        lit: usize,
        rel: &Relation,
        keys: &[Key],
    ) -> Result<Vec<(Key, Row)>> {
        let CLit::Pos(atom) = &rule.body[lit] else {
            unreachable!("chunk tasks are planned on positive atoms only")
        };
        let mut frame: Frame = vec![None; rule.n_vars];
        let mut trail = Vec::with_capacity(rule.n_vars);
        let mut out = Vec::new();
        // `select_rows` walks dense ascending chunks by one in-order merge
        // instead of per-key tree probes; visit order (and thus tuple and
        // error order) is identical to the per-key loop it replaced.
        let mut first_err: Option<DatalogError> = None;
        rel.select_rows(keys, |key, row| {
            if first_err.is_some() {
                return;
            }
            let mark = trail.len();
            if unify_atom(atom, key, row, &mut frame, &mut trail) {
                let joined = self.join(
                    rule,
                    &rule.base_order,
                    1,
                    &mut frame,
                    &mut trail,
                    &mut |frame| {
                        out.push(head_tuple(rule, frame)?);
                        Ok(())
                    },
                );
                if let Err(e) = joined {
                    first_err = Some(e);
                }
            }
            undo(&mut frame, &mut trail, mark);
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Consume the evaluator, unwrapping the derived heads.
    pub(crate) fn into_derived(self) -> BTreeMap<String, Relation> {
        self.derived
            .into_iter()
            .map(|(name, rel)| {
                let rel = Arc::try_unwrap(rel).unwrap_or_else(|shared| (*shared).clone());
                (name, rel)
            })
            .collect()
    }

    pub(crate) fn ensure_head(
        &mut self,
        head: &str,
        arity: usize,
        head_columns: &BTreeMap<String, Vec<String>>,
    ) {
        if !self.derived.contains_key(head) {
            let columns: Vec<String> = match head_columns.get(head) {
                Some(cols) => cols.clone(),
                None => (0..arity).map(|i| format!("c{i}")).collect(),
            };
            let schema = TableSchema::new(head.to_string(), columns).expect("unique columns");
            self.derived
                .insert(head.to_string(), Arc::new(Relation::new(schema)));
        }
    }

    /// Add a derived head tuple, detecting key conflicts.
    pub(crate) fn emit(&mut self, head: &str, key: Key, row: Row) -> Result<()> {
        let rel = self
            .derived
            .get_mut(head)
            .expect("head relation pre-created");
        match rel.get(key) {
            Some(existing) if *existing == row => Ok(()),
            Some(_) => Err(DatalogError::KeyConflict {
                relation: head.to_string(),
                key: key.0,
            }),
            None => {
                // A head only ever *grows* (conflicting emits error out
                // above), so cached indexes are patched for the appended
                // row instead of being dropped and rebuilt at O(n).
                self.derived_indexes.patch_row(head, key, None, Some(&row));
                Arc::make_mut(rel)
                    .upsert(key, row)
                    .map_err(DatalogError::from)?;
                Ok(())
            }
        }
    }

    /// Resolve a relation for matching: derived heads shadow the EDB.
    pub(crate) fn relation_full(&self, name: &str) -> Result<Arc<Relation>> {
        if let Some(rel) = self.derived.get(name) {
            return Ok(Arc::clone(rel));
        }
        self.edb.full(name)
    }

    pub(crate) fn relation_by_key(&self, name: &str, key: Key) -> Result<Option<Row>> {
        if let Some(rel) = self.derived.get(name) {
            return Ok(rel.get(key).cloned());
        }
        self.edb.by_key(name, key)
    }

    /// The join index for `(relation, column)`: served from the EDB's cache
    /// for EDB relations, from the evaluator-local cache for derived heads.
    pub(crate) fn index_for(&self, relation: &str, column: usize) -> Result<Arc<ColumnIndex>> {
        if let Some(rel) = self.derived.get(relation) {
            return self
                .derived_indexes
                .get_or_build(relation, column, || Ok(rel.build_column_index(column)));
        }
        self.edb.index(relation, column)
    }

    /// All head tuples the rule derives, with `seed` pre-bound (callers pass
    /// the precomputed order matching the seed shape).
    pub(crate) fn rule_head_tuples(
        &self,
        rule: &CompiledRule,
        order: &[usize],
        seed: Option<&Frame>,
    ) -> Result<Vec<(Key, Row)>> {
        let mut frame = match seed {
            Some(f) => f.clone(),
            None => vec![None; rule.n_vars],
        };
        let mut trail = Vec::with_capacity(rule.n_vars);
        let mut out = Vec::new();
        self.join(rule, order, 0, &mut frame, &mut trail, &mut |frame| {
            out.push(head_tuple(rule, frame)?);
            Ok(())
        })?;
        Ok(out)
    }

    /// Depth-first join over the scheduled body literals. Bindings live in
    /// `frame`; slots bound while matching an atom are recorded on `trail`
    /// and undone on backtrack, so no per-depth clone happens.
    fn join(
        &self,
        rule: &CompiledRule,
        order: &[usize],
        depth: usize,
        frame: &mut Frame,
        trail: &mut Vec<usize>,
        on_match: &mut dyn FnMut(&Frame) -> Result<()>,
    ) -> Result<()> {
        if depth == order.len() {
            return on_match(frame);
        }
        match &rule.body[order[depth]] {
            CLit::Pos(atom) => {
                // Key-bound fast path: a single point lookup.
                if let Some(kv) = atom.terms[0].resolved(frame) {
                    // A non-key value (e.g. NULL from an ω fk) matches nothing.
                    let Ok(key) = value_key(&atom.relation, kv) else {
                        return Ok(());
                    };
                    if let Some(row) = self.relation_by_key(&atom.relation, key)? {
                        check_arity(atom, row.len() + 1)?;
                        let mark = trail.len();
                        if unify_atom(atom, key, &row, frame, trail) {
                            self.join(rule, order, depth + 1, frame, trail, on_match)?;
                        }
                        undo(frame, trail, mark);
                    }
                    return Ok(());
                }
                let rel = self.relation_full(&atom.relation)?;
                check_arity(atom, rel.schema().arity() + 1)?;
                // Index path: probe the first bound payload column.
                if let Some((col, value)) = atom.bound_payload(frame) {
                    let value = value.clone();
                    let index = self.index_for(&atom.relation, col)?;
                    for &key in index.keys_for(&value) {
                        let Some(row) = rel.get(key) else { continue };
                        let mark = trail.len();
                        if unify_atom(atom, key, row, frame, trail) {
                            self.join(rule, order, depth + 1, frame, trail, on_match)?;
                        }
                        undo(frame, trail, mark);
                    }
                    return Ok(());
                }
                // No bound column at all: full scan.
                for (key, row) in rel.iter() {
                    let mark = trail.len();
                    if unify_atom(atom, key, row, frame, trail) {
                        self.join(rule, order, depth + 1, frame, trail, on_match)?;
                    }
                    undo(frame, trail, mark);
                }
                Ok(())
            }
            CLit::Neg(atom) => {
                if !self.atom_has_match(atom, frame, trail)? {
                    self.join(rule, order, depth + 1, frame, trail, on_match)?;
                }
                Ok(())
            }
            CLit::Cond { expr, cols } => {
                let ctx = FrameCtx { cols, frame };
                if expr.matches(&ctx).map_err(DatalogError::from)? {
                    self.join(rule, order, depth + 1, frame, trail, on_match)?;
                }
                Ok(())
            }
            CLit::Assign { slot, expr, cols } => {
                let v = {
                    let ctx = FrameCtx { cols, frame };
                    expr.eval(&ctx).map_err(DatalogError::from)?
                };
                self.bind_and_continue(rule, order, depth, *slot, v, frame, trail, on_match)
            }
            CLit::Skolem {
                slot,
                generator,
                args,
            } => {
                let mut vals = Vec::with_capacity(args.len());
                for t in args {
                    match t.resolved(frame) {
                        Some(v) => vals.push(v.clone()),
                        None => {
                            return Err(DatalogError::UnsafeRule {
                                rule: rule.display.clone(),
                            })
                        }
                    }
                }
                let id = self.ids.generate(generator, &vals);
                let v = Value::Int(id as i64);
                self.bind_and_continue(rule, order, depth, *slot, v, frame, trail, on_match)
            }
        }
    }

    /// Assignment semantics shared by `Assign` and `Skolem`: acts as an
    /// equality check when the slot is already bound.
    #[allow(clippy::too_many_arguments)]
    fn bind_and_continue(
        &self,
        rule: &CompiledRule,
        order: &[usize],
        depth: usize,
        slot: usize,
        value: Value,
        frame: &mut Frame,
        trail: &mut Vec<usize>,
        on_match: &mut dyn FnMut(&Frame) -> Result<()>,
    ) -> Result<()> {
        match &frame[slot] {
            Some(bound) if *bound == value => {
                self.join(rule, order, depth + 1, frame, trail, on_match)
            }
            Some(_) => Ok(()), // equality check failed
            None => {
                frame[slot] = Some(value);
                let result = self.join(rule, order, depth + 1, frame, trail, on_match);
                frame[slot] = None;
                result
            }
        }
    }

    /// Whether any tuple matches the atom under the frame (for negation).
    fn atom_has_match(
        &self,
        atom: &CAtom,
        frame: &mut Frame,
        trail: &mut Vec<usize>,
    ) -> Result<bool> {
        if let Some(kv) = atom.terms[0].resolved(frame) {
            let Ok(key) = value_key(&atom.relation, kv) else {
                return Ok(false);
            };
            return Ok(match self.relation_by_key(&atom.relation, key)? {
                Some(row) => {
                    let mark = trail.len();
                    let matched = unify_atom(atom, key, &row, frame, trail);
                    undo(frame, trail, mark);
                    matched
                }
                None => false,
            });
        }
        let rel = self.relation_full(&atom.relation)?;
        check_arity(atom, rel.schema().arity() + 1)?;
        if let Some((col, value)) = atom.bound_payload(frame) {
            let value = value.clone();
            let index = self.index_for(&atom.relation, col)?;
            for &key in index.keys_for(&value) {
                let Some(row) = rel.get(key) else { continue };
                let mark = trail.len();
                let matched = unify_atom(atom, key, row, frame, trail);
                undo(frame, trail, mark);
                if matched {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        for (key, row) in rel.iter() {
            let mark = trail.len();
            let matched = unify_atom(atom, key, row, frame, trail);
            undo(frame, trail, mark);
            if matched {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Key-seeded evaluation: the row `head` derives for `key` under the
    /// compiled rule set, or `None`. Memoized per (head, key) without
    /// allocating on lookups.
    ///
    /// Falls back to full evaluation of a rule when the key binding cannot
    /// be pushed into its body (e.g. the key is produced by a skolem
    /// function — the id-generating SMOs).
    pub fn head_row_for_key(
        &mut self,
        crs: &CompiledRuleSet,
        head: &str,
        key: Key,
    ) -> Result<Option<Row>> {
        if let Some(memo) = self.by_key_memo.get(head).and_then(|m| m.get(&key)) {
            return Ok(memo.clone());
        }
        // If the head was already fully derived, serve from it.
        if let Some(rel) = self.derived.get(head) {
            let row = rel.get(key).cloned();
            self.memoize(head, key, row.clone());
            return Ok(row);
        }
        let mut found: Option<Row> = None;
        for &idx in crs.rules_for(head) {
            let rule = &crs.rules[idx];
            let tuples = match (&rule.keyed_order, rule.head_key_slot) {
                (Some(order), Some(slot)) if rule.seedable => {
                    let mut seed: Frame = vec![None; rule.n_vars];
                    seed[slot] = Some(key_value(key));
                    self.rule_head_tuples(rule, order, Some(&seed))?
                }
                _ => {
                    // Key not pushable: evaluate the rule fully and filter.
                    self.rule_head_tuples(rule, &rule.base_order, None)?
                }
            };
            for (k, row) in tuples {
                if k != key {
                    continue;
                }
                match &found {
                    Some(existing) if *existing == row => {}
                    Some(_) => {
                        return Err(DatalogError::KeyConflict {
                            relation: head.to_string(),
                            key: key.0,
                        })
                    }
                    None => found = Some(row),
                }
            }
        }
        self.memoize(head, key, found.clone());
        Ok(found)
    }

    fn memoize(&mut self, head: &str, key: Key, row: Option<Row>) {
        self.by_key_memo
            .entry(head.to_string())
            .or_default()
            .insert(key, row);
    }

    /// **Column-seeded evaluation** — the generalization of
    /// [`head_row_for_key`](Evaluator::head_row_for_key) from key seeds to
    /// arbitrary bound payload columns: every tuple `head` derives whose
    /// payload column `column` equals `value` (numeric-folding equality),
    /// returned in ascending key order.
    ///
    /// Cross-rule key conflicts are detected **among the explored tuples**:
    /// two rules deriving different rows for one key both matching the seed
    /// raise the canonical [`DatalogError::KeyConflict`]. A conflict whose
    /// other tuple does *not* match the seed is outside the explored space
    /// and goes undetected — a full evaluation of the same state would
    /// error. Such states violate the mappings' functional-head invariant
    /// (the engine's write path never produces them since the FK-DECOMPOSE
    /// twin-separation fix); callers needing the canonical error behavior
    /// on arbitrary states must resolve fully.
    ///
    /// Per rule, the binding is pushed into the body: the first positive
    /// atom (in scheduled order) carrying the seeded head variable becomes
    /// the probe literal, its candidates come from [`EdbView::by_column`]
    /// — which a lazy view can answer by pushing the binding one defining
    /// mapping further down — and the rest of the body joins under the
    /// literal's precompiled probe order. Rules whose seeded column is not
    /// a pushable variable (constant heads, columns bound by assignment)
    /// evaluate fully and are filtered, so the result never contains a
    /// tuple violating the predicate and never misses one.
    ///
    /// Determinism contract: seeded evaluation is sequential at every
    /// `INVERDA_THREADS` width and explores only matching bindings, so its
    /// result is a pure function of the EDB. That selectivity is also why
    /// **minting rule sets are the caller's responsibility**: a skolem
    /// generator reached during the seeded join mints (or reserves, under a
    /// [`ReservingIds`] scope) in seeded exploration order, which differs
    /// from a full evaluation's canonical order — the InVerDa core routes
    /// only mint-free, non-staged resolutions here and falls back to full
    /// resolution otherwise (staged sets consume their own intermediate
    /// heads, which are not resolvable relations).
    pub fn head_rows_by_column(
        &mut self,
        crs: &CompiledRuleSet,
        head: &str,
        column: usize,
        value: &Value,
    ) -> Result<Vec<(Key, Row)>> {
        // Already fully derived: probe the head itself.
        if let Some(rel) = self.derived.get(head) {
            if column >= rel.schema().arity() {
                return Ok(Vec::new());
            }
            let rel = Arc::clone(rel);
            return Ok(self.index_for(head, column)?.rows_for(&rel, value));
        }
        let mut out: BTreeMap<Key, Row> = BTreeMap::new();
        for &idx in crs.rules_for(head) {
            let rule = &crs.rules[idx];
            for (key, row) in self.rule_tuples_for_column(rule, column, value)? {
                // Enforce the seed uniformly — pushed rules already satisfy
                // it, fallback-evaluated rules are filtered here.
                if row.get(column).is_none_or(|v| v != value) {
                    continue;
                }
                match out.get(&key) {
                    Some(existing) if *existing == row => {}
                    Some(_) => {
                        return Err(DatalogError::KeyConflict {
                            relation: head.to_string(),
                            key: key.0,
                        })
                    }
                    None => {
                        out.insert(key, row);
                    }
                }
            }
        }
        Ok(out.into_iter().collect())
    }

    /// One rule's contribution to [`head_rows_by_column`]: pushed through a
    /// probe literal when the seeded column is a pushable head variable,
    /// full evaluation otherwise (the caller filters either way).
    ///
    /// [`head_rows_by_column`]: Evaluator::head_rows_by_column
    fn rule_tuples_for_column(
        &self,
        rule: &CompiledRule,
        column: usize,
        value: &Value,
    ) -> Result<Vec<(Key, Row)>> {
        let slot = match rule.head.terms.get(column + 1) {
            // A constant head cell that cannot equal the seed: no tuple of
            // this rule survives the filter, so skip its evaluation.
            Some(CTerm::Const(c)) if c != value => return Ok(Vec::new()),
            Some(CTerm::Var(s)) => Some(*s),
            // Constant-equal, anonymous (errors at head_tuple like a full
            // evaluation would), or out-of-arity heads: evaluate fully.
            _ => None,
        };
        if let Some(slot) = slot {
            // The probe literal: first positive atom (in scheduled order)
            // binding the seeded variable in a payload position, with a
            // precompiled probe order for the rest of the body.
            for &li in &rule.base_order {
                let CLit::Pos(atom) = &rule.body[li] else {
                    continue;
                };
                let Some(col) = atom.terms[1..]
                    .iter()
                    .position(|t| matches!(t, CTerm::Var(s) if *s == slot))
                else {
                    continue;
                };
                let Some(order) = rule.probe_orders[li].as_ref() else {
                    continue;
                };
                let candidates = self.relation_by_column(&atom.relation, col, value)?;
                let mut out = Vec::new();
                for (key, row) in &candidates {
                    let Some(mut frame) = seed_frame(rule, atom, *key, row) else {
                        continue;
                    };
                    let mut trail = Vec::with_capacity(rule.n_vars);
                    self.join(rule, order, 0, &mut frame, &mut trail, &mut |frame| {
                        out.push(head_tuple(rule, frame)?);
                        Ok(())
                    })?;
                }
                return Ok(out);
            }
        }
        self.rule_head_tuples(rule, &rule.base_order, None)
    }

    /// Rows of `name` whose payload column equals `value`: derived heads
    /// shadow the EDB (probed through the evaluator-local index cache), the
    /// EDB answers via [`EdbView::by_column`] (lazily pushable).
    fn relation_by_column(
        &self,
        name: &str,
        column: usize,
        value: &Value,
    ) -> Result<Vec<(Key, Row)>> {
        if let Some(rel) = self.derived.get(name) {
            if column >= rel.schema().arity() {
                return Ok(Vec::new());
            }
            let rel = Arc::clone(rel);
            let index =
                self.derived_indexes
                    .get_or_build::<DatalogError>(name, column, || {
                        Ok(rel.build_column_index(column))
                    })?;
            return Ok(index.rows_for(&rel, value));
        }
        self.edb.by_column(name, column, value)
    }

    /// Delta-engine probe: bind one body atom to a concrete `(key, row)`
    /// tuple, evaluate the rest of the rule, and collect the head keys of
    /// every satisfying frame into `out`. Returns `Ok(())` without effect if
    /// the tuple cannot match the literal's pattern.
    pub fn probe_head_keys(
        &self,
        crs: &CompiledRuleSet,
        rule_idx: usize,
        lit_idx: usize,
        key: Key,
        row: &Row,
        out: &mut BTreeSet<Key>,
    ) -> Result<()> {
        let rule = &crs.rules[rule_idx];
        let Some(order) = rule.probe_orders[lit_idx].as_ref() else {
            return Err(DatalogError::UnsafeRule {
                rule: rule.display.clone(),
            });
        };
        let atom = match &rule.body[lit_idx] {
            CLit::Pos(a) | CLit::Neg(a) => a,
            _ => unreachable!("probe_orders is Some only for atoms"),
        };
        let Some(seed) = seed_frame(rule, atom, key, row) else {
            return Ok(());
        };
        let mut frame = seed;
        let mut trail = Vec::with_capacity(rule.n_vars);
        self.join(rule, order, 0, &mut frame, &mut trail, &mut |frame| {
            if let Some(head_key) = head_key_from_frame(rule, frame) {
                out.insert(head_key);
            }
            Ok(())
        })
    }
}

/// Row context over a frame, using a rule-compile-time name→slot table.
pub(crate) struct FrameCtx<'a> {
    pub(crate) cols: &'a [(String, usize)],
    pub(crate) frame: &'a [Option<Value>],
}

impl RowContext for FrameCtx<'_> {
    fn value_of(&self, column: &str) -> Option<Value> {
        self.cols
            .iter()
            .find(|(name, _)| name == column)
            .and_then(|(_, slot)| self.frame[*slot].clone())
    }
}

/// Build the head tuple from a complete frame.
pub(crate) fn head_tuple(rule: &CompiledRule, frame: &[Option<Value>]) -> Result<(Key, Row)> {
    let head = &rule.head;
    let mut values = Vec::with_capacity(head.terms.len());
    for t in &head.terms {
        match t {
            CTerm::Var(s) => match &frame[*s] {
                Some(v) => values.push(v.clone()),
                None => {
                    return Err(DatalogError::UnsafeRule {
                        rule: rule.display.clone(),
                    })
                }
            },
            CTerm::Const(c) => values.push(c.clone()),
            CTerm::Anon => {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.display.clone(),
                })
            }
        }
    }
    let key = value_key(&head.relation, &values[0])?;
    Ok((key, values[1..].to_vec()))
}

/// The head key under a (complete-enough) frame, if determinable.
fn head_key_from_frame(rule: &CompiledRule, frame: &Frame) -> Option<Key> {
    match &rule.head.terms[0] {
        CTerm::Var(s) => frame[*s]
            .as_ref()
            .and_then(|v| value_key(&rule.head.relation, v).ok()),
        CTerm::Const(c) => value_key(&rule.head.relation, c).ok(),
        CTerm::Anon => None,
    }
}

/// Unify an atom pattern with a concrete `(key, row)` into a fresh seed
/// frame. Returns `None` if constants differ or duplicate variables clash.
fn seed_frame(rule: &CompiledRule, atom: &CAtom, key: Key, row: &Row) -> Option<Frame> {
    if atom.terms.len() != row.len() + 1 {
        return None;
    }
    let mut frame: Frame = vec![None; rule.n_vars];
    let kv = key_value(key);
    let mut trail = Vec::new();
    let all = std::iter::once(&kv).chain(row.iter());
    for (term, value) in atom.terms.iter().zip(all) {
        if !unify_term(term, value, &mut frame, &mut trail) {
            return None;
        }
    }
    Some(frame)
}

/// Try to extend the frame so the atom matches `(key, row)`; newly bound
/// slots are pushed on `trail`.
pub(crate) fn unify_atom(
    atom: &CAtom,
    key: Key,
    row: &[Value],
    frame: &mut [Option<Value>],
    trail: &mut Vec<usize>,
) -> bool {
    let kv = key_value(key);
    if !unify_term(&atom.terms[0], &kv, frame, trail) {
        return false;
    }
    for (t, v) in atom.terms[1..].iter().zip(row.iter()) {
        if !unify_term(t, v, frame, trail) {
            return false;
        }
    }
    true
}

fn unify_term(
    term: &CTerm,
    value: &Value,
    frame: &mut [Option<Value>],
    trail: &mut Vec<usize>,
) -> bool {
    match term {
        CTerm::Anon => true,
        CTerm::Const(c) => c == value,
        CTerm::Var(s) => match &frame[*s] {
            Some(bound) => bound == value,
            None => {
                frame[*s] = Some(value.clone());
                trail.push(*s);
                true
            }
        },
    }
}

/// Undo trail entries past `mark`.
pub(crate) fn undo(frame: &mut [Option<Value>], trail: &mut Vec<usize>, mark: usize) {
    for slot in trail.drain(mark..) {
        frame[slot] = None;
    }
}

pub(crate) fn check_arity(atom: &CAtom, relation_arity: usize) -> Result<()> {
    if atom.terms.len() != relation_arity {
        return Err(DatalogError::ArityMismatch {
            relation: atom.relation.clone(),
            atom_arity: atom.terms.len(),
            relation_arity,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Rule};
    use inverda_storage::Expr;

    fn ids() -> Mutex<SkolemRegistry> {
        Mutex::new(SkolemRegistry::new())
    }

    fn edb_task() -> MapEdb {
        // The paper's TasKy table: Task(author, task, prio).
        let mut t = Relation::with_columns("T", ["author", "task", "prio"]);
        t.insert(
            Key(1),
            vec!["Ann".into(), "Organize party".into(), 3.into()],
        )
        .unwrap();
        t.insert(
            Key(2),
            vec!["Ben".into(), "Learn for exam".into(), 2.into()],
        )
        .unwrap();
        t.insert(Key(3), vec!["Ann".into(), "Write paper".into(), 1.into()])
            .unwrap();
        t.insert(Key(4), vec!["Ben".into(), "Clean room".into(), 1.into()])
            .unwrap();
        let mut edb = MapEdb::new();
        edb.add(t);
        edb
    }

    fn split_rules() -> RuleSet {
        // Simplified SPLIT (clean state): R = σ_{prio=1}(T), S = σ_{prio>=2}(T),
        // T' = rest (empty here since conditions cover everything).
        let vars = ["p", "author", "task", "prio"];
        RuleSet::new(vec![
            Rule::new(
                Atom::vars("R", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(Expr::col("prio").eq(Expr::lit(1))),
                ],
            ),
            Rule::new(
                Atom::vars("S", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(Expr::col("prio").ge(Expr::lit(2))),
                ],
            ),
            Rule::new(
                Atom::vars("T2", &vars),
                vec![
                    Literal::Pos(Atom::vars("T", &vars)),
                    Literal::Cond(
                        Expr::col("prio")
                            .eq(Expr::lit(1))
                            .negate()
                            .and(Expr::col("prio").ge(Expr::lit(2)).negate()),
                    ),
                ],
            ),
        ])
    }

    #[test]
    fn split_selects_partitions() {
        let edb = edb_task();
        let sk = ids();
        let out = evaluate(&split_rules(), &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["R"].len(), 2);
        assert_eq!(out["S"].len(), 2);
        assert_eq!(out["T2"].len(), 0);
        assert!(out["R"].contains_key(Key(3)));
        assert!(out["R"].contains_key(Key(4)));
    }

    #[test]
    fn union_with_negation_reconstructs_source() {
        // γsrc of SPLIT (rules 18-20 shape): T ← R; T ← S, ¬R(p,_); T ← T'.
        let vars = ["p", "a"];
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("T", &vars),
                vec![Literal::Pos(Atom::vars("R", &vars))],
            ),
            Rule::new(
                Atom::vars("T", &vars),
                vec![
                    Literal::Pos(Atom::vars("S", &vars)),
                    Literal::Neg(Atom::new("R", vec![Term::var("p"), Term::Anon])),
                ],
            ),
            Rule::new(
                Atom::vars("T", &vars),
                vec![Literal::Pos(Atom::vars("Tp", &vars))],
            ),
        ]);
        let mut r = Relation::with_columns("R", ["a"]);
        r.insert(Key(1), vec![Value::Int(10)]).unwrap();
        r.insert(Key(2), vec![Value::Int(20)]).unwrap();
        let mut s = Relation::with_columns("S", ["a"]);
        // Twin of key 1 (same value) and an S-only tuple.
        s.insert(Key(1), vec![Value::Int(10)]).unwrap();
        s.insert(Key(5), vec![Value::Int(50)]).unwrap();
        let mut tp = Relation::with_columns("Tp", ["a"]);
        tp.insert(Key(9), vec![Value::Int(90)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(r).add(s).add(tp);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        let t = &out["T"];
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(Key(1)), Some(&vec![Value::Int(10)]));
        assert_eq!(t.get(Key(5)), Some(&vec![Value::Int(50)]));
        assert_eq!(t.get(Key(9)), Some(&vec![Value::Int(90)]));
    }

    #[test]
    fn key_conflict_detected() {
        // Two rules derive different payloads for the same key.
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("H", &["p", "a"]),
                vec![Literal::Pos(Atom::vars("X", &["p", "a"]))],
            ),
            Rule::new(
                Atom::vars("H", &["p", "b"]),
                vec![Literal::Pos(Atom::vars("Y", &["p", "b"]))],
            ),
        ]);
        let mut x = Relation::with_columns("X", ["a"]);
        x.insert(Key(1), vec![Value::Int(1)]).unwrap();
        let mut y = Relation::with_columns("Y", ["b"]);
        y.insert(Key(1), vec![Value::Int(2)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(x).add(y);
        let sk = ids();
        let err = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, DatalogError::KeyConflict { .. }));
    }

    #[test]
    fn assignment_computes_new_column() {
        // ADD COLUMN shape: R'(p, a, b) ← R(p, a), b = a * 2.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("Rp", &["p", "a", "b"]),
            vec![
                Literal::Pos(Atom::vars("R", &["p", "a"])),
                Literal::Assign {
                    var: "b".into(),
                    expr: inverda_storage::Expr::Binary(
                        Box::new(Expr::col("a")),
                        inverda_storage::BinaryOp::Mul,
                        Box::new(Expr::lit(2)),
                    ),
                },
            ],
        )]);
        let mut r = Relation::with_columns("R", ["a"]);
        r.insert(Key(1), vec![Value::Int(21)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(r);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(
            out["Rp"].get(Key(1)),
            Some(&vec![Value::Int(21), Value::Int(42)])
        );
    }

    #[test]
    fn skolem_assignment_generates_stable_ids() {
        // FK-decompose shape: Author(t, name) ← T(p, name), t = id(name).
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("Author", &["t", "name"]),
            vec![
                Literal::Pos(Atom::vars("T", &["p", "name"])),
                Literal::Skolem {
                    var: "t".into(),
                    generator: "id_Author".into(),
                    args: vec![Term::var("name")],
                },
            ],
        )]);
        let mut t = Relation::with_columns("T", ["name"]);
        t.insert(Key(1), vec!["Ann".into()]).unwrap();
        t.insert(Key(2), vec!["Ben".into()]).unwrap();
        t.insert(Key(3), vec!["Ann".into()]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(t);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        // Two distinct authors -> two rows (duplicate "Ann" collapses by id).
        assert_eq!(out["Author"].len(), 2);
    }

    #[test]
    fn staged_heads_visible_to_later_rules() {
        // Second rule reads the head of the first.
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("A", &["p", "x"]),
                vec![Literal::Pos(Atom::vars("In", &["p", "x"]))],
            ),
            Rule::new(
                Atom::vars("B", &["p", "x"]),
                vec![
                    Literal::Pos(Atom::vars("A", &["p", "x"])),
                    Literal::Cond(Expr::col("x").gt(Expr::lit(1))),
                ],
            ),
        ]);
        let mut input = Relation::with_columns("In", ["x"]);
        input.insert(Key(1), vec![Value::Int(1)]).unwrap();
        input.insert(Key(2), vec![Value::Int(5)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(input);
        let sk = ids();
        let crs = CompiledRuleSet::compile(&rules).unwrap();
        assert!(crs.staged());
        let out = evaluate_compiled(&crs, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["B"].len(), 1);
        assert!(out["B"].contains_key(Key(2)));
    }

    #[test]
    fn missing_relation_is_reported() {
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p"]),
            vec![Literal::Pos(Atom::vars("Ghost", &["p"]))],
        )]);
        let edb = MapEdb::new();
        let sk = ids();
        let err = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, DatalogError::UnboundRelation { .. }));
    }

    #[test]
    fn head_row_for_key_matches_full_eval() {
        let edb = edb_task();
        let rules = split_rules();
        let sk = ids();
        let full = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        let sk2 = ids();
        let crs = CompiledRuleSet::compile(&rules).unwrap();
        let mut ev = Evaluator::new(&edb, &sk2);
        for key in [Key(1), Key(2), Key(3), Key(4), Key(99)] {
            let seeded = ev.head_row_for_key(&crs, "R", key).unwrap();
            assert_eq!(seeded.as_ref(), full["R"].get(key), "key {key:?}");
        }
    }

    #[test]
    fn null_key_binding_matches_nothing() {
        // Joining through an ω (NULL) foreign key finds no partner rather
        // than erroring (FK-decompose Rule 147 with a NULL fk).
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "t"]),
            vec![
                Literal::Pos(Atom::vars("S", &["p", "t"])),
                Literal::Pos(Atom::new("T", vec![Term::var("t"), Term::Anon])),
            ],
        )]);
        let mut s = Relation::with_columns("S", ["t"]);
        s.insert(Key(1), vec![Value::Null]).unwrap();
        let mut t = Relation::with_columns("T", ["b"]);
        t.insert(Key(7), vec![Value::Int(1)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(s).add(t);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert!(out["H"].is_empty());
    }

    #[test]
    fn compile_rejects_unsafe_rules() {
        // Negation over a variable never bound positively.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p"]),
            vec![Literal::Neg(Atom::vars("X", &["p"]))],
        )]);
        assert!(matches!(
            CompiledRuleSet::compile(&rules),
            Err(DatalogError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn duplicate_variable_in_atom_requires_equal_values() {
        // H(p, a) ← X(p, a, a): both payload cells must be equal.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "a"]),
            vec![Literal::Pos(Atom::vars("X", &["p", "a", "a"]))],
        )]);
        let mut x = Relation::with_columns("X", ["c1", "c2"]);
        x.insert(Key(1), vec![Value::Int(7), Value::Int(7)])
            .unwrap();
        x.insert(Key(2), vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        let mut edb = MapEdb::new();
        edb.add(x);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["H"].len(), 1);
        assert!(out["H"].contains_key(Key(1)));
    }

    #[test]
    fn unbound_join_uses_secondary_index() {
        // A join with no bound key term goes through the column-index path;
        // results must equal the naive engine's on a join with multiple
        // matches per value.
        let mut a = Relation::with_columns("A", ["n"]);
        let mut b = Relation::with_columns("B", ["n"]);
        for i in 0..40u64 {
            a.insert(Key(i), vec![Value::Int((i % 7) as i64)]).unwrap();
            b.insert(Key(100 + i), vec![Value::Int((i % 5) as i64)])
                .unwrap();
        }
        let mut edb = MapEdb::new();
        edb.add(a).add(b);
        // H(q, n) ← B(q, n), A(_, n): every B row with a partner in A.
        let rules_fn = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["q", "n"]),
            vec![
                Literal::Pos(Atom::vars("B", &["q", "n"])),
                Literal::Pos(Atom::new("A", vec![Term::Anon, Term::var("n")])),
            ],
        )]);
        let sk = ids();
        let compiled = evaluate(&rules_fn, &edb, &sk, &BTreeMap::new()).unwrap();
        let sk2 = ids();
        let naive = crate::naive::evaluate(&rules_fn, &edb, &sk2, &BTreeMap::new()).unwrap();
        assert_eq!(compiled, naive);
        // Every B row with n ∈ 0..5 ∩ values of A (0..7) matches.
        assert_eq!(compiled["H"].len(), 40);
    }

    #[test]
    fn negation_with_unbound_key_uses_index() {
        // H(p, n) ← A(p, n), ¬B(_, n): negation probed by payload column.
        let mut a = Relation::with_columns("A", ["n"]);
        a.insert(Key(1), vec![Value::Int(1)]).unwrap();
        a.insert(Key(2), vec![Value::Int(2)]).unwrap();
        let mut b = Relation::with_columns("B", ["n"]);
        b.insert(Key(9), vec![Value::Int(2)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(a).add(b);
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["p", "n"]),
            vec![
                Literal::Pos(Atom::vars("A", &["p", "n"])),
                Literal::Neg(Atom::new("B", vec![Term::Anon, Term::var("n")])),
            ],
        )]);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["H"].len(), 1);
        assert!(out["H"].contains_key(Key(1)));
    }

    #[test]
    fn derived_head_index_follows_incremental_growth() {
        // Rule 2 probes head H by payload (unbound key -> index path), then
        // rule 3 grows H, then rule 4 probes it again: the cached index must
        // reflect the appended rows without a rebuild, and results must
        // match the naive engine exactly.
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("H", &["p", "n"]),
                vec![Literal::Pos(Atom::vars("A", &["p", "n"]))],
            ),
            Rule::new(
                Atom::vars("J1", &["q", "n"]),
                vec![
                    Literal::Pos(Atom::vars("B", &["q", "n"])),
                    Literal::Pos(Atom::new("H", vec![Term::Anon, Term::var("n")])),
                ],
            ),
            Rule::new(
                Atom::vars("H", &["p", "n"]),
                vec![Literal::Pos(Atom::vars("A2", &["p", "n"]))],
            ),
            Rule::new(
                Atom::vars("J2", &["q", "n"]),
                vec![
                    Literal::Pos(Atom::vars("B", &["q", "n"])),
                    Literal::Pos(Atom::new("H", vec![Term::Anon, Term::var("n")])),
                ],
            ),
        ]);
        let mut a = Relation::with_columns("A", ["n"]);
        a.insert(Key(1), vec![Value::Int(10)]).unwrap();
        let mut a2 = Relation::with_columns("A2", ["n"]);
        a2.insert(Key(2), vec![Value::Int(20)]).unwrap();
        let mut b = Relation::with_columns("B", ["n"]);
        b.insert(Key(100), vec![Value::Int(10)]).unwrap();
        b.insert(Key(101), vec![Value::Int(20)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(a).add(a2).add(b);
        let sk = ids();
        let compiled = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        // J1 ran before H grew: only n=10 matches. J2 sees both.
        assert_eq!(compiled["J1"].len(), 1);
        assert_eq!(compiled["J2"].len(), 2);
        let sk2 = ids();
        let naive = crate::naive::evaluate(&rules, &edb, &sk2, &BTreeMap::new()).unwrap();
        assert_eq!(compiled, naive);
    }

    /// Full-evaluation oracle for the column-seeded entry point.
    fn seeded_oracle(
        rules: &RuleSet,
        edb: &MapEdb,
        head: &str,
        column: usize,
        value: &Value,
    ) -> Vec<(Key, Row)> {
        let sk = ids();
        let full = evaluate(rules, edb, &sk, &BTreeMap::new()).unwrap();
        full[head]
            .iter()
            .filter(|(_, row)| row.get(column) == Some(value))
            .map(|(k, row)| (k, row.clone()))
            .collect()
    }

    #[test]
    fn head_rows_by_column_matches_full_eval_filter() {
        let edb = edb_task();
        let rules = split_rules();
        let crs = CompiledRuleSet::compile(&rules).unwrap();
        for (head, col, value) in [
            ("R", 2, Value::Int(1)),
            ("S", 0, Value::text("Ann")),
            ("S", 0, Value::text("Nobody")),
            ("T2", 1, Value::text("Clean room")),
        ] {
            let sk = ids();
            let mut ev = Evaluator::new(&edb, &sk);
            let seeded = ev.head_rows_by_column(&crs, head, col, &value).unwrap();
            assert_eq!(
                seeded,
                seeded_oracle(&rules, &edb, head, col, &value),
                "{head}[{col}] = {value}"
            );
        }
    }

    #[test]
    fn head_rows_by_column_keeps_stored_bytes_under_numeric_folding() {
        // Stored Int(1), probed with Float(1.0): the numeric fold must find
        // the row, and the emitted tuple must carry the *stored* Int — the
        // bytes a scan-and-filter would produce.
        let edb = edb_task();
        let rules = split_rules();
        let crs = CompiledRuleSet::compile(&rules).unwrap();
        let sk = ids();
        let mut ev = Evaluator::new(&edb, &sk);
        let seeded = ev
            .head_rows_by_column(&crs, "R", 2, &Value::Float(1.0))
            .unwrap();
        assert_eq!(seeded.len(), 2);
        for (_, row) in &seeded {
            assert!(
                matches!(row[2], Value::Int(1)),
                "seeded output must keep stored bytes, got {:?}",
                row[2]
            );
        }
        assert_eq!(
            seeded,
            seeded_oracle(&rules, &edb, "R", 2, &Value::Float(1.0))
        );
    }

    #[test]
    fn head_rows_by_column_falls_back_for_computed_columns() {
        // Column b is bound by an assignment, not a positive atom: the rule
        // cannot be pushed and must evaluate fully, then filter.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("Rp", &["p", "a", "b"]),
            vec![
                Literal::Pos(Atom::vars("R", &["p", "a"])),
                Literal::Assign {
                    var: "b".into(),
                    expr: inverda_storage::Expr::Binary(
                        Box::new(Expr::col("a")),
                        inverda_storage::BinaryOp::Mul,
                        Box::new(Expr::lit(2)),
                    ),
                },
            ],
        )]);
        let mut r = Relation::with_columns("R", ["a"]);
        r.insert(Key(1), vec![Value::Int(21)]).unwrap();
        r.insert(Key(2), vec![Value::Int(5)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(r);
        let crs = CompiledRuleSet::compile(&rules).unwrap();
        let sk = ids();
        let mut ev = Evaluator::new(&edb, &sk);
        let seeded = ev
            .head_rows_by_column(&crs, "Rp", 1, &Value::Int(42))
            .unwrap();
        assert_eq!(seeded, vec![(Key(1), vec![Value::Int(21), Value::Int(42)])]);
    }

    #[test]
    fn head_rows_by_column_handles_negation_and_union_heads() {
        // γsrc-of-SPLIT shape (union + negation): seeded results must agree
        // with full evaluation on every branch.
        let vars = ["p", "a"];
        let rules = RuleSet::new(vec![
            Rule::new(
                Atom::vars("T", &vars),
                vec![Literal::Pos(Atom::vars("R", &vars))],
            ),
            Rule::new(
                Atom::vars("T", &vars),
                vec![
                    Literal::Pos(Atom::vars("S", &vars)),
                    Literal::Neg(Atom::new("R", vec![Term::var("p"), Term::Anon])),
                ],
            ),
        ]);
        let mut r = Relation::with_columns("R", ["a"]);
        r.insert(Key(1), vec![Value::Int(10)]).unwrap();
        r.insert(Key(2), vec![Value::Int(20)]).unwrap();
        let mut s = Relation::with_columns("S", ["a"]);
        s.insert(Key(1), vec![Value::Int(10)]).unwrap();
        s.insert(Key(5), vec![Value::Int(10)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(r).add(s);
        let crs = CompiledRuleSet::compile(&rules).unwrap();
        for probe in [Value::Int(10), Value::Int(20), Value::Int(99)] {
            let sk = ids();
            let mut ev = Evaluator::new(&edb, &sk);
            let seeded = ev.head_rows_by_column(&crs, "T", 0, &probe).unwrap();
            assert_eq!(
                seeded,
                seeded_oracle(&rules, &edb, "T", 0, &probe),
                "{probe}"
            );
        }
    }

    #[test]
    fn compiled_frames_restore_after_backtracking() {
        // Two independent scans: backtracking across the first atom must not
        // leak bindings into later candidates (trail correctness).
        let mut a = Relation::with_columns("A", ["x"]);
        a.insert(Key(1), vec![Value::Int(1)]).unwrap();
        a.insert(Key(2), vec![Value::Int(2)]).unwrap();
        let mut b = Relation::with_columns("B", ["y"]);
        b.insert(Key(3), vec![Value::Int(30)]).unwrap();
        b.insert(Key(4), vec![Value::Int(40)]).unwrap();
        let mut edb = MapEdb::new();
        edb.add(a).add(b);
        // H(k, x, y) ← A(p, x), B(q, y), k = p * 100 + q.
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("H", &["k", "x", "y"]),
            vec![
                Literal::Pos(Atom::vars("A", &["p", "x"])),
                Literal::Pos(Atom::vars("B", &["q", "y"])),
                Literal::Assign {
                    var: "k".into(),
                    expr: Expr::Binary(
                        Box::new(Expr::Binary(
                            Box::new(Expr::col("p")),
                            inverda_storage::BinaryOp::Mul,
                            Box::new(Expr::lit(100)),
                        )),
                        inverda_storage::BinaryOp::Add,
                        Box::new(Expr::col("q")),
                    ),
                },
            ],
        )]);
        let sk = ids();
        let out = evaluate(&rules, &edb, &sk, &BTreeMap::new()).unwrap();
        assert_eq!(out["H"].len(), 4); // full cross product
        assert!(out["H"].contains_key(Key(103)));
        assert!(out["H"].contains_key(Key(204)));
    }
}
