//! Differential property tests for the batch (vectorized) executor
//! (`INVERDA_BATCH`, [`inverda_datalog::batch`]).
//!
//! Three engines evaluate every generated case: the naive reference
//! interpreter, the compiled frame machine (batch off), and the batch
//! executor (batch on) — crossed with parallel widths {1, 2, 4}. Results
//! must be **byte-identical**: derived relations, tuple order, and — when
//! a case fails — the exact error (the batch executor canonicalizes any
//! chunk error by replaying the chunk on the frame machine, so error
//! precedence may never depend on the knob).
//!
//! The generated rule shapes cover every plan operator: point joins on a
//! bound key, hash joins on a bound payload column, full-scan (cross)
//! joins, the three negation shapes (keyed / payload-probed / pure
//! existence), condition filters, and function assignments both binding a
//! fresh slot and re-checking a bound one.
//!
//! The batch knob is process-global, so every test serializes on one
//! mutex and scopes the knob per evaluation; a final engagement test
//! proves the executor actually runs on the large-fan-out shapes —
//! otherwise the differential tests would prove nothing.

use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_datalog::eval::{evaluate_compiled, CompiledRuleSet, MapEdb};
use inverda_datalog::{batch, naive, SkolemRegistry};
use inverda_storage::{BinaryOp, Expr, Key, Relation, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serializes tests in this binary: the batch knob and the worker width
/// are process-global.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Run `f` with the batch override pinned to `on`, restoring the
/// environment-driven default afterwards.
fn with_batch<T>(on: bool, f: impl FnOnce() -> T) -> T {
    batch::set_enabled(Some(on));
    let out = f();
    batch::set_enabled(None);
    out
}

fn registry() -> parking_lot::Mutex<SkolemRegistry> {
    parking_lot::Mutex::new(SkolemRegistry::new())
}

/// One mint-free rule, shaped to hit a chosen mix of batch plan operators.
#[derive(Debug, Clone)]
struct Spec {
    /// Base atom: 0 = T0(p,a,b), 1 = T1(p,a), 2 = T0(p,a,a) (dup var).
    base: u8,
    /// Join atom: 0 = T1(q,a) (hash join), 1 = T0(p,_,c) (point join),
    /// 2 = T1(p,c) (point join), 3 = T1(q,c) (full-scan cross join).
    join: Option<u8>,
    /// Negation: 0 = ¬T1(p,_) (anti point), 1 = ¬T0(_,a,_) (anti probe),
    /// 2 = ¬T1(_,_) (anti scan — pure emptiness).
    neg: Option<u8>,
    /// Condition on `a`: 0 = a < t, 1 = a >= t, 2 = a ≠ t.
    cond: Option<(u8, i64)>,
    /// Assignment: 0 = none, 1 = bind d = a + 1 (map binds a slot),
    /// 2 = re-check a = a + 0 (map as equality check on a bound slot).
    assign: u8,
    /// Head payload variable choice.
    payload: u8,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        0u8..3,
        prop::option::of(0u8..4),
        prop::option::of(0u8..3),
        prop::option::of((0u8..3, 0i64..6)),
        0u8..3,
        0u8..4,
    )
        .prop_map(|(base, join, neg, cond, assign, payload)| Spec {
            base,
            join,
            neg,
            cond,
            assign,
            payload,
        })
}

fn build_rule(spec: &Spec, head: &str) -> Rule {
    let mut body: Vec<Literal> = Vec::new();
    let mut avail: Vec<&str> = vec!["p"];
    match spec.base {
        0 => {
            body.push(Literal::Pos(Atom::vars("T0", &["p", "a", "b"])));
            avail.extend(["a", "b"]);
        }
        1 => {
            body.push(Literal::Pos(Atom::vars("T1", &["p", "a"])));
            avail.push("a");
        }
        _ => {
            body.push(Literal::Pos(Atom::vars("T0", &["p", "a", "a"])));
            avail.push("a");
        }
    }
    if let Some(j) = &spec.join {
        match j % 4 {
            0 => {
                body.push(Literal::Pos(Atom::vars("T1", &["q", "a"])));
                avail.push("q");
            }
            1 => {
                body.push(Literal::Pos(Atom::new(
                    "T0",
                    vec![Term::var("p"), Term::Anon, Term::var("c")],
                )));
                avail.push("c");
            }
            2 => {
                body.push(Literal::Pos(Atom::vars("T1", &["p", "c"])));
                avail.push("c");
            }
            _ => {
                body.push(Literal::Pos(Atom::vars("T1", &["q", "c"])));
                avail.extend(["q", "c"]);
            }
        }
    }
    if let Some(n) = &spec.neg {
        match n % 3 {
            0 => body.push(Literal::Neg(Atom::new(
                "T1",
                vec![Term::var("p"), Term::Anon],
            ))),
            1 => body.push(Literal::Neg(Atom::new(
                "T0",
                vec![Term::Anon, Term::var("a"), Term::Anon],
            ))),
            _ => body.push(Literal::Neg(Atom::new("T1", vec![Term::Anon, Term::Anon]))),
        }
    }
    if let Some((op, t)) = &spec.cond {
        let col = Expr::col("a");
        let lit = Expr::lit(*t);
        body.push(Literal::Cond(match op % 3 {
            0 => col.lt(lit),
            1 => col.ge(lit),
            _ => col.ne(lit),
        }));
    }
    match spec.assign {
        1 => {
            body.push(Literal::Assign {
                var: "d".into(),
                expr: Expr::Binary(
                    Box::new(Expr::col("a")),
                    BinaryOp::Add,
                    Box::new(Expr::lit(1)),
                ),
            });
            avail.push("d");
        }
        2 => body.push(Literal::Assign {
            var: "a".into(),
            expr: Expr::Binary(
                Box::new(Expr::col("a")),
                BinaryOp::Add,
                Box::new(Expr::lit(0)),
            ),
        }),
        _ => {}
    }
    let payload_var = avail[spec.payload as usize % avail.len()];
    Rule::new(Atom::vars(head, &["p", payload_var]), body)
}

type T0Rows = BTreeMap<u64, (i64, i64)>;
type T1Rows = BTreeMap<u64, i64>;

fn arb_edb() -> impl Strategy<Value = (T0Rows, T1Rows)> {
    (
        prop::collection::btree_map(0u64..12, (0i64..6, 0i64..6), 0..10),
        prop::collection::btree_map(0u64..12, 0i64..6, 0..8),
    )
}

fn build_edb(t0: &T0Rows, t1: &T1Rows) -> MapEdb {
    let mut rel0 = Relation::with_columns("T0", ["a", "b"]);
    for (k, (a, b)) in t0 {
        rel0.insert(Key(*k), vec![Value::Int(*a), Value::Int(*b)])
            .unwrap();
    }
    let mut rel1 = Relation::with_columns("T1", ["a"]);
    for (k, a) in t1 {
        rel1.insert(Key(*k), vec![Value::Int(*a)]).unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(rel0).add(rel1);
    edb
}

fn eval(
    rules: &RuleSet,
    edb: &MapEdb,
) -> Result<BTreeMap<String, Relation>, inverda_datalog::DatalogError> {
    let ids = registry();
    CompiledRuleSet::compile(rules)
        .and_then(|crs| evaluate_compiled(&crs, edb, &ids, &BTreeMap::new()))
}

proptest! {
    /// Batch on ≡ batch off ≡ naive on random mint-free rule sets at
    /// widths {1, 2, 4}: identical relations on success, identical error
    /// (Debug form, byte for byte) on failure.
    #[test]
    fn batch_equals_frame_machine_and_naive(
        specs in prop::collection::vec(arb_spec(), 1..4),
        (t0, t1) in arb_edb(),
        tsel in 0usize..3,
    ) {
        let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        inverda_datalog::parallel::set_threads(Some([1usize, 2, 4][tsel]));
        // The generated EDBs are tiny; drop the size gate so the batch
        // executor actually runs (thresholds never change computed bytes).
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let rules = RuleSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, s)| build_rule(s, if i % 2 == 0 { "H0" } else { "H1" }))
                .collect(),
        );
        let edb = build_edb(&t0, &t1);
        let off = with_batch(false, || eval(&rules, &edb));
        let on = with_batch(true, || eval(&rules, &edb));
        match (&off, &on) {
            (Ok(off), Ok(on)) => prop_assert_eq!(off, on, "diverged on:\n{}", rules),
            (Err(eo), Err(en)) => prop_assert_eq!(
                format!("{eo:?}"),
                format!("{en:?}"),
                "error precedence diverged on:\n{}",
                rules
            ),
            _ => prop_assert!(
                false,
                "one engine failed on:\n{}\noff: {:?}\non: {:?}",
                rules, off.as_ref().err(), on.as_ref().err()
            ),
        }
        if let Ok(on) = &on {
            let ids = registry();
            let n = naive::evaluate(&rules, &edb, &ids, &BTreeMap::new());
            if let Ok(n) = n {
                prop_assert_eq!(&n, on, "batch diverged from naive on:\n{}", rules);
            }
        }
        inverda_datalog::tuning::set_batch_min_keys(None);
        inverda_datalog::parallel::set_threads(None);
    }
}

/// Large-fan-out shapes at widths {1, 2, 4}: batch on must agree with
/// batch off byte for byte *and* the executor must actually engage
/// (chunks executed) — otherwise the differential tests prove nothing.
#[test]
fn batch_engages_and_agrees_on_large_fanout() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut a = Relation::with_columns("A", ["n"]);
    let mut b = Relation::with_columns("B", ["n"]);
    for i in 0..3_000u64 {
        a.insert(Key(i), vec![Value::Int((i % 97) as i64)]).unwrap();
        b.insert(Key(10_000 + i), vec![Value::Int((i % 89) as i64)])
            .unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(a).add(b);
    let rules = RuleSet::new(vec![
        // Hash join on the payload column + filter + map.
        Rule::new(
            Atom::vars("H0", &["q", "d"]),
            vec![
                Literal::Pos(Atom::vars("B", &["q", "n"])),
                Literal::Pos(Atom::new("A", vec![Term::Anon, Term::var("n")])),
                Literal::Cond(Expr::col("n").ge(Expr::lit(10))),
                Literal::Assign {
                    var: "d".into(),
                    expr: Expr::Binary(
                        Box::new(Expr::col("n")),
                        BinaryOp::Add,
                        Box::new(Expr::lit(1)),
                    ),
                },
            ],
        ),
        // Point join on the bound key + anti probe.
        Rule::new(
            Atom::vars("H1", &["p", "n"]),
            vec![
                Literal::Pos(Atom::vars("A", &["p", "n"])),
                Literal::Neg(Atom::new("B", vec![Term::Anon, Term::var("n")])),
            ],
        ),
    ]);
    for width in [1usize, 2, 4] {
        inverda_datalog::parallel::set_threads(Some(width));
        let off = with_batch(false, || eval(&rules, &edb)).unwrap();
        let before = batch::execs();
        let on = with_batch(true, || eval(&rules, &edb)).unwrap();
        assert!(
            batch::execs() > before,
            "batch executor did not engage at width {width}"
        );
        assert_eq!(on, off, "batch diverged at width {width}");
    }
    inverda_datalog::parallel::set_threads(None);
}

/// Error canonicalization by replay: a rule whose assignment fails on
/// *some* rows of a large scan must report the byte-identical error with
/// batch on and off at every width — a failing batch chunk is re-run on
/// the frame machine, so the first error in canonical order wins
/// regardless of chunking.
#[test]
fn batch_error_precedence_is_canonical() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut a = Relation::with_columns("A", ["n"]);
    for i in 0..2_000u64 {
        // Every 7th row holds text: `n + 1` fails there, first at Key(0).
        let v = if i % 7 == 0 {
            Value::text(format!("x{i}"))
        } else {
            Value::Int(i as i64)
        };
        a.insert(Key(i), vec![v]).unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(a);
    let rules = RuleSet::new(vec![Rule::new(
        Atom::vars("H", &["p", "d"]),
        vec![
            Literal::Pos(Atom::vars("A", &["p", "n"])),
            Literal::Assign {
                var: "d".into(),
                expr: Expr::Binary(
                    Box::new(Expr::col("n")),
                    BinaryOp::Add,
                    Box::new(Expr::lit(1)),
                ),
            },
        ],
    )]);
    for width in [1usize, 2, 4, 8] {
        inverda_datalog::parallel::set_threads(Some(width));
        let off = with_batch(false, || eval(&rules, &edb)).unwrap_err();
        let on = with_batch(true, || eval(&rules, &edb)).unwrap_err();
        assert_eq!(
            format!("{off:?}"),
            format!("{on:?}"),
            "error diverged at width {width}"
        );
    }
    inverda_datalog::parallel::set_threads(None);
}
