//! Property tests: the incremental delta engine agrees with full two-state
//! recomputation on the SPLIT rule shapes, for arbitrary states and writes.

use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_datalog::delta::{propagate, propagate_by_recompute, Delta, DeltaMap};
use inverda_datalog::eval::MapEdb;
use inverda_datalog::SkolemRegistry;
use inverda_storage::{Expr, Key, Relation, Value};
use parking_lot::Mutex;
use proptest::prelude::*;

use std::collections::BTreeMap;

/// γ_tgt of a two-arm SPLIT with overlapping conditions and aux guards —
/// the richest non-staged rule shape (Rules 12–17).
fn split_gamma_tgt() -> RuleSet {
    let vars = ["p", "a"];
    let c_r = Expr::col("a").lt(Expr::lit(6));
    let c_s = Expr::col("a").ge(Expr::lit(3));
    RuleSet::new(vec![
        Rule::new(
            Atom::vars("R", &vars),
            vec![
                Literal::Pos(Atom::vars("T", &vars)),
                Literal::Cond(c_r.clone()),
                Literal::Neg(Atom::vars("Rminus", &["p"])),
            ],
        ),
        Rule::new(
            Atom::vars("R", &vars),
            vec![
                Literal::Pos(Atom::vars("T", &vars)),
                Literal::Pos(Atom::vars("Rstar", &["p"])),
            ],
        ),
        Rule::new(
            Atom::vars("S", &vars),
            vec![
                Literal::Pos(Atom::vars("T", &vars)),
                Literal::Cond(c_s.clone()),
                Literal::Neg(Atom::vars("Sminus", &["p"])),
                Literal::Neg(Atom::new("Splus", vec![Term::var("p"), Term::Anon])),
            ],
        ),
        Rule::new(
            Atom::vars("S", &vars),
            vec![Literal::Pos(Atom::vars("Splus", &vars))],
        ),
        Rule::new(
            Atom::vars("Tprime", &vars),
            vec![
                Literal::Pos(Atom::vars("T", &vars)),
                Literal::Cond(c_r.negate()),
                Literal::Cond(c_s.negate()),
            ],
        ),
    ])
}

fn keyed_rel(name: &str, cols: &[&str], rows: &BTreeMap<u64, Vec<Value>>) -> Relation {
    let mut rel = Relation::with_columns(name, cols.to_vec());
    for (k, row) in rows {
        rel.insert(Key(*k), row.clone()).unwrap();
    }
    rel
}

type Rows = BTreeMap<u64, Vec<Value>>;

fn arb_state() -> impl Strategy<Value = (Rows, Vec<u64>, Rows)> {
    (
        prop::collection::btree_map(
            0u64..24,
            (0i64..10).prop_map(|a| vec![Value::Int(a)]),
            0..16,
        ),
        prop::collection::vec(0u64..24, 0..4),
        prop::collection::btree_map(0u64..24, (0i64..10).prop_map(|a| vec![Value::Int(a)]), 0..4),
    )
}

#[derive(Debug, Clone)]
enum W {
    Ins(u64, i64),
    Del(u64),
    Upd(u64, i64),
}

fn arb_writes() -> impl Strategy<Value = Vec<W>> {
    prop::collection::vec(
        prop_oneof![
            (24u64..40, 0i64..10).prop_map(|(k, a)| W::Ins(k, a)),
            (0u64..24).prop_map(W::Del),
            (0u64..24, 0i64..10).prop_map(|(k, a)| W::Upd(k, a)),
        ],
        1..6,
    )
}

proptest! {
    #[test]
    fn delta_equals_recompute_on_split_rules(
        (t_rows, rminus_keys, splus_rows) in arb_state(),
        writes in arb_writes(),
    ) {
        // EDB: T plus aux tables in an arbitrary (even inconsistent) state.
        let mut edb = MapEdb::new();
        edb.add(keyed_rel("T", &["a"], &t_rows));
        let mut rminus = Relation::with_columns("Rminus", [] as [&str; 0]);
        for k in &rminus_keys {
            let _ = rminus.insert(Key(*k), vec![]);
        }
        edb.add(rminus);
        edb.add(keyed_rel("Splus", &["a"], &splus_rows));
        edb.add(Relation::with_columns("Sminus", [] as [&str; 0]));
        edb.add(Relation::with_columns("Rstar", [] as [&str; 0]));

        // Build the input delta on T from the write list.
        let mut delta = Delta::new();
        for w in &writes {
            match w {
                W::Ins(k, a) => {
                    if !t_rows.contains_key(k) && !delta.inserts.contains_key(&Key(*k)) {
                        delta.inserts.insert(Key(*k), vec![Value::Int(*a)]);
                    }
                }
                W::Del(k) => {
                    if let Some(row) = t_rows.get(k) {
                        delta.deletes.entry(Key(*k)).or_insert_with(|| row.clone());
                    }
                }
                W::Upd(k, a) => {
                    if let Some(row) = t_rows.get(k) {
                        if let std::collections::btree_map::Entry::Vacant(e) = delta.deletes.entry(Key(*k)) {
                            e.insert(row.clone());
                            delta.inserts.insert(Key(*k), vec![Value::Int(*a)]);
                        }
                    }
                }
            }
        }
        let mut input = DeltaMap::new();
        input.insert("T".to_string(), delta);

        let rules = split_gamma_tgt();
        let ids1 = Mutex::new(SkolemRegistry::new());
        let fast = propagate(&rules, &edb, &input, &ids1, &BTreeMap::new()).unwrap();
        let ids2 = Mutex::new(SkolemRegistry::new());
        let slow =
            propagate_by_recompute(&rules, &edb, &input, &ids2, &BTreeMap::new()).unwrap();
        let slow: DeltaMap = slow.into_iter().filter(|(_, d)| !d.is_empty()).collect();
        let fast: DeltaMap = fast.into_iter().filter(|(_, d)| !d.is_empty()).collect();
        prop_assert_eq!(fast, slow);
    }
}

// ---------------------------------------------------------------------------
// Minting (non-staged) rule sets: the probe fan-out admits them since the
// chunk-arena lift — reservations are absorbed in canonical job order, so
// minted ids are byte-identical at every width.
// ---------------------------------------------------------------------------

/// Non-staged, id-minting rule set: `H(t, x) ← In(p, x), t = gen#H(x)` —
/// the head key itself is a generated id, so probes and re-derivations both
/// mint.
fn minting_rules() -> RuleSet {
    RuleSet::new(vec![Rule::new(
        Atom::vars("H", &["t", "x"]),
        vec![
            Literal::Pos(Atom::vars("In", &["p", "x"])),
            Literal::Skolem {
                var: "t".into(),
                generator: "gen#H".into(),
                args: vec![Term::var("x")],
            },
        ],
    )])
}

#[test]
fn minting_probe_fanout_is_width_invariant() {
    // Large enough to clear the parallel min-work threshold in both the
    // probe phase (inserts + deletes) and the re-derivation phase
    // (distinct candidate head keys).
    let mut in_rel = Relation::with_columns("In", ["x"]);
    for i in 0..300u64 {
        in_rel
            .insert(Key(i), vec![Value::text(format!("x{i}"))])
            .unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(in_rel);
    let mut delta = Delta::new();
    for i in 0..100u64 {
        delta
            .inserts
            .insert(Key(1000 + i), vec![Value::text(format!("fresh{i}"))]);
    }
    for i in 0..80u64 {
        delta
            .deletes
            .insert(Key(i), vec![Value::text(format!("x{i}"))]);
    }
    let mut input = DeltaMap::new();
    input.insert("In".into(), delta);
    let rules = minting_rules();
    let mut baseline: Option<(DeltaMap, String)> = None;
    for width in [1usize, 2, 4, 8] {
        inverda_datalog::parallel::set_threads(Some(width));
        let sk = Mutex::new(SkolemRegistry::new());
        let out = propagate(&rules, &edb, &input, &sk, &BTreeMap::new()).unwrap();
        let dump = sk.lock().dump();
        assert!(
            dump.contains("gen#H"),
            "the workload must actually mint (width {width})"
        );
        match &baseline {
            None => baseline = Some((out, dump)),
            Some((b_out, b_dump)) => {
                assert_eq!(b_out, &out, "width {width} changed the propagated delta");
                assert_eq!(b_dump, &dump, "width {width} changed minted ids");
            }
        }
    }
    inverda_datalog::parallel::set_threads(None);
}

#[test]
fn minting_propagation_agrees_with_recompute() {
    // With every payload's id pre-observed, neither path mints fresh ids,
    // so the incremental probe path and the full two-state recompute must
    // produce identical deltas (the mint-free analogue holds by the
    // differential proptest above; this pins the minting code path).
    let mut in_rel = Relation::with_columns("In", ["x"]);
    for i in 0..40u64 {
        in_rel
            .insert(Key(i), vec![Value::text(format!("x{i}"))])
            .unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(in_rel);
    let mut delta = Delta::new();
    // Insert a payload known to the registry but absent from In, delete one
    // present, update one to another known payload.
    delta.inserts.insert(Key(900), vec![Value::text("known-a")]);
    delta.deletes.insert(Key(3), vec![Value::text("x3")]);
    delta.deletes.insert(Key(7), vec![Value::text("x7")]);
    delta.inserts.insert(Key(7), vec![Value::text("known-b")]);
    let mut input = DeltaMap::new();
    input.insert("In".into(), delta);
    let rules = minting_rules();
    let seeded = || {
        let sk = Mutex::new(SkolemRegistry::new());
        {
            let mut reg = sk.lock();
            for i in 0..40u64 {
                reg.observe("gen#H", &[Value::text(format!("x{i}"))], 500 + i);
            }
            reg.observe("gen#H", &[Value::text("known-a")], 600);
            reg.observe("gen#H", &[Value::text("known-b")], 601);
        }
        sk
    };
    let ids1 = seeded();
    let fast = propagate(&rules, &edb, &input, &ids1, &BTreeMap::new()).unwrap();
    let ids2 = seeded();
    let slow = propagate_by_recompute(&rules, &edb, &input, &ids2, &BTreeMap::new()).unwrap();
    let slow: DeltaMap = slow.into_iter().filter(|(_, d)| !d.is_empty()).collect();
    let fast: DeltaMap = fast.into_iter().filter(|(_, d)| !d.is_empty()).collect();
    assert_eq!(fast, slow);
    assert!(!fast.is_empty(), "the write must be visible in H");
    assert_eq!(ids1.lock().dump(), ids2.lock().dump());
}
