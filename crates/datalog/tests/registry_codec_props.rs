//! Property tests: the skolem registry's binary encoding round-trips
//! exactly (memo, counters, and therefore future minting behavior), and
//! journal replay is equivalent to the original mutation sequence.

use inverda_datalog::SkolemRegistry;
use inverda_storage::{Codec, Value};
use proptest::prelude::*;

/// A random mutation script against a registry: (op selector, generator
/// selector, argument payload, id payload).
fn arb_script() -> impl Strategy<Value = Vec<(u8, u8, i64, u64)>> {
    prop::collection::vec((0u8..5, 0u8..3, any::<i64>(), 1u64..1000), 0..24)
}

fn run_script(reg: &mut SkolemRegistry, script: &[(u8, u8, i64, u64)]) {
    for (op, gen_sel, payload, id) in script {
        let generator = ["id_A", "id_B", "id_C"][*gen_sel as usize];
        let args = [Value::Int(*payload)];
        match op {
            0 => {
                reg.get_or_create(generator, &args);
            }
            1 => {
                reg.get_or_create_with(generator, &args, || *id);
            }
            2 => reg.observe(generator, &args, *id),
            3 => reg.unobserve(generator, &args),
            _ => reg.purge_generator(generator),
        }
    }
}

proptest! {
    /// encode→decode is identity for any reachable registry state, counters
    /// included (checked through subsequent minting behavior).
    #[test]
    fn registry_roundtrip_is_identity(script in arb_script()) {
        let mut reg = SkolemRegistry::new();
        run_script(&mut reg, &script);
        let bytes = reg.to_bytes();
        let decoded = SkolemRegistry::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes(), bytes);
        prop_assert_eq!(decoded.dump(), reg.dump());
        let mut a = decoded;
        let mut b = reg;
        for generator in ["id_A", "id_B", "id_C"] {
            prop_assert_eq!(
                a.get_or_create(generator, &[Value::Null]),
                b.get_or_create(generator, &[Value::Null])
            );
        }
    }

    /// Journal replay lands on the same state as the original mutations.
    #[test]
    fn journal_replay_matches_original(script in arb_script()) {
        let mut live = SkolemRegistry::new();
        live.set_journaling(true);
        run_script(&mut live, &script);
        let mut replayed = SkolemRegistry::new();
        for op in live.take_journal() {
            replayed.apply_op(&op);
        }
        prop_assert_eq!(replayed.to_bytes(), live.to_bytes());
    }

    /// Truncated registry bytes are always rejected, never a panic.
    #[test]
    fn truncated_registry_is_rejected(script in arb_script(), cut_seed in any::<u64>()) {
        let mut reg = SkolemRegistry::new();
        run_script(&mut reg, &script);
        let bytes = reg.to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(SkolemRegistry::from_bytes(&bytes[..cut]).is_err());
    }
}
