//! Differential property tests: the compiled evaluator (`eval`) must agree
//! **exactly** with the naive reference interpreter (`naive`) on randomized
//! rule sets and EDBs — full evaluation, key-seeded evaluation, and delta
//! propagation. "Exactly" includes the memoized skolem identifiers, whose
//! assignment depends on evaluation order: both engines are required to
//! explore joins in the same order.
//!
//! The generated rule shapes cover everything the paper's γ mappings use:
//! full-scan joins on unbound keys (the index path), key-bound joins (the
//! point-lookup path), duplicate variables, negation with and without bound
//! keys, condition predicates, function assignments, skolem generators, and
//! skolem-generated head keys (the non-pushable fallback of
//! `head_row_for_key`), plus multi-rule staging where later rules read
//! earlier heads.

use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_datalog::delta::{propagate, Delta, DeltaMap, PatchedEdb};
use inverda_datalog::eval::{evaluate_compiled, CompiledRuleSet, Evaluator, MapEdb};
use inverda_datalog::{naive, SkolemRegistry};
use inverda_storage::{Expr, Key, Relation, Value};
use parking_lot::Mutex;
use proptest::prelude::*;

use std::collections::BTreeMap;

/// Everything needed to deterministically build one rule.
#[derive(Debug, Clone)]
struct RuleSpec {
    /// First atom: 0 = T0(p,a,b), 1 = T1(p,a), 2 = T0(p,a,a) (dup var).
    base: u8,
    /// Extra atom: 0 = T1(q,a) (join on payload — index path),
    /// 1 = T0(p,_,c) (key join — point-lookup path), 2 = T1(p,c).
    join: Option<u8>,
    /// Negation: 0 = ¬T1(p,_) (keyed), 1 = ¬T0(_,a,_) (payload-probed),
    /// 2 = ¬T1(_,a).
    neg: Option<u8>,
    /// Condition on `a`: 0 = a < t, 1 = a >= t, 2 = a ≠ t.
    cond: Option<(u8, i64)>,
    /// Add `d = a + 1` and use `d` in the head payload.
    assign: bool,
    /// Skolem `s = gen(a)`; when `keyed` the head key becomes `s`
    /// (non-pushable — exercises the full-eval fallback).
    skolem: Option<SkolemSpec>,
    /// Head payload variable choice.
    payload: u8,
    /// For rules after the first: read the previous rule's head instead of
    /// T0/T1 (staged rule set).
    use_prev_head: bool,
}

#[derive(Debug, Clone)]
struct SkolemSpec {
    keyed: bool,
    two_args: bool,
}

fn arb_rule_spec() -> impl Strategy<Value = RuleSpec> {
    (
        (
            0u8..3,
            prop::option::of(0u8..3),
            prop::option::of(0u8..3),
            prop::option::of((0u8..3, 0i64..6)),
            prop::bool::ANY,
        ),
        (
            prop::option::of((prop::bool::ANY, prop::bool::ANY)),
            0u8..4,
            prop::bool::ANY,
        ),
    )
        .prop_map(
            |((base, join, neg, cond, assign), (skolem, payload, use_prev_head))| RuleSpec {
                base,
                join,
                neg,
                cond,
                assign,
                skolem: skolem.map(|(keyed, two_args)| SkolemSpec { keyed, two_args }),
                payload,
                use_prev_head,
            },
        )
}

/// Build the concrete rule for a spec. `prev_head` is the head of the
/// previous rule (for staging), `head` this rule's head relation.
fn build_rule(spec: &RuleSpec, head: &str, prev_head: Option<&str>) -> Rule {
    let mut body: Vec<Literal> = Vec::new();
    let mut avail: Vec<&str> = vec!["p"];
    match (spec.use_prev_head, prev_head) {
        (true, Some(prev)) => {
            // Previous heads have arity 2: H(p, x).
            body.push(Literal::Pos(Atom::vars(prev, &["p", "a"])));
            avail.push("a");
        }
        _ => match spec.base {
            0 => {
                body.push(Literal::Pos(Atom::vars("T0", &["p", "a", "b"])));
                avail.extend(["a", "b"]);
            }
            1 => {
                body.push(Literal::Pos(Atom::vars("T1", &["p", "a"])));
                avail.push("a");
            }
            _ => {
                body.push(Literal::Pos(Atom::vars("T0", &["p", "a", "a"])));
                avail.push("a");
            }
        },
    }
    if avail.contains(&"a") {
        if let Some(j) = &spec.join {
            match j % 3 {
                0 => {
                    body.push(Literal::Pos(Atom::vars("T1", &["q", "a"])));
                    avail.push("q");
                }
                1 => {
                    body.push(Literal::Pos(Atom::new(
                        "T0",
                        vec![Term::var("p"), Term::Anon, Term::var("c")],
                    )));
                    avail.push("c");
                }
                _ => {
                    body.push(Literal::Pos(Atom::vars("T1", &["p", "c"])));
                    avail.push("c");
                }
            }
        }
        if let Some(n) = &spec.neg {
            match n % 3 {
                0 => body.push(Literal::Neg(Atom::new(
                    "T1",
                    vec![Term::var("p"), Term::Anon],
                ))),
                1 => body.push(Literal::Neg(Atom::new(
                    "T0",
                    vec![Term::Anon, Term::var("a"), Term::Anon],
                ))),
                _ => body.push(Literal::Neg(Atom::new(
                    "T1",
                    vec![Term::Anon, Term::var("a")],
                ))),
            }
        }
        if let Some((op, t)) = &spec.cond {
            let col = Expr::col("a");
            let lit = Expr::lit(*t);
            body.push(Literal::Cond(match op % 3 {
                0 => col.lt(lit),
                1 => col.ge(lit),
                _ => col.ne(lit),
            }));
        }
        if spec.assign {
            body.push(Literal::Assign {
                var: "d".into(),
                expr: Expr::Binary(
                    Box::new(Expr::col("a")),
                    inverda_storage::BinaryOp::Add,
                    Box::new(Expr::lit(1)),
                ),
            });
            avail.push("d");
        }
        if let Some(sk) = &spec.skolem {
            let mut args = vec![Term::var("a")];
            if sk.two_args {
                args.push(Term::var("p"));
            }
            body.push(Literal::Skolem {
                var: "s".into(),
                generator: "gen".into(),
                args,
            });
            avail.push("s");
        }
    }
    let key_var = match &spec.skolem {
        Some(sk) if sk.keyed && avail.contains(&"s") => "s",
        _ => "p",
    };
    let payload_var = avail[spec.payload as usize % avail.len()];
    Rule::new(Atom::vars(head, &[key_var, payload_var]), body)
}

fn build_rule_set(specs: &[RuleSpec]) -> RuleSet {
    let mut rules = Vec::new();
    let mut prev: Option<String> = None;
    for (i, spec) in specs.iter().enumerate() {
        // Two head names so multi-rule sets can both union and stage.
        let head = if i % 2 == 0 { "H0" } else { "H1" };
        rules.push(build_rule(spec, head, prev.as_deref()));
        prev = Some(head.to_string());
    }
    RuleSet::new(rules)
}

type T0Rows = BTreeMap<u64, (i64, i64)>;
type T1Rows = BTreeMap<u64, i64>;

fn arb_edb() -> impl Strategy<Value = (T0Rows, T1Rows)> {
    (
        prop::collection::btree_map(0u64..12, (0i64..6, 0i64..6), 0..10),
        prop::collection::btree_map(0u64..12, 0i64..6, 0..8),
    )
}

fn build_edb(t0: &T0Rows, t1: &T1Rows) -> MapEdb {
    let mut rel0 = Relation::with_columns("T0", ["a", "b"]);
    for (k, (a, b)) in t0 {
        rel0.insert(Key(*k), vec![Value::Int(*a), Value::Int(*b)])
            .unwrap();
    }
    let mut rel1 = Relation::with_columns("T1", ["a"]);
    for (k, a) in t1 {
        rel1.insert(Key(*k), vec![Value::Int(*a)]).unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(rel0).add(rel1);
    edb
}

fn registry() -> Mutex<SkolemRegistry> {
    Mutex::new(SkolemRegistry::new())
}

proptest! {
    /// Full bottom-up evaluation: identical derived relations (and identical
    /// skolem id assignment), or both engines reject the rule set.
    #[test]
    fn full_evaluation_matches_naive(
        specs in prop::collection::vec(arb_rule_spec(), 1..4),
        (t0, t1) in arb_edb(),
        tsel in 0usize..4,
        batch in any::<bool>(),
    ) {
        // Parallel ≡ sequential ≡ naive: the compiled engine must produce
        // byte-identical output (including skolem id order) at any width —
        // staged and id-minting rule sets included, now that minting goes
        // through the reserve-then-commit cycle. The batch (vectorized)
        // executor is randomized on top: any knob combination must agree.
        inverda_datalog::parallel::set_threads(Some([1usize, 2, 4, 8][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let rules = build_rule_set(&specs);
        let edb = build_edb(&t0, &t1);
        let naive_ids = registry();
        let naive_out = naive::evaluate(&rules, &edb, &naive_ids, &BTreeMap::new());
        let compiled_ids = registry();
        let compiled_out = CompiledRuleSet::compile(&rules).and_then(|crs| {
            evaluate_compiled(&crs, &edb, &compiled_ids, &BTreeMap::new())
        });
        match (naive_out, compiled_out) {
            (Ok(n), Ok(c)) => prop_assert_eq!(n, c, "diverged on:\n{}", rules),
            (Err(_), Err(_)) => {}
            (n, c) => prop_assert!(
                false,
                "one engine failed on:\n{}\nnaive: {:?}\ncompiled: {:?}",
                rules, n.err(), c.err()
            ),
        }
    }

    /// Key-seeded evaluation (`head_row_for_key`): identical per-key rows
    /// across pushable and non-pushable (skolem-keyed) head keys, with the
    /// memo warm in both engines.
    #[test]
    fn key_seeded_evaluation_matches_naive(
        specs in prop::collection::vec(arb_rule_spec(), 1..3),
        (t0, t1) in arb_edb(),
    ) {
        let rules = build_rule_set(&specs);
        let edb = build_edb(&t0, &t1);
        let Ok(crs) = CompiledRuleSet::compile(&rules) else {
            // Unsafe rule set: covered by `full_evaluation_matches_naive`.
            return Ok(());
        };
        let naive_ids = registry();
        let compiled_ids = registry();
        let mut naive_ev = naive::Evaluator::new(&edb, &naive_ids);
        let mut compiled_ev = Evaluator::new(&edb, &compiled_ids);
        for head in ["H0", "H1"] {
            for k in 0..18u64 {
                let n = naive_ev.head_row_for_key(&rules, head, Key(k));
                let c = compiled_ev.head_row_for_key(&crs, head, Key(k));
                match (n, c) {
                    (Ok(n), Ok(c)) => prop_assert_eq!(
                        n, c, "diverged at {}#{} on:\n{}", head, k, rules
                    ),
                    (Err(_), Err(_)) => return Ok(()),
                    (n, c) => prop_assert!(
                        false,
                        "one engine failed at {}#{} on:\n{}\nnaive: {:?}\ncompiled: {:?}",
                        head, k, rules, n.err(), c.err()
                    ),
                }
            }
        }
    }

    /// Delta propagation through the compiled probe path agrees with an
    /// independent oracle: evaluate both states with the *naive* engine and
    /// diff the heads. (Skolem-free rule sets: the oracle evaluates twice,
    /// which would legitimately mint ids in a different order.)
    #[test]
    fn propagation_matches_naive_two_state_diff(
        specs in prop::collection::vec(arb_rule_spec(), 1..3),
        (t0, t1) in arb_edb(),
        inserts in prop::collection::btree_map(12u64..18, 0i64..6, 0..3),
        deletes in prop::collection::vec(0u64..12, 0..3),
        updates in prop::collection::btree_map(0u64..12, 0i64..6, 0..3),
        tsel in 0usize..4,
        batch in any::<bool>(),
    ) {
        inverda_datalog::parallel::set_threads(Some([1usize, 2, 4, 8][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let specs: Vec<RuleSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.skolem = None;
                s
            })
            .collect();
        let rules = build_rule_set(&specs);
        let edb = build_edb(&t0, &t1);
        if CompiledRuleSet::compile(&rules).is_err() {
            return Ok(());
        }

        // Input delta on T1.
        let mut delta = Delta::new();
        for (k, a) in &inserts {
            delta.inserts.insert(Key(*k), vec![Value::Int(*a)]);
        }
        for k in &deletes {
            if let Some(a) = t1.get(k) {
                delta.deletes.entry(Key(*k)).or_insert_with(|| vec![Value::Int(*a)]);
            }
        }
        for (k, a) in &updates {
            if let Some(old) = t1.get(k) {
                if let std::collections::btree_map::Entry::Vacant(e) =
                    delta.deletes.entry(Key(*k))
                {
                    e.insert(vec![Value::Int(*old)]);
                    delta.inserts.insert(Key(*k), vec![Value::Int(*a)]);
                }
            }
        }
        let mut input = DeltaMap::new();
        input.insert("T1".to_string(), delta);

        let ids = registry();
        let fast = propagate(&rules, &edb, &input, &ids, &BTreeMap::new());

        // Oracle: naive two-state evaluation and diff.
        let oracle_ids = registry();
        let old_out = naive::evaluate(&rules, &edb, &oracle_ids, &BTreeMap::new());
        let patched = PatchedEdb::new(&edb, &input);
        let oracle_ids2 = registry();
        let new_out = naive::evaluate(&rules, &patched, &oracle_ids2, &BTreeMap::new());
        let (Ok(fast), Ok(old_out), Ok(new_out)) = (fast, old_out, new_out) else {
            return Ok(());
        };
        let mut slow = DeltaMap::new();
        for (head, new_rel) in &new_out {
            let d = new_rel.diff(&old_out[head]);
            let mut delta = Delta::new();
            for (k, row) in d.deletes {
                delta.deletes.insert(k, row);
            }
            for (k, row) in d.inserts {
                delta.inserts.insert(k, row);
            }
            for (k, old_row, new_row) in d.updates {
                delta.deletes.insert(k, old_row);
                delta.inserts.insert(k, new_row);
            }
            if !delta.is_empty() {
                slow.insert(head.clone(), delta);
            }
        }
        let fast: DeltaMap = fast.into_iter().filter(|(_, d)| !d.is_empty()).collect();
        prop_assert_eq!(fast, slow, "diverged on:\n{}", rules);
    }
}

/// Large-input differential check that actually crosses the parallel
/// gates (the proptest cases above are small, so chunked scans and the
/// delta fan-out may fall below their work thresholds): a multi-rule
/// unbound join over a few thousand rows and a several-hundred-tuple
/// delta, evaluated at widths 1/2/4/8, must be byte-identical — results,
/// insertion order, and the naive oracle all agree.
#[test]
fn parallel_widths_agree_on_large_inputs() {
    use inverda_datalog::ast::Atom;
    use inverda_storage::Expr;

    let mut a = Relation::with_columns("A", ["n"]);
    let mut b = Relation::with_columns("B", ["n"]);
    for i in 0..3_000u64 {
        a.insert(Key(i), vec![Value::Int((i % 97) as i64)]).unwrap();
        b.insert(Key(10_000 + i), vec![Value::Int((i % 89) as i64)])
            .unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(a).add(b);
    // Two independent rules: an unbound join (chunked scan + index probe)
    // and a filter (chunked scan).
    let rules = RuleSet::new(vec![
        Rule::new(
            Atom::vars("H0", &["q", "n"]),
            vec![
                Literal::Pos(Atom::vars("B", &["q", "n"])),
                Literal::Pos(Atom::new("A", vec![Term::Anon, Term::var("n")])),
            ],
        ),
        Rule::new(
            Atom::vars("H1", &["p", "n"]),
            vec![
                Literal::Pos(Atom::vars("A", &["p", "n"])),
                Literal::Cond(Expr::col("n").ge(Expr::lit(50))),
            ],
        ),
    ]);
    let crs = CompiledRuleSet::compile(&rules).unwrap();

    // A delta big enough to cross the propagation fan-out threshold.
    let mut delta = Delta::new();
    for i in 0..400u64 {
        delta
            .inserts
            .insert(Key(20_000 + i), vec![Value::Int((i % 97) as i64)]);
    }
    for i in 0..200u64 {
        delta
            .deletes
            .insert(Key(10_000 + i), vec![Value::Int((i % 89) as i64)]);
    }
    let mut input = DeltaMap::new();
    input.insert("B".to_string(), delta);

    let mut eval_outputs = Vec::new();
    let mut prop_outputs = Vec::new();
    for width in [1usize, 2, 4, 8] {
        for batch in [false, true] {
            inverda_datalog::parallel::set_threads(Some(width));
            inverda_datalog::batch::set_enabled(Some(batch));
            let ids = registry();
            eval_outputs.push(evaluate_compiled(&crs, &edb, &ids, &BTreeMap::new()).unwrap());
            let ids2 = registry();
            prop_outputs.push(propagate(&rules, &edb, &input, &ids2, &BTreeMap::new()).unwrap());
        }
    }
    inverda_datalog::parallel::set_threads(None);
    inverda_datalog::batch::set_enabled(None);
    let naive_ids = registry();
    let oracle = naive::evaluate(&rules, &edb, &naive_ids, &BTreeMap::new()).unwrap();
    for (out, prop_out) in eval_outputs.iter().zip(&prop_outputs) {
        assert_eq!(out, &eval_outputs[0], "evaluation diverged across widths");
        assert_eq!(out, &oracle, "parallel evaluation diverged from naive");
        assert_eq!(
            prop_out, &prop_outputs[0],
            "propagation diverged across widths"
        );
    }
}

/// The staged/minting analogue of [`parallel_widths_agree_on_large_inputs`]:
/// a rule set that mints skolem ids (including as head keys), stages a later
/// rule over the minted head, and is large enough to cross the chunked
/// fan-out thresholds. At widths 1/2/4/8 the derived relations *and* the
/// final skolem registry (assignment order included — the dump is
/// order-sensitive through the id values) must be byte-identical to each
/// other and to the naive oracle.
#[test]
fn staged_minting_widths_agree_on_large_inputs() {
    use inverda_datalog::ast::Atom;
    use inverda_storage::Expr;

    let mut a = Relation::with_columns("A", ["n"]);
    for i in 0..3_000u64 {
        a.insert(Key(i), vec![Value::Int((i % 37) as i64)]).unwrap();
    }
    let mut edb = MapEdb::new();
    edb.add(a);
    let rules = RuleSet::new(vec![
        // Minted head key (non-pushable; payload dedup collapses 3000 rows
        // onto 37 authors).
        Rule::new(
            Atom::vars("Author", &["s", "n"]),
            vec![
                Literal::Pos(Atom::vars("A", &["p", "n"])),
                Literal::Skolem {
                    var: "s".into(),
                    generator: "gen_author".into(),
                    args: vec![Term::var("n")],
                },
            ],
        ),
        // Minted payload cell, keyed by the source key.
        Rule::new(
            Atom::vars("H", &["p", "n", "s"]),
            vec![
                Literal::Pos(Atom::vars("A", &["p", "n"])),
                Literal::Skolem {
                    var: "s".into(),
                    generator: "gen_author".into(),
                    args: vec![Term::var("n")],
                },
            ],
        ),
        // Staged: scans the minted head (its chunked depth-0 scan runs over
        // a placeholder-keyed derived relation).
        Rule::new(
            Atom::vars("J", &["s", "n"]),
            vec![
                Literal::Pos(Atom::vars("Author", &["s", "n"])),
                Literal::Cond(Expr::col("n").ge(Expr::lit(5))),
            ],
        ),
    ]);
    let crs = CompiledRuleSet::compile(&rules).unwrap();
    assert!(crs.staged() && crs.mints_ids());

    let mut outputs = Vec::new();
    for width in [1usize, 2, 4, 8] {
        inverda_datalog::parallel::set_threads(Some(width));
        let ids = registry();
        let out = evaluate_compiled(&crs, &edb, &ids, &BTreeMap::new()).unwrap();
        outputs.push((out, ids.lock().dump()));
    }
    inverda_datalog::parallel::set_threads(None);
    let naive_ids = registry();
    let oracle = naive::evaluate(&rules, &edb, &naive_ids, &BTreeMap::new()).unwrap();
    let oracle_dump = naive_ids.lock().dump();
    assert_eq!(oracle["Author"].len(), 37);
    assert_eq!(oracle["H"].len(), 3_000);
    for (out, dump) in &outputs {
        assert_eq!(
            out, &outputs[0].0,
            "minting evaluation diverged across widths"
        );
        assert_eq!(out, &oracle, "minting evaluation diverged from naive");
        assert_eq!(dump, &oracle_dump, "skolem assignment diverged");
    }
}
