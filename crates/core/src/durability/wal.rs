//! The append-only write-ahead log: record types, file framing, and the
//! group-commit writer.
//!
//! A log file `wal-<generation>.log` starts with one header frame (magic +
//! generation) followed by one CRC frame per [`Record`]. Frames are the
//! `[len][crc32][payload]` format of [`inverda_storage::codec`]; a record
//! is the unit of atomicity — on recovery, the longest prefix of
//! checksum-valid frames is replayed and anything after it (a torn or
//! corrupt tail) is truncated away.

use super::DurabilityMode;
use inverda_storage::codec::{read_frame, write_frame, Codec, FrameScan, Reader};
use inverda_storage::{StorageError, WriteBatch};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use inverda_datalog::RegOp;

/// Magic bytes opening every WAL file's header frame.
pub const WAL_MAGIC: &[u8; 8] = b"IVWALv01";

/// What a committed unit of state change did, beyond its registry effects.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    /// A genealogy DDL statement (`CREATE SCHEMA VERSION …` /
    /// `DROP SCHEMA VERSION …`), stored as canonical BiDEL text and
    /// re-executed on replay.
    Ddl(String),
    /// A `MATERIALIZE` target switch, stored as the new materialization
    /// schema's SMO ids; replay re-runs the migration procedure (which
    /// re-mints deterministically from the recorded key sequence).
    Materialize(Vec<u32>),
    /// A validated physical write batch from `drain`, replayed directly
    /// against storage (no rule re-evaluation needed).
    Batch(WriteBatch),
    /// Registry deltas only (seeded ids, or the residue of a statement that
    /// failed after minting through its read path).
    RegistryOnly,
}

/// One committed unit of database state change.
///
/// Replay order is fixed: apply `reg_ops`, restore the key sequence so the
/// next minted key is `key_seq`, then execute the body. For `Materialize`,
/// `key_seq` is sampled *before* the migration ran (its mints are not in
/// `reg_ops` — replay re-executes them); for everything else it is the
/// value at append time.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Journaled skolem-registry mutations belonging to this unit.
    pub reg_ops: Vec<RegOp>,
    /// Key-sequence position (`SequenceSet::current_key`) to restore.
    pub key_seq: u64,
    /// The state change itself.
    pub body: RecordBody,
}

const BODY_DDL: u8 = 0;
const BODY_MATERIALIZE: u8 = 1;
const BODY_BATCH: u8 = 2;
const BODY_REGISTRY_ONLY: u8 = 3;

impl Codec for Record {
    fn encode(&self, out: &mut Vec<u8>) {
        self.reg_ops.encode(out);
        self.key_seq.encode(out);
        match &self.body {
            RecordBody::Ddl(text) => {
                out.push(BODY_DDL);
                text.encode(out);
            }
            RecordBody::Materialize(smos) => {
                out.push(BODY_MATERIALIZE);
                smos.encode(out);
            }
            RecordBody::Batch(batch) => {
                out.push(BODY_BATCH);
                batch.encode(out);
            }
            RecordBody::RegistryOnly => out.push(BODY_REGISTRY_ONLY),
        }
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        let reg_ops = Vec::<RegOp>::decode(r)?;
        let key_seq = r.u64()?;
        let body = match r.u8()? {
            BODY_DDL => RecordBody::Ddl(r.string()?),
            BODY_MATERIALIZE => RecordBody::Materialize(Vec::<u32>::decode(r)?),
            BODY_BATCH => RecordBody::Batch(WriteBatch::decode(r)?),
            BODY_REGISTRY_ONLY => RecordBody::RegistryOnly,
            t => return Err(StorageError::codec(format!("invalid record body tag {t}"))),
        };
        Ok(Record {
            reg_ops,
            key_seq,
            body,
        })
    }
}

fn header_payload(magic: &[u8; 8], generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(magic);
    generation.encode(&mut out);
    out
}

/// The log file name of one checkpoint generation.
pub fn wal_file_name(generation: u64) -> String {
    format!("wal-{generation}.log")
}

/// Result of scanning one framed log file: the decodable record prefix
/// plus where the valid bytes end (the torn-tail truncation point). The
/// record type is whatever [`Codec`] the log stores — [`Record`] for the
/// database WAL, the branch layer's record for its own log.
#[derive(Debug)]
pub struct LogScan<T> {
    /// Complete, checksum-valid records in append order.
    pub records: Vec<T>,
    /// Byte length of the valid prefix (header + complete records); the
    /// file is truncated to this length on recovery.
    pub valid_len: u64,
    /// Whether the header frame was intact, of the expected magic, and of
    /// the expected generation. When false the whole file is discarded
    /// (`valid_len` is 0 and the header is rewritten).
    pub header_ok: bool,
}

/// A scan of the database WAL proper.
pub type WalScan = LogScan<Record>;

/// Scan a framed log file under `magic` / `generation`, stopping at the
/// first torn or corrupt frame (the torn-tail rule: a record is committed
/// iff its full frame made it to disk with a matching checksum). A missing
/// file scans as empty with `header_ok: false`.
pub fn scan_log<T: Codec>(
    path: &Path,
    magic: &[u8; 8],
    generation: u64,
) -> inverda_storage::Result<LogScan<T>> {
    let empty = LogScan {
        records: Vec::new(),
        valid_len: 0,
        header_ok: false,
    };
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(empty),
        Err(e) => return Err(StorageError::io(format!("read log {}", path.display()), e)),
    };
    // Header frame first; a torn or mismatched header discards the file.
    let mut offset = match read_frame(&buf) {
        FrameScan::Ok { payload, consumed }
            if payload == header_payload(magic, generation).as_slice() =>
        {
            consumed
        }
        _ => return Ok(empty),
    };
    let mut records = Vec::new();
    while let FrameScan::Ok { payload, consumed } = read_frame(&buf[offset..]) {
        match T::from_bytes(payload) {
            Ok(record) => records.push(record),
            // A checksum-valid frame that does not decode is treated like a
            // corrupt tail: stop and truncate here.
            Err(_) => break,
        }
        offset += consumed;
    }
    Ok(LogScan {
        records,
        valid_len: offset as u64,
        header_ok: true,
    })
}

/// Scan the database WAL file of `generation` ([`scan_log`] under
/// [`WAL_MAGIC`]).
pub fn scan_wal(path: &Path, generation: u64) -> inverda_storage::Result<WalScan> {
    scan_log(path, WAL_MAGIC, generation)
}

/// Appends records to one WAL file with per-commit or group fsync.
///
/// Record bytes are written to the OS immediately (no user-space buffer),
/// so the file contents always reflect every append; the mode only governs
/// when `fsync` makes them crash-durable. Group commit amortizes one fsync
/// over up to `group_size` appends — the admission-queue batching the
/// serving layer will feed later.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    mode: DurabilityMode,
    group_size: u64,
    unsynced: u64,
    len: u64,
    records: u64,
}

impl WalWriter {
    /// Create (truncate) the log file of `generation` and write its header,
    /// fsynced — called at startup of a fresh database and by checkpoint
    /// rotation.
    pub fn create(
        dir: &Path,
        generation: u64,
        mode: DurabilityMode,
        group_size: u64,
    ) -> inverda_storage::Result<Self> {
        Self::create_at(
            dir.join(wal_file_name(generation)),
            WAL_MAGIC,
            generation,
            mode,
            group_size,
        )
    }

    /// Create (truncate) a framed log at an explicit path under an explicit
    /// magic — the branch layer's entry point ([`create`](Self::create)
    /// delegates here with [`WAL_MAGIC`]).
    pub fn create_at(
        path: PathBuf,
        magic: &[u8; 8],
        generation: u64,
        mode: DurabilityMode,
        group_size: u64,
    ) -> inverda_storage::Result<Self> {
        let io = |e| StorageError::io(format!("create log {}", path.display()), e);
        let mut file = File::create(&path).map_err(io)?;
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &header_payload(magic, generation));
        file.write_all(&bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
        let len = bytes.len() as u64;
        Ok(WalWriter {
            file,
            path,
            mode,
            group_size: group_size.max(1),
            unsynced: 0,
            len,
            records: 0,
        })
    }

    /// Attach to an existing log file after recovery: truncate the torn
    /// tail at `valid_len` and continue appending from there.
    /// `recovered_records` is the record count of the valid prefix.
    pub fn attach(
        dir: &Path,
        generation: u64,
        valid_len: u64,
        recovered_records: u64,
        mode: DurabilityMode,
        group_size: u64,
    ) -> inverda_storage::Result<Self> {
        Self::attach_at(
            dir.join(wal_file_name(generation)),
            valid_len,
            recovered_records,
            mode,
            group_size,
        )
    }

    /// Attach to a framed log at an explicit path (the header is already on
    /// disk and is not rewritten, so no magic is needed;
    /// [`attach`](Self::attach) delegates here).
    pub fn attach_at(
        path: PathBuf,
        valid_len: u64,
        recovered_records: u64,
        mode: DurabilityMode,
        group_size: u64,
    ) -> inverda_storage::Result<Self> {
        let io = |e| StorageError::io(format!("attach log {}", path.display()), e);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(io)?;
        file.set_len(valid_len).map_err(io)?;
        file.sync_all().map_err(io)?;
        Ok(WalWriter {
            file,
            path,
            mode,
            group_size: group_size.max(1),
            unsynced: 0,
            len: valid_len,
            records: recovered_records,
        })
    }

    /// Append one record frame; fsyncs per the commit mode.
    pub fn append<T: Codec>(&mut self, record: &T) -> inverda_storage::Result<()> {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &record.to_bytes());
        self.write_at_end(&bytes)?;
        self.records += 1;
        match self.mode {
            DurabilityMode::Commit => self.sync()?,
            DurabilityMode::Group => {
                self.unsynced += 1;
                if self.unsynced >= self.group_size {
                    self.sync()?;
                }
            }
            DurabilityMode::Off => {}
        }
        Ok(())
    }

    fn write_at_end(&mut self, bytes: &[u8]) -> inverda_storage::Result<()> {
        use std::io::Seek;
        let io = |e| StorageError::io(format!("append wal {}", self.path.display()), e);
        self.file.seek(std::io::SeekFrom::End(0)).map_err(io)?;
        self.file.write_all(bytes).map_err(io)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Change the group-commit window on the live writer. The serving
    /// pipeline sets this to `u64::MAX` so per-record counting never
    /// triggers an fsync — the pipeline syncs once per drained group
    /// instead.
    pub fn set_group_size(&mut self, group_size: u64) {
        self.group_size = group_size.max(1);
    }

    /// Force any unsynced appends to disk.
    pub fn sync(&mut self) -> inverda_storage::Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io(format!("fsync wal {}", self.path.display()), e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Current file length in bytes (header + appended records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the log holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Records in the log: recovered prefix plus appends since.
    pub fn record_count(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::{Key, Value};

    fn sample_records() -> Vec<Record> {
        vec![
            Record {
                reg_ops: vec![RegOp::Mint {
                    generator: "id_A".into(),
                    args: vec![Value::text("x")],
                    id: 7,
                }],
                key_seq: 8,
                body: RecordBody::Batch({
                    let mut b = WriteBatch::new();
                    b.insert("T", Key(7), vec![Value::Int(1)]);
                    b
                }),
            },
            Record {
                reg_ops: vec![],
                key_seq: 8,
                body: RecordBody::Ddl("DROP SCHEMA VERSION V;".into()),
            },
            Record {
                reg_ops: vec![RegOp::Purge {
                    generator: "id_A".into(),
                }],
                key_seq: 9,
                body: RecordBody::Materialize(vec![1, 2]),
            },
            Record {
                reg_ops: vec![],
                key_seq: 9,
                body: RecordBody::RegistryOnly,
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for record in sample_records() {
            let back = Record::from_bytes(&record.to_bytes()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn write_scan_truncate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("inverda-waltest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let records = sample_records();
        let full_len;
        {
            let mut w = WalWriter::create(&dir, 3, DurabilityMode::Group, 2).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
            full_len = w.len();
        }
        let path = dir.join(wal_file_name(3));
        let scan = scan_wal(&path, 3).unwrap();
        assert!(scan.header_ok);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, full_len);
        // Wrong generation discards the file.
        assert!(!scan_wal(&path, 4).unwrap().header_ok);
        // Truncating mid-record drops exactly the torn tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let scan = scan_wal(&path, 3).unwrap();
        assert_eq!(scan.records, records[..records.len() - 1]);
        assert!(scan.valid_len < full_len);
        // Attach truncates to the valid prefix and appends cleanly.
        {
            let recovered = scan.records.len() as u64;
            let mut w = WalWriter::attach(
                &dir,
                3,
                scan.valid_len,
                recovered,
                DurabilityMode::Commit,
                1,
            )
            .unwrap();
            assert_eq!(w.record_count(), recovered);
            w.append(&records[3]).unwrap();
        }
        let scan = scan_wal(&path, 3).unwrap();
        assert_eq!(scan.records, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
