//! Checkpoint files: a full snapshot of durable state, written atomically.
//!
//! A checkpoint captures everything recovery needs without the log:
//! genealogy (as the canonical DDL history), the materialization schema,
//! the key sequence, the skolem registry, and every physical table. It is
//! written as `checkpoint.tmp` → fsync → rename to `checkpoint.bin` →
//! directory fsync, so a crash anywhere leaves either the old checkpoint
//! or the new one, never a torn file — and the single CRC frame rejects
//! a torn write that somehow survives the rename protocol.

use inverda_datalog::SkolemRegistry;
use inverda_storage::codec::{read_frame, write_frame, Codec, FrameScan, Reader};
use inverda_storage::{Relation, StorageError};
use std::io::Write;
use std::path::Path;

/// Magic bytes opening the checkpoint payload.
pub const CKPT_MAGIC: &[u8; 8] = b"IVCKPT01";

/// The checkpoint file name inside a durable directory.
pub const CKPT_FILE: &str = "checkpoint.bin";

/// A decoded checkpoint: the durable state at some log rotation point.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Log generation this checkpoint pairs with: recovery replays
    /// `wal-<generation>.log` on top of it.
    pub generation: u64,
    /// Every genealogy DDL statement executed so far, in order, as
    /// canonical BiDEL text; replayed to rebuild genealogy + catalog.
    pub ddl_history: Vec<String>,
    /// SMO ids of the materialization schema at checkpoint time.
    pub materialization: Vec<u32>,
    /// Key-sequence position (`SequenceSet::current_key`) to restore.
    pub key_seq: u64,
    /// The full skolem registry (memo + counters).
    pub registry: SkolemRegistry,
    /// Every physical table, replacing whatever DDL replay created.
    pub tables: Vec<Relation>,
}

impl Codec for Checkpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(CKPT_MAGIC);
        self.generation.encode(out);
        self.ddl_history.encode(out);
        self.materialization.encode(out);
        self.key_seq.encode(out);
        self.registry.encode(out);
        self.tables.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        if r.take(CKPT_MAGIC.len())? != CKPT_MAGIC {
            return Err(StorageError::codec("bad checkpoint magic"));
        }
        Ok(Checkpoint {
            generation: r.u64()?,
            ddl_history: Vec::<String>::decode(r)?,
            materialization: Vec::<u32>::decode(r)?,
            key_seq: r.u64()?,
            registry: SkolemRegistry::decode(r)?,
            tables: Vec::<Relation>::decode(r)?,
        })
    }
}

impl Checkpoint {
    /// Atomically persist this checkpoint into `dir` (tmp + rename + dir
    /// fsync).
    pub fn write(&self, dir: &Path) -> inverda_storage::Result<()> {
        let tmp = dir.join("checkpoint.tmp");
        let dst = dir.join(CKPT_FILE);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &self.to_bytes());
        {
            let io = |e| StorageError::io(format!("write checkpoint {}", tmp.display()), e);
            let mut file = std::fs::File::create(&tmp).map_err(io)?;
            file.write_all(&bytes).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, &dst)
            .map_err(|e| StorageError::io(format!("install checkpoint {}", dst.display()), e))?;
        sync_dir(dir)
    }

    /// Load the checkpoint from `dir`; `Ok(None)` when none exists (a fresh
    /// database) or the file fails its checksum (treated as absent — the
    /// rename protocol makes that unreachable short of media corruption,
    /// which recovery must still not panic on).
    pub fn load(dir: &Path) -> inverda_storage::Result<Option<Checkpoint>> {
        let path = dir.join(CKPT_FILE);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StorageError::io(
                    format!("read checkpoint {}", path.display()),
                    e,
                ))
            }
        };
        match read_frame(&buf) {
            FrameScan::Ok { payload, .. } => Ok(Some(Checkpoint::from_bytes(payload)?)),
            FrameScan::Torn | FrameScan::Corrupt | FrameScan::End => Ok(None),
        }
    }
}

/// fsync a directory so a rename or file creation inside it is durable.
pub fn sync_dir(dir: &Path) -> inverda_storage::Result<()> {
    std::fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StorageError::io(format!("fsync dir {}", dir.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::{Key, Value};

    #[test]
    fn checkpoint_write_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("inverda-ckpttest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut registry = SkolemRegistry::new();
        registry.get_or_create("id_T", &[Value::Int(3)]);
        let mut rel = Relation::with_columns("Task", ["title"]);
        rel.insert(Key(1), vec![Value::text("a")]).unwrap();
        let ckpt = Checkpoint {
            generation: 2,
            ddl_history: vec!["CREATE SCHEMA VERSION v1 ...;".into()],
            materialization: vec![1, 4],
            key_seq: 42,
            registry,
            tables: vec![rel],
        };
        ckpt.write(&dir).unwrap();
        let loaded = Checkpoint::load(&dir).unwrap().expect("checkpoint present");
        assert_eq!(loaded.to_bytes(), ckpt.to_bytes());
        // A corrupted checkpoint reads as absent, not a panic or Err.
        let path = dir.join(CKPT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Checkpoint::load(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = std::env::temp_dir().join(format!("inverda-ckptnone-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Checkpoint::load(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
