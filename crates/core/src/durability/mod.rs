//! Durability: write-ahead logging, checkpoints, and crash recovery.
//!
//! Every committed state change — validated write batches from the write
//! path's `drain`, genealogy DDL, `MATERIALIZE` switches, and skolem
//! registry deltas — is serialized with the hand-rolled codec of
//! [`inverda_storage::codec`] into an append-only log ([`wal`]).
//! Periodically the full state is snapshotted atomically ([`checkpoint`])
//! and the log rotates to a new generation. [`crate::Inverda::open`]
//! rebuilds the exact state of a never-crashed process: load the latest
//! checkpoint, replay the log tail, truncate any torn suffix at the first
//! failed CRC ([`recovery`]).
//!
//! The log is written synchronously under the database's single writer
//! lock; the commit [mode](DurabilityMode) only chooses when `fsync` runs
//! (per record, or amortized over a group).

pub mod checkpoint;
pub mod recovery;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use wal::{Record, RecordBody, WalWriter};

use inverda_storage::StorageError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// When appended log records become crash-durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No log at all: the database is purely in-memory, byte-identical in
    /// behavior to the pre-durability engine.
    Off,
    /// One `fsync` per committed record — strongest guarantee, one disk
    /// round trip per statement.
    Commit,
    /// Group commit: records reach the OS immediately but `fsync` runs
    /// once per `group_size` records (and on flush/checkpoint/drop). A
    /// crash can lose a suffix of acknowledged records, never corrupt the
    /// prefix.
    Group,
}

impl DurabilityMode {
    /// Read the `INVERDA_DURABILITY` environment knob: `commit`, `group`,
    /// or anything else (including unset) → `Off`.
    pub fn from_env() -> DurabilityMode {
        match std::env::var("INVERDA_DURABILITY").as_deref() {
            Ok("commit") => DurabilityMode::Commit,
            Ok("group") => DurabilityMode::Group,
            _ => DurabilityMode::Off,
        }
    }
}

/// Tuning knobs for a durable database instance.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Commit mode; [`DurabilityMode::Off`] makes `open` behave like
    /// [`crate::Inverda::new`] (nothing touches disk).
    pub mode: DurabilityMode,
    /// Records per fsync under [`DurabilityMode::Group`].
    pub group_size: u64,
    /// When `Some(n)`, automatically checkpoint + rotate the log after
    /// every `n` records; `None` checkpoints only on an explicit
    /// [`crate::Inverda::checkpoint`] call.
    pub checkpoint_every: Option<u64>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            mode: DurabilityMode::Commit,
            group_size: 64,
            checkpoint_every: None,
        }
    }
}

/// Mutable log state, swapped as a unit when the log rotates.
#[derive(Debug)]
struct LogState {
    writer: WalWriter,
    generation: u64,
    records_since_checkpoint: u64,
}

/// The durable half of a database: its directory, options, and the live
/// log writer. Held behind `Option` on [`crate::Inverda`]; `None` means
/// in-memory.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    options: DurabilityOptions,
    log: Mutex<LogState>,
    /// When non-zero, overrides `options.group_size` on the live writer and
    /// on every writer created by rotation. The serving pipeline sets this
    /// to `u64::MAX`, turning the group window into cross-session batching:
    /// fsync runs once per drained group (via [`flush`](Durability::flush)),
    /// never from per-record counting.
    group_override: AtomicU64,
    /// True when the directory is a process-private tempdir created by the
    /// `INVERDA_DURABILITY` env gate; removed on drop.
    pub(crate) temp: bool,
}

impl Durability {
    pub(crate) fn new(
        dir: PathBuf,
        options: DurabilityOptions,
        writer: WalWriter,
        generation: u64,
    ) -> Durability {
        let records_since_checkpoint = writer.record_count();
        Durability {
            dir,
            options,
            log: Mutex::new(LogState {
                writer,
                generation,
                records_since_checkpoint,
            }),
            group_override: AtomicU64::new(0),
            temp: false,
        }
    }

    /// The group-commit window rotation hands to new writers: the override
    /// when set, the configured `group_size` otherwise.
    fn effective_group_size(&self) -> u64 {
        match self.group_override.load(Ordering::Relaxed) {
            0 => self.options.group_size,
            n => n,
        }
    }

    /// Install (or with `0` clear) a group-window override on the live
    /// writer and all future rotations. See the field docs.
    pub fn set_group_override(&self, group_size: u64) {
        self.group_override.store(group_size, Ordering::Relaxed);
        let mut log = self.log.lock().expect("durability log lock");
        let effective = self.effective_group_size();
        log.writer.set_group_size(effective);
    }

    /// The directory holding the log and checkpoint files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured commit mode.
    pub fn mode(&self) -> DurabilityMode {
        self.options.mode
    }

    /// Append one record; returns true when the auto-checkpoint threshold
    /// has been reached (the caller owns the state locks needed to run
    /// it).
    pub fn append(&self, record: &Record) -> inverda_storage::Result<bool> {
        let mut log = self.log.lock().expect("durability log lock");
        log.writer.append(record)?;
        log.records_since_checkpoint += 1;
        Ok(self
            .options
            .checkpoint_every
            .is_some_and(|n| log.records_since_checkpoint >= n))
    }

    /// Force unsynced appends to disk (group mode; no-op cost otherwise).
    pub fn flush(&self) -> inverda_storage::Result<()> {
        self.log.lock().expect("durability log lock").writer.sync()
    }

    /// Current log file length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.log.lock().expect("durability log lock").writer.len()
    }

    /// Checkpoint + rotate: start `wal-<g+1>.log` (fsynced) *before*
    /// installing the checkpoint that references it, so a crash between
    /// the two steps recovers from the old checkpoint + old complete log.
    /// `build` receives the new generation and produces the snapshot.
    pub fn rotate(&self, build: impl FnOnce(u64) -> Checkpoint) -> inverda_storage::Result<()> {
        let mut log = self.log.lock().expect("durability log lock");
        // Make the current log complete on disk before the new checkpoint
        // can supersede it.
        log.writer.sync()?;
        let old_gen = log.generation;
        let new_gen = old_gen + 1;
        let writer = WalWriter::create(
            &self.dir,
            new_gen,
            self.options.mode,
            self.effective_group_size(),
        )?;
        checkpoint::sync_dir(&self.dir)?;
        let ckpt = build(new_gen);
        debug_assert_eq!(ckpt.generation, new_gen);
        ckpt.write(&self.dir)?;
        // Old logs are now dead weight; their removal is not needed for
        // correctness (recovery ignores generations ≠ the checkpoint's).
        remove_stale_wals(&self.dir, new_gen)?;
        log.writer = writer;
        log.generation = new_gen;
        log.records_since_checkpoint = 0;
        Ok(())
    }
}

/// Delete every `wal-<g>.log` whose generation differs from `keep`.
pub(crate) fn remove_stale_wals(dir: &Path, keep: u64) -> inverda_storage::Result<()> {
    let io = |e| StorageError::io(format!("list wal dir {}", dir.display()), e);
    for entry in std::fs::read_dir(dir).map_err(io)? {
        let entry = entry.map_err(io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(gen_text) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
        else {
            continue;
        };
        if gen_text.parse::<u64>().is_ok_and(|g| g != keep) {
            std::fs::remove_file(entry.path())
                .map_err(|e| StorageError::io(format!("remove stale wal {name}"), e))?;
        }
    }
    checkpoint::sync_dir(dir)
}
