//! Crash recovery: checkpoint restore, log replay, torn-tail truncation.
//!
//! `open` rebuilds the exact state of a never-crashed process — including
//! the skolem registry, its minting order, and the key sequence — from the
//! latest checkpoint plus the committed prefix of its log generation.
//! Anything after the first torn or corrupt frame is truncated away; log
//! files of other generations are stale (their contents are covered by the
//! checkpoint) and removed.

use super::checkpoint::Checkpoint;
use super::wal::{scan_wal, wal_file_name, Record, RecordBody, WalWriter};
use super::{remove_stale_wals, Durability, DurabilityMode, DurabilityOptions};
use crate::database::Inverda;
use crate::error::CoreError;
use crate::Result;
use inverda_catalog::{MaterializationSchema, SmoId};
use inverda_storage::StorageError;
use std::path::Path;

/// Open (or create) the durable database at `dir`. The caller guarantees
/// `options.mode != Off`.
pub(crate) fn open(dir: &Path, options: DurabilityOptions) -> Result<Inverda> {
    debug_assert!(options.mode != DurabilityMode::Off);
    std::fs::create_dir_all(dir).map_err(|e| {
        CoreError::Storage(StorageError::io(
            format!("create durable dir {}", dir.display()),
            e,
        ))
    })?;
    let db = Inverda::new_in_memory();
    let ckpt = Checkpoint::load(dir).map_err(CoreError::Storage)?;
    let generation = ckpt.as_ref().map(|c| c.generation).unwrap_or(1);
    if let Some(ckpt) = ckpt {
        restore(&db, ckpt)?;
    }
    let wal_path = dir.join(wal_file_name(generation));
    let scan = scan_wal(&wal_path, generation).map_err(CoreError::Storage)?;
    for record in &scan.records {
        replay(&db, record)?;
    }
    // Truncate the torn tail and continue appending where the committed
    // prefix ends; a missing or unreadable-header log starts fresh.
    let writer = if scan.header_ok {
        WalWriter::attach(
            dir,
            generation,
            scan.valid_len,
            scan.records.len() as u64,
            options.mode,
            options.group_size,
        )
    } else {
        WalWriter::create(dir, generation, options.mode, options.group_size)
    }
    .map_err(CoreError::Storage)?;
    remove_stale_wals(dir, generation).map_err(CoreError::Storage)?;
    db.ids.0.lock().set_journaling(true);
    let mut db = db;
    db.durability = Some(Durability::new(
        dir.to_path_buf(),
        options,
        writer,
        generation,
    ));
    Ok(db)
}

/// Install a checkpoint into a fresh in-memory database: replay the DDL
/// history (rebuilding genealogy and catalog ids deterministically), then
/// overwrite the derived physical side — materialization schema, every
/// physical table, the registry, the key sequence — with the snapshotted
/// state. Caches start cold.
fn restore(db: &Inverda, ckpt: Checkpoint) -> Result<()> {
    for text in &ckpt.ddl_history {
        db.execute(text)?;
    }
    db.state.write().materialization =
        MaterializationSchema::from_smos(ckpt.materialization.iter().map(|id| SmoId(*id)));
    for name in db.storage.table_names() {
        db.storage.drop_table(&name).map_err(CoreError::Storage)?;
    }
    for rel in ckpt.tables {
        db.storage
            .create_table_with(rel)
            .map_err(CoreError::Storage)?;
    }
    *db.ids.0.lock() = ckpt.registry;
    db.storage
        .sequences()
        .ensure_key_above(ckpt.key_seq.saturating_sub(1));
    db.compiled.clear();
    db.snapshots.clear();
    Ok(())
}

/// Replay one committed record: registry deltas first, then the key
/// sequence, then the body — the same order the original commit observed
/// them in.
fn replay(db: &Inverda, record: &Record) -> Result<()> {
    {
        let mut reg = db.ids.0.lock();
        for op in &record.reg_ops {
            reg.apply_op(op);
        }
    }
    db.storage
        .sequences()
        .ensure_key_above(record.key_seq.saturating_sub(1));
    match &record.body {
        RecordBody::Ddl(text) => {
            db.execute(text)?;
        }
        RecordBody::Materialize(smos) => {
            // Re-run the migration procedure live: its planning mints from
            // the restored (pre-materialization) key sequence, reproducing
            // the original mints in the original order.
            db.materialize_exact(MaterializationSchema::from_smos(
                smos.iter().map(|id| SmoId(*id)),
            ))?;
        }
        RecordBody::Batch(batch) => {
            // The batch is the already-propagated physical write set; no
            // rule re-evaluation is needed (or wanted — its mints are in
            // `reg_ops`).
            db.storage.apply(batch).map_err(CoreError::Storage)?;
        }
        RecordBody::RegistryOnly => {}
    }
    Ok(())
}
