//! # inverda-core
//!
//! **InVerDa** — Integrated Versioning of Databases: end-to-end support for
//! co-existing schema versions (the paper's Sections 2, 3, 6, 7).
//!
//! One [`Inverda`] instance is a database in which multiple schema versions
//! live over a single data set:
//!
//! * the **Database Evolution Operation** executes a BiDEL script; the new
//!   schema version becomes immediately readable and writable;
//! * reads on any version are answered by expanding the SMO mapping rules
//!   toward wherever the data is physically stored (generated views);
//! * writes on any version propagate — minimally, via mechanically derived
//!   update-propagation rules — to the physical side and are visible in
//!   every other version (generated triggers);
//! * the **Database Migration Operation** (`MATERIALIZE '…'`) relocates the
//!   physical data representation along the genealogy without affecting the
//!   availability of any schema version and without developer involvement.
//!
//! ```
//! use inverda_core::Inverda;
//!
//! let db = Inverda::new();
//! db.execute(
//!     "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);",
//! ).unwrap();
//! db.execute(
//!     "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
//!        SPLIT TABLE Task INTO Todo WITH prio = 1; \
//!        DROP COLUMN prio FROM Todo DEFAULT 1;",
//! ).unwrap();
//! let key = db.insert("TasKy", "Task", vec!["Ann".into(), "Write paper".into(), 1.into()]).unwrap();
//! // The write is immediately visible in the Do! version.
//! let todo = db.scan("Do!", "Todo").unwrap();
//! assert!(todo.contains_key(key));
//! db.execute("MATERIALIZE 'Do!';").unwrap();
//! // Still visible everywhere after migrating the physical schema.
//! assert!(db.scan("Do!", "Todo").unwrap().contains_key(key));
//! assert!(db.scan("TasKy", "Task").unwrap().contains_key(key));
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod compiled;
pub mod database;
pub mod durability;
pub mod edb;
pub mod error;
pub mod migrate;
pub mod query;
pub mod serving;
pub mod snapshot;
pub mod write;

pub use branch::{
    Branch, BranchDiff, BranchOp, BranchingInverda, HistoryEntry, MergeConflict, MergeConflicts,
    MergeOutcome, NetChange, SideChange, TableDiff, MAIN_BRANCH,
};
pub use database::{ExecutionOutcome, Inverda, WritePath};
pub use durability::{DurabilityMode, DurabilityOptions};
pub use error::CoreError;
pub use inverda_datalog::parallel::{set_threads, threads};
pub use query::{AccessPath, Query, QueryPlan, RowIter};
pub use serving::{
    Client, PinnedView, Reader, ServingInverda, ServingOp, ServingOutcome, ServingReply,
};
pub use snapshot::{SnapshotStats, SnapshotStore};
pub use write::LogicalWrite;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
