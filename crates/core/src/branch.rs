//! Named branches over the version DAG: fork, diverge, diff, fast-forward,
//! and deterministically merge whole InVerDa databases.
//!
//! The genealogy already lets schema *versions* co-exist over one data set;
//! this module adds the orthogonal axis of parallel *realities*: a
//! [`BranchingInverda`] manages a family of named branches, each a complete
//! [`Inverda`] engine (genealogy + data + skolem registry + caches).
//! Creating a branch is `O(metadata)` — [`Inverda::fork_detached`] shares
//! every table copy-on-write at its current epoch, forks the snapshot store
//! and compiled-rule caches warm, and clones the registry and key-sequence
//! floor — after which writes and DDL land on one branch without disturbing
//! any sibling (storage branch tags make cross-branch snapshot probes
//! guaranteed misses; see `inverda_storage::Storage::fork`).
//!
//! Every mutation is recorded as a **stamped logical operation** in the
//! issuing branch's history: stamps come from one manager-global counter,
//! and each branch tracks the set of stamps whose effects it contains.
//! That set is the merge base: `diff` reports exactly the operations one
//! side has and the other lacks (plus per-table row deltas and registry
//! divergence), [`BranchingInverda::fast_forward`] advances a branch whose
//! counterpart has not diverged, and [`BranchingInverda::merge`] **rebase
//! replays** the source's unintegrated operations onto a scratch fork of
//! the destination — re-minting source-born row keys through the
//! destination's key sequence (a per-merge translation map rewrites
//! updates/deletes that reference them) and resolving skolem payloads
//! through the destination's registry by payload-keyed identity, never
//! re-minting an id the destination already assigned. Conflicts (the same
//! pre-fork row changed differently on both sides, the same schema-version
//! name created on both sides, or a replay failure) surface as a typed
//! [`MergeConflicts`] report and leave the destination untouched.
//!
//! Durability is layered *above* the engines: branch engines are always
//! in-memory, and the manager appends each logical operation to its own
//! log (`branch-0.log`, same `[len][crc32][payload]` framing and torn-tail
//! rule as the database WAL) **before** executing it; recovery re-drives
//! the decodable prefix, which reproduces every branch byte-for-byte
//! because replaying a branch's history from genesis is exactly the
//! branch's definition. Identifier mints performed by *reads* (scans
//! resolve virtual versions and may mint) are not re-driven, so they are
//! captured separately: before any logged action, the affected branch's
//! registry journal is drained into a `Residue` record carrying the
//! journaled ops and the key-sequence floor.

use crate::database::{ExecutionOutcome, Inverda};
use crate::durability::wal::{scan_log, WalWriter};
use crate::durability::{DurabilityMode, DurabilityOptions};
use crate::error::CoreError;
use crate::serving::PinnedView;
use crate::write::LogicalWrite;
use crate::Result;
use inverda_datalog::{RegOp, RegistryDivergence};
use inverda_storage::codec::{Codec, Reader};
use inverda_storage::{Key, Relation, RelationDelta, Row, StorageError, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the branch every manager starts with.
pub const MAIN_BRANCH: &str = "main";

/// Magic bytes opening the branch-layer log's header frame.
pub const BRANCH_MAGIC: &[u8; 8] = b"IVBRLOG1";

/// File name of the branch-layer log (generation 0; the branch log has no
/// checkpoint rotation yet — see ROADMAP).
pub const BRANCH_LOG_NAME: &str = "branch-0.log";

/// One logical operation issued against a branch — the replayable unit of
/// branch history and of the branch log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchOp {
    /// A BiDEL script ([`Inverda::execute`]).
    Execute(String),
    /// A batch of logical writes against one versioned table
    /// ([`Inverda::apply_many`]).
    ApplyMany {
        /// Schema version addressed.
        version: String,
        /// Table addressed.
        table: String,
        /// The writes, in order.
        writes: Vec<LogicalWrite>,
    },
}

const OP_EXECUTE: u8 = 0;
const OP_APPLY_MANY: u8 = 1;

impl Codec for BranchOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BranchOp::Execute(script) => {
                out.push(OP_EXECUTE);
                script.encode(out);
            }
            BranchOp::ApplyMany {
                version,
                table,
                writes,
            } => {
                out.push(OP_APPLY_MANY);
                version.encode(out);
                table.encode(out);
                writes.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        Ok(match r.u8()? {
            OP_EXECUTE => BranchOp::Execute(r.string()?),
            OP_APPLY_MANY => BranchOp::ApplyMany {
                version: r.string()?,
                table: r.string()?,
                writes: Vec::<LogicalWrite>::decode(r)?,
            },
            t => {
                return Err(StorageError::codec(format!("invalid branch op tag {t}")));
            }
        })
    }
}

/// One record of the branch-layer log. Replay re-drives the same internal
/// entry points the live calls use, so a recovered manager is the
/// deterministic replay of the log's valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BranchRecord {
    /// Registry mutations performed by *reads* since the branch's last
    /// record (scans on virtual versions may mint), plus the key-sequence
    /// floor to restore. Applied verbatim on replay — read paths are not
    /// re-driven.
    Residue {
        branch: String,
        reg_ops: Vec<RegOp>,
        key_seq: u64,
    },
    /// `branch_from(from, name)`.
    Create { name: String, from: String },
    /// One logical operation on `branch` (logged before execution; a
    /// failing operation fails identically on replay).
    Op { branch: String, op: BranchOp },
    /// `merge(src, dst)` — only logged for merges that committed.
    Merge { src: String, dst: String },
    /// `fast_forward(src, dst)`.
    FastForward { src: String, dst: String },
    /// `drop_branch(name)`.
    Drop { name: String },
}

const REC_RESIDUE: u8 = 0;
const REC_CREATE: u8 = 1;
const REC_OP: u8 = 2;
const REC_MERGE: u8 = 3;
const REC_FAST_FORWARD: u8 = 4;
const REC_DROP: u8 = 5;

impl Codec for BranchRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BranchRecord::Residue {
                branch,
                reg_ops,
                key_seq,
            } => {
                out.push(REC_RESIDUE);
                branch.encode(out);
                reg_ops.encode(out);
                key_seq.encode(out);
            }
            BranchRecord::Create { name, from } => {
                out.push(REC_CREATE);
                name.encode(out);
                from.encode(out);
            }
            BranchRecord::Op { branch, op } => {
                out.push(REC_OP);
                branch.encode(out);
                op.encode(out);
            }
            BranchRecord::Merge { src, dst } => {
                out.push(REC_MERGE);
                src.encode(out);
                dst.encode(out);
            }
            BranchRecord::FastForward { src, dst } => {
                out.push(REC_FAST_FORWARD);
                src.encode(out);
                dst.encode(out);
            }
            BranchRecord::Drop { name } => {
                out.push(REC_DROP);
                name.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        Ok(match r.u8()? {
            REC_RESIDUE => BranchRecord::Residue {
                branch: r.string()?,
                reg_ops: Vec::<RegOp>::decode(r)?,
                key_seq: r.u64()?,
            },
            REC_CREATE => BranchRecord::Create {
                name: r.string()?,
                from: r.string()?,
            },
            REC_OP => BranchRecord::Op {
                branch: r.string()?,
                op: BranchOp::decode(r)?,
            },
            REC_MERGE => BranchRecord::Merge {
                src: r.string()?,
                dst: r.string()?,
            },
            REC_FAST_FORWARD => BranchRecord::FastForward {
                src: r.string()?,
                dst: r.string()?,
            },
            REC_DROP => BranchRecord::Drop { name: r.string()? },
            t => {
                return Err(StorageError::codec(format!(
                    "invalid branch record tag {t}"
                )));
            }
        })
    }
}

/// One stamped operation in a branch's history. A branch's state is, by
/// construction, the replay of its history (successful entries, in order)
/// on a fresh engine — the differential property `branch_props.rs` checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Position in the manager-global operation sequence. Stamps identify
    /// operations across branches: a fork inherits the parent's history,
    /// and a merge appends the source's entries (rewritten to be
    /// self-contained on the destination) under their original stamps.
    pub stamp: u64,
    /// The operation, self-contained for this branch: updates and deletes
    /// reference keys as minted *here* (merge rewrites them).
    pub op: BranchOp,
    /// Whether the operation succeeded (failed operations are kept — they
    /// consume a stamp and fail identically on replay).
    pub ok: bool,
    /// Per-write results of an `ApplyMany` (`Some(key)` for inserts) —
    /// the key-lineage record merge uses to translate source-born keys.
    pub minted: Vec<Option<Key>>,
    /// Schema versions the operation created (conflict pre-check for
    /// same-name creation on both sides of a merge).
    pub created: Vec<String>,
}

/// What one side of a merge did, net, to a row key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetChange {
    /// The row ended up deleted.
    Deleted,
    /// The row ended up with this payload.
    Set(Row),
}

/// One side's net change to a conflicted key, with the version/table lens
/// it was written through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideChange {
    /// Schema version the write addressed.
    pub version: String,
    /// Table the write addressed.
    pub table: String,
    /// The net change.
    pub change: NetChange,
}

/// One conflict found by [`BranchingInverda::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeConflict {
    /// Both sides changed the same pre-fork row, differently. (Two
    /// identical updates, or a delete on both sides, are *not* conflicts.)
    Write {
        /// The contested row key.
        key: Key,
        /// What the merge source did.
        src: SideChange,
        /// What the merge destination did.
        dst: SideChange,
    },
    /// Both sides created a schema version of the same name.
    Version {
        /// The contested schema-version name.
        name: String,
    },
    /// A source operation that succeeded on its own branch failed when
    /// replayed onto the destination (e.g. it depends on a schema version
    /// the destination dropped, or on key lineage lost to a prior merge).
    Replay {
        /// Stamp of the failing source operation.
        stamp: u64,
        /// The replay error, rendered.
        error: String,
    },
}

/// The typed conflict report of a refused merge; carried by
/// [`CoreError::MergeConflicts`]. The destination branch is untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflicts {
    /// Merge source branch.
    pub src: String,
    /// Merge destination branch.
    pub dst: String,
    /// Every conflict found, in deterministic (stamp / key) order.
    pub conflicts: Vec<MergeConflict>,
}

impl fmt::Display for MergeConflicts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merge of '{}' into '{}' found {} conflict(s):",
            self.src,
            self.dst,
            self.conflicts.len()
        )?;
        for c in &self.conflicts {
            match c {
                MergeConflict::Write { key, src, dst } => write!(
                    f,
                    " [row #{} changed on both sides: {}.{} vs {}.{}]",
                    key.0, src.version, src.table, dst.version, dst.table
                )?,
                MergeConflict::Version { name } => {
                    write!(f, " [schema version '{name}' created on both sides]")?;
                }
                MergeConflict::Replay { stamp, error } => {
                    write!(f, " [op #{stamp} does not replay: {error}]")?;
                }
            }
        }
        Ok(())
    }
}

/// Outcome of a committed [`BranchingInverda::merge`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Source operations replayed onto the destination (failed and
    /// fully-filtered source entries are integrated without replay).
    pub applied: usize,
    /// Source-born row keys that were re-minted through the destination's
    /// key sequence during replay.
    pub remapped_keys: usize,
}

/// One table's row delta in a [`BranchDiff`], read through a schema
/// version both branches share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDiff {
    /// The shared schema version.
    pub version: String,
    /// The table within it.
    pub table: String,
    /// Rows to add/remove/change to get from branch `a`'s content to
    /// branch `b`'s ([`Relation::diff`]: `b.diff(&a)`).
    pub delta: RelationDelta,
}

/// Everything that differs between two branches: genealogy divergence
/// (schema versions only one side has, operations only one side has),
/// per-table row deltas over the shared versions, and skolem-registry
/// divergence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchDiff {
    /// Schema versions only branch `a` has.
    pub only_in_a: Vec<String>,
    /// Schema versions only branch `b` has.
    pub only_in_b: Vec<String>,
    /// Row deltas (`a` → `b`) per shared `(version, table)`, in name
    /// order; tables with identical content are omitted.
    pub tables: Vec<TableDiff>,
    /// Skolem-registry divergence (`a` is "left", `b` is "right").
    pub registry: RegistryDivergence,
    /// Operations branch `a` has that `b` has not integrated.
    pub a_ahead: usize,
    /// Operations branch `b` has that `a` has not integrated.
    pub b_ahead: usize,
}

impl BranchDiff {
    /// True iff the branches are indistinguishable: same versions, same
    /// rows, same registry, and neither is ahead.
    pub fn is_empty(&self) -> bool {
        self.only_in_a.is_empty()
            && self.only_in_b.is_empty()
            && self.tables.is_empty()
            && self.registry.is_empty()
            && self.a_ahead == 0
            && self.b_ahead == 0
    }
}

/// Per-branch state inside the manager.
struct BranchState {
    /// The branch's engine — always purely in-memory; the branch layer
    /// owns durability (see module docs).
    db: Arc<Inverda>,
    /// Stamped operations whose replay from genesis *is* this branch.
    history: Vec<HistoryEntry>,
    /// Stamps whose effects this branch contains (history stamps plus
    /// stamps integrated without a history entry: failed source ops and
    /// fully-filtered deletes of a merge).
    integrated: BTreeSet<u64>,
}

struct Inner {
    branches: BTreeMap<String, BranchState>,
    next_stamp: u64,
    log: Option<WalWriter>,
}

struct BranchCore {
    inner: Mutex<Inner>,
    /// Whether branch registries journal read-mints (true iff a log is
    /// attached; kept separately because replay runs before the writer is
    /// attached).
    durable: bool,
    dir: Option<PathBuf>,
    /// The directory is process-private (env-gated [`BranchingInverda::new`]);
    /// remove it on drop.
    temp_dir: bool,
}

/// Result of one executed logical operation.
enum OpReturn {
    Executed(ExecutionOutcome),
    Applied(Vec<Option<Key>>),
}

fn fresh_branch(durable: bool) -> BranchState {
    let db = Inverda::new_in_memory();
    if durable {
        db.ids.0.lock().set_journaling(true);
    }
    BranchState {
        db: Arc::new(db),
        history: Vec::new(),
        integrated: BTreeSet::new(),
    }
}

fn unknown(name: &str) -> CoreError {
    CoreError::UnknownBranch {
        name: name.to_string(),
    }
}

/// Drain `db`'s registry journal (read-mints since the branch's last
/// record) into a `Residue` record. Must precede any action record of the
/// same branch, or replay would re-drive the action without the mints.
fn log_residue(log: &mut WalWriter, name: &str, db: &Inverda) -> Result<()> {
    let reg_ops = db.ids.0.lock().take_journal();
    if reg_ops.is_empty() {
        return Ok(());
    }
    let key_seq = db.storage.sequences().current_key();
    log.append(&BranchRecord::Residue {
        branch: name.to_string(),
        reg_ops,
        key_seq,
    })?;
    Ok(())
}

/// Net effects of a history segment on rows that existed before the
/// segment: `key → last (version, table, change)`, with writes to keys the
/// segment itself minted excluded (fresh rows cannot conflict — merge
/// re-mints them).
fn net_effects(entries: &[&HistoryEntry]) -> BTreeMap<Key, SideChange> {
    let mut minted: BTreeSet<Key> = BTreeSet::new();
    for e in entries {
        minted.extend(e.minted.iter().flatten().copied());
    }
    let mut net = BTreeMap::new();
    for e in entries {
        if !e.ok {
            continue;
        }
        if let BranchOp::ApplyMany {
            version,
            table,
            writes,
        } = &e.op
        {
            for w in writes {
                let (key, change) = match w {
                    LogicalWrite::Insert(_) => continue,
                    LogicalWrite::Update(k, row) => (*k, NetChange::Set(row.clone())),
                    LogicalWrite::Delete(k) => (*k, NetChange::Deleted),
                };
                if minted.contains(&key) {
                    continue;
                }
                net.insert(
                    key,
                    SideChange {
                        version: version.clone(),
                        table: table.clone(),
                        change,
                    },
                );
            }
        }
    }
    net
}

/// Whether the two sides' net changes to the same key are compatible
/// (identical, so the merge can keep either).
fn compatible(a: &SideChange, b: &SideChange) -> bool {
    match (&a.change, &b.change) {
        // Deleted is deleted, whichever version lens issued it.
        (NetChange::Deleted, NetChange::Deleted) => true,
        _ => a == b,
    }
}

impl BranchCore {
    // ------------------------------------------------------------------
    // Internal entry points: each takes the locked `Inner`, a `do_log`
    // flag (false during replay), and performs validation → residue →
    // action record → execution, in that order.
    // ------------------------------------------------------------------

    fn create_locked(
        inner: &mut Inner,
        durable: bool,
        do_log: bool,
        parent_name: &str,
        name: &str,
    ) -> Result<()> {
        let Inner { branches, log, .. } = inner;
        if branches.contains_key(name) {
            return Err(CoreError::BranchExists {
                name: name.to_string(),
            });
        }
        let parent = branches
            .get(parent_name)
            .ok_or_else(|| unknown(parent_name))?;
        if do_log {
            if let Some(w) = log.as_mut() {
                // Drain before forking so the clone's memo state is fully
                // covered by the log prefix preceding the Create record.
                log_residue(w, parent_name, &parent.db)?;
                w.append(&BranchRecord::Create {
                    name: name.to_string(),
                    from: parent_name.to_string(),
                })?;
            }
        }
        let db = parent.db.fork_detached();
        if durable {
            db.ids.0.lock().set_journaling(true);
        }
        let state = BranchState {
            db: Arc::new(db),
            history: parent.history.clone(),
            integrated: parent.integrated.clone(),
        };
        branches.insert(name.to_string(), state);
        Ok(())
    }

    fn exec_op_locked(
        inner: &mut Inner,
        durable: bool,
        do_log: bool,
        name: &str,
        op: BranchOp,
    ) -> Result<OpReturn> {
        let Inner {
            branches,
            next_stamp,
            log,
        } = inner;
        let state = branches.get_mut(name).ok_or_else(|| unknown(name))?;
        if do_log {
            if let Some(w) = log.as_mut() {
                log_residue(w, name, &state.db)?;
                w.append(&BranchRecord::Op {
                    branch: name.to_string(),
                    op: op.clone(),
                })?;
            }
        }
        let stamp = *next_stamp;
        *next_stamp += 1;
        let result = match &op {
            BranchOp::Execute(script) => state.db.execute(script).map(OpReturn::Executed),
            BranchOp::ApplyMany {
                version,
                table,
                writes,
            } => state
                .db
                .apply_many(version, table, writes.clone())
                .map(OpReturn::Applied),
        };
        if durable {
            // The op's own mints are re-derived by re-driving it on
            // replay; discard them so they are not double-applied.
            state.db.ids.0.lock().take_journal();
        }
        let (ok, minted, created) = match &result {
            Ok(OpReturn::Executed(outcome)) => (true, Vec::new(), outcome.created_versions.clone()),
            Ok(OpReturn::Applied(minted)) => (true, minted.clone(), Vec::new()),
            Err(_) => (false, Vec::new(), Vec::new()),
        };
        state.history.push(HistoryEntry {
            stamp,
            op,
            ok,
            minted,
            created,
        });
        state.integrated.insert(stamp);
        result
    }

    fn fast_forward_locked(
        inner: &mut Inner,
        durable: bool,
        do_log: bool,
        src_name: &str,
        dst_name: &str,
    ) -> Result<usize> {
        let Inner { branches, log, .. } = inner;
        let src = branches.get(src_name).ok_or_else(|| unknown(src_name))?;
        let dst = branches.get(dst_name).ok_or_else(|| unknown(dst_name))?;
        if src_name == dst_name {
            return Ok(0);
        }
        let dst_ops = dst
            .history
            .iter()
            .filter(|e| !src.integrated.contains(&e.stamp))
            .count();
        if dst_ops > 0 {
            return Err(CoreError::CannotFastForward {
                dst: dst_name.to_string(),
                dst_ops,
            });
        }
        let advanced = src
            .history
            .iter()
            .filter(|e| !dst.integrated.contains(&e.stamp))
            .count();
        if advanced == 0 {
            return Ok(0);
        }
        if do_log {
            if let Some(w) = log.as_mut() {
                log_residue(w, src_name, &src.db)?;
                log_residue(w, dst_name, &dst.db)?;
                w.append(&BranchRecord::FastForward {
                    src: src_name.to_string(),
                    dst: dst_name.to_string(),
                })?;
            }
        }
        // dst has nothing of its own: advancing it is re-forking src.
        let db = src.db.fork_detached();
        if durable {
            db.ids.0.lock().set_journaling(true);
        }
        let history = src.history.clone();
        let integrated = src.integrated.clone();
        let dst = branches.get_mut(dst_name).expect("validated above");
        dst.db = Arc::new(db);
        dst.history = history;
        dst.integrated = integrated;
        Ok(advanced)
    }

    fn merge_locked(
        inner: &mut Inner,
        durable: bool,
        do_log: bool,
        src_name: &str,
        dst_name: &str,
    ) -> Result<MergeOutcome> {
        let Inner { branches, log, .. } = inner;
        let src = branches.get(src_name).ok_or_else(|| unknown(src_name))?;
        let dst = branches.get(dst_name).ok_or_else(|| unknown(dst_name))?;
        if src_name == dst_name {
            return Ok(MergeOutcome::default());
        }
        let src_new: Vec<HistoryEntry> = src
            .history
            .iter()
            .filter(|e| !dst.integrated.contains(&e.stamp))
            .cloned()
            .collect();
        if src_new.is_empty() {
            return Ok(MergeOutcome::default());
        }
        let dst_new: Vec<&HistoryEntry> = dst
            .history
            .iter()
            .filter(|e| !src.integrated.contains(&e.stamp))
            .collect();

        let report = |conflicts: Vec<MergeConflict>| {
            CoreError::MergeConflicts(MergeConflicts {
                src: src_name.to_string(),
                dst: dst_name.to_string(),
                conflicts,
            })
        };

        // Conflict detection, entirely before any mutation.
        let mut conflicts = Vec::new();
        let dst_versions = dst.db.versions();
        for e in &src_new {
            if !e.ok {
                continue;
            }
            for v in &e.created {
                if dst_versions.iter().any(|d| d == v) {
                    conflicts.push(MergeConflict::Version { name: v.clone() });
                }
            }
        }
        let src_net = net_effects(&src_new.iter().collect::<Vec<_>>());
        let dst_net = net_effects(&dst_new);
        for (key, s) in &src_net {
            if let Some(d) = dst_net.get(key) {
                if !compatible(s, d) {
                    conflicts.push(MergeConflict::Write {
                        key: *key,
                        src: s.clone(),
                        dst: d.clone(),
                    });
                }
            }
        }
        if !conflicts.is_empty() {
            return Err(report(conflicts));
        }

        // Rebase replay on a scratch fork; the destination is untouched
        // until the whole replay has succeeded.
        let scratch = dst.db.fork_detached();
        let src_minted: BTreeSet<Key> = src_new
            .iter()
            .flat_map(|e| e.minted.iter().flatten().copied())
            .collect();
        let mut translation: BTreeMap<Key, Key> = BTreeMap::new();
        let mut new_entries: Vec<HistoryEntry> = Vec::new();
        let mut applied = 0usize;
        for entry in &src_new {
            if !entry.ok {
                continue;
            }
            let fail = |e: String| {
                report(vec![MergeConflict::Replay {
                    stamp: entry.stamp,
                    error: e,
                }])
            };
            match &entry.op {
                BranchOp::Execute(script) => match scratch.execute(script) {
                    Ok(outcome) => {
                        new_entries.push(HistoryEntry {
                            stamp: entry.stamp,
                            op: entry.op.clone(),
                            ok: true,
                            minted: Vec::new(),
                            created: outcome.created_versions,
                        });
                        applied += 1;
                    }
                    Err(e) => return Err(fail(e.to_string())),
                },
                BranchOp::ApplyMany {
                    version,
                    table,
                    writes,
                } => {
                    let translate = |k: Key| -> Result<Key> {
                        if let Some(t) = translation.get(&k) {
                            Ok(*t)
                        } else if src_minted.contains(&k) {
                            Err(fail(format!(
                                "row #{} was born on '{src_name}' but its lineage is \
                                 not part of this merge",
                                k.0
                            )))
                        } else {
                            Ok(k)
                        }
                    };
                    // Rewrite the batch to be self-contained on the
                    // destination: source-born keys go through the
                    // translation map, deletes of already-absent rows
                    // (both sides deleted — proven compatible above) are
                    // filtered.
                    let mut rewritten: Vec<LogicalWrite> = Vec::with_capacity(writes.len());
                    let mut insert_origs: Vec<(usize, Option<Key>)> = Vec::new();
                    for (i, w) in writes.iter().enumerate() {
                        match w {
                            LogicalWrite::Insert(row) => {
                                insert_origs.push((
                                    rewritten.len(),
                                    entry.minted.get(i).copied().flatten(),
                                ));
                                rewritten.push(LogicalWrite::Insert(row.clone()));
                            }
                            LogicalWrite::Update(k, row) => {
                                rewritten.push(LogicalWrite::Update(translate(*k)?, row.clone()));
                            }
                            LogicalWrite::Delete(k) => {
                                let k = translate(*k)?;
                                match scratch.get(version, table, k) {
                                    Ok(Some(_)) => rewritten.push(LogicalWrite::Delete(k)),
                                    Ok(None) => {}
                                    Err(e) => return Err(fail(e.to_string())),
                                }
                            }
                        }
                    }
                    if rewritten.is_empty() {
                        continue;
                    }
                    match scratch.apply_many(version, table, rewritten.clone()) {
                        Ok(minted) => {
                            for (pos, orig) in insert_origs {
                                if let (Some(orig), Some(Some(new))) = (orig, minted.get(pos)) {
                                    translation.insert(orig, *new);
                                }
                            }
                            new_entries.push(HistoryEntry {
                                stamp: entry.stamp,
                                op: BranchOp::ApplyMany {
                                    version: version.clone(),
                                    table: table.clone(),
                                    writes: rewritten,
                                },
                                ok: true,
                                minted,
                                created: Vec::new(),
                            });
                            applied += 1;
                        }
                        Err(e) => return Err(fail(e.to_string())),
                    }
                }
            }
        }
        if durable {
            // Replay re-derives the merge's own mints by re-driving the
            // Merge record; journal from here on.
            let mut reg = scratch.ids.0.lock();
            reg.set_journaling(true);
        }

        // Commit. Residues first so the Merge record replays against the
        // exact registry state the live merge computed over.
        if do_log {
            if let Some(w) = log.as_mut() {
                log_residue(w, src_name, &src.db)?;
                log_residue(w, dst_name, &dst.db)?;
                w.append(&BranchRecord::Merge {
                    src: src_name.to_string(),
                    dst: dst_name.to_string(),
                })?;
            }
        }
        let src_integrated = src.integrated.clone();
        let remapped_keys = translation.len();
        let dst = branches.get_mut(dst_name).expect("validated above");
        dst.db = Arc::new(scratch);
        dst.history.extend(new_entries);
        dst.integrated.extend(src_integrated);
        Ok(MergeOutcome {
            applied,
            remapped_keys,
        })
    }

    fn drop_locked(inner: &mut Inner, do_log: bool, name: &str) -> Result<()> {
        let Inner { branches, log, .. } = inner;
        if name == MAIN_BRANCH {
            return Err(CoreError::ProtectedBranch {
                name: name.to_string(),
            });
        }
        if !branches.contains_key(name) {
            return Err(unknown(name));
        }
        if do_log {
            if let Some(w) = log.as_mut() {
                w.append(&BranchRecord::Drop {
                    name: name.to_string(),
                })?;
            }
        }
        branches.remove(name);
        Ok(())
    }

    /// Re-drive one logged record during recovery. Errors of the original
    /// call recur deterministically and are swallowed exactly as the live
    /// caller observed them.
    fn replay_record(inner: &mut Inner, durable: bool, record: BranchRecord) {
        match record {
            BranchRecord::Residue {
                branch,
                reg_ops,
                key_seq,
            } => {
                if let Some(state) = inner.branches.get(&branch) {
                    let mut reg = state.db.ids.0.lock();
                    for op in &reg_ops {
                        reg.apply_op(op);
                    }
                    // `apply_op` does not journal, but any later mint
                    // would; keep the journal clean of replay artifacts.
                    reg.take_journal();
                    drop(reg);
                    state
                        .db
                        .storage
                        .sequences()
                        .ensure_key_above(key_seq.saturating_sub(1));
                }
            }
            BranchRecord::Create { name, from } => {
                let _ = Self::create_locked(inner, durable, false, &from, &name);
            }
            BranchRecord::Op { branch, op } => {
                let _ = Self::exec_op_locked(inner, durable, false, &branch, op);
            }
            BranchRecord::Merge { src, dst } => {
                let _ = Self::merge_locked(inner, durable, false, &src, &dst);
            }
            BranchRecord::FastForward { src, dst } => {
                let _ = Self::fast_forward_locked(inner, durable, false, &src, &dst);
            }
            BranchRecord::Drop { name } => {
                let _ = Self::drop_locked(inner, false, &name);
            }
        }
    }

    fn flush_locked(inner: &mut Inner) -> Result<()> {
        let Inner { branches, log, .. } = inner;
        if let Some(w) = log.as_mut() {
            for (name, state) in branches.iter() {
                log_residue(w, name, &state.db)?;
            }
            w.sync()?;
        }
        Ok(())
    }
}

impl Drop for BranchCore {
    fn drop(&mut self) {
        let _ = BranchCore::flush_locked(&mut self.inner.lock());
        if self.temp_dir {
            if let Some(dir) = &self.dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

/// Manager of named branches over complete InVerDa databases. See the
/// module docs for the model; start from [`BranchingInverda::new`] and the
/// [`Branch`] handle.
pub struct BranchingInverda {
    core: Arc<BranchCore>,
}

impl Default for BranchingInverda {
    fn default() -> Self {
        BranchingInverda::new()
    }
}

impl BranchingInverda {
    /// Fresh manager with one empty `main` branch. Purely in-memory —
    /// unless the `INVERDA_DURABILITY` environment knob is `commit` or
    /// `group`, in which case the branch log lives in a process-private
    /// temporary directory (removed on drop), mirroring [`Inverda::new`].
    pub fn new() -> Self {
        match DurabilityMode::from_env() {
            DurabilityMode::Off => BranchingInverda::new_in_memory(),
            mode => {
                static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "inverda-branch-{}-{}",
                    std::process::id(),
                    TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let mut manager = BranchingInverda::open_in(
                    &dir,
                    DurabilityOptions {
                        mode,
                        ..DurabilityOptions::default()
                    },
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "INVERDA_DURABILITY: cannot open branch tempdir {}: {e}",
                        dir.display()
                    )
                });
                Arc::get_mut(&mut manager.core)
                    .expect("sole owner at construction")
                    .temp_dir = true;
                manager
            }
        }
    }

    /// Fresh in-memory manager with one empty `main` branch, ignoring the
    /// `INVERDA_DURABILITY` knob (e.g. the oracle side of a recovery
    /// test).
    pub fn new_in_memory() -> Self {
        let mut branches = BTreeMap::new();
        branches.insert(MAIN_BRANCH.to_string(), fresh_branch(false));
        BranchingInverda {
            core: Arc::new(BranchCore {
                inner: Mutex::new(Inner {
                    branches,
                    next_stamp: 0,
                    log: None,
                }),
                durable: false,
                dir: None,
                temp_dir: false,
            }),
        }
    }

    /// Open (or create) a durable manager in `dir`: recover every branch
    /// by re-driving the branch log's valid prefix, truncate any torn
    /// tail, and continue appending. `options.mode` governs fsync policy
    /// exactly as for [`Inverda::open_in`]; `checkpoint_every` is ignored
    /// (the branch log has no rotation yet).
    pub fn open_in(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("create {}", dir.display()), e))?;
        let path = dir.join(BRANCH_LOG_NAME);
        let scan = scan_log::<BranchRecord>(&path, BRANCH_MAGIC, 0)?;
        let mut branches = BTreeMap::new();
        branches.insert(MAIN_BRANCH.to_string(), fresh_branch(true));
        let mut inner = Inner {
            branches,
            next_stamp: 0,
            log: None,
        };
        let record_count = scan.records.len() as u64;
        for record in scan.records {
            BranchCore::replay_record(&mut inner, true, record);
        }
        let writer = if scan.header_ok {
            WalWriter::attach_at(
                path,
                scan.valid_len,
                record_count,
                options.mode,
                options.group_size,
            )?
        } else {
            WalWriter::create_at(path, BRANCH_MAGIC, 0, options.mode, options.group_size)?
        };
        inner.log = Some(writer);
        Ok(BranchingInverda {
            core: Arc::new(BranchCore {
                inner: Mutex::new(inner),
                durable: true,
                dir: Some(dir),
                temp_dir: false,
            }),
        })
    }

    /// Handle to the `main` branch.
    pub fn main(&self) -> Branch {
        Branch {
            core: Arc::clone(&self.core),
            name: MAIN_BRANCH.to_string(),
        }
    }

    /// Handle to an existing branch.
    pub fn get(&self, name: &str) -> Result<Branch> {
        let inner = self.core.inner.lock();
        if !inner.branches.contains_key(name) {
            return Err(unknown(name));
        }
        Ok(Branch {
            core: Arc::clone(&self.core),
            name: name.to_string(),
        })
    }

    /// Fork `main` into a new branch — `O(metadata)`, no data copied.
    pub fn branch(&self, name: &str) -> Result<Branch> {
        self.branch_from(MAIN_BRANCH, name)
    }

    /// Fork `parent` into a new branch named `name`.
    pub fn branch_from(&self, parent: &str, name: &str) -> Result<Branch> {
        let mut inner = self.core.inner.lock();
        BranchCore::create_locked(&mut inner, self.core.durable, true, parent, name)?;
        Ok(Branch {
            core: Arc::clone(&self.core),
            name: name.to_string(),
        })
    }

    /// Names of all live branches, sorted.
    pub fn branch_names(&self) -> Vec<String> {
        self.core.inner.lock().branches.keys().cloned().collect()
    }

    /// Everything that differs between branches `a` and `b`; see
    /// [`BranchDiff`]. Read-only (the scans it performs may mint skolem
    /// ids through each branch's read path, like any other read).
    pub fn diff(&self, a: &str, b: &str) -> Result<BranchDiff> {
        let inner = self.core.inner.lock();
        let sa = inner.branches.get(a).ok_or_else(|| unknown(a))?;
        let sb = inner.branches.get(b).ok_or_else(|| unknown(b))?;
        let va = sa.db.versions();
        let vb = sb.db.versions();
        let set_a: BTreeSet<&String> = va.iter().collect();
        let set_b: BTreeSet<&String> = vb.iter().collect();
        let mut diff = BranchDiff {
            only_in_a: va.iter().filter(|v| !set_b.contains(v)).cloned().collect(),
            only_in_b: vb.iter().filter(|v| !set_a.contains(v)).cloned().collect(),
            a_ahead: sa
                .history
                .iter()
                .filter(|e| !sb.integrated.contains(&e.stamp))
                .count(),
            b_ahead: sb
                .history
                .iter()
                .filter(|e| !sa.integrated.contains(&e.stamp))
                .count(),
            ..BranchDiff::default()
        };
        let mut shared: Vec<&String> = va.iter().filter(|v| set_b.contains(v)).collect();
        shared.sort();
        for version in shared {
            let mut tables = sa.db.tables_of(version)?;
            tables.sort();
            let tables_b: BTreeSet<String> = sb.db.tables_of(version)?.into_iter().collect();
            for table in tables {
                if !tables_b.contains(&table) {
                    continue;
                }
                let ra = sa.db.scan(version, &table)?;
                let rb = sb.db.scan(version, &table)?;
                let delta = rb.diff(&ra);
                if !delta.deletes.is_empty()
                    || !delta.inserts.is_empty()
                    || !delta.updates.is_empty()
                {
                    diff.tables.push(TableDiff {
                        version: version.clone(),
                        table,
                        delta,
                    });
                }
            }
        }
        diff.registry = sa
            .db
            .registry_snapshot()
            .divergence(&sb.db.registry_snapshot());
        Ok(diff)
    }

    /// Advance `dst` to `src`'s exact state, provided `dst` has no
    /// operations of its own since the merge base (otherwise
    /// [`CoreError::CannotFastForward`]). Returns the number of
    /// operations `dst` advanced by (0 = already up to date).
    pub fn fast_forward(&self, src: &str, dst: &str) -> Result<usize> {
        let mut inner = self.core.inner.lock();
        BranchCore::fast_forward_locked(&mut inner, self.core.durable, true, src, dst)
    }

    /// Merge `src` into `dst`: rebase-replay `src`'s unintegrated
    /// operations onto `dst` (see the module docs for key translation and
    /// registry discipline). Disjoint changes union; conflicting changes
    /// return [`CoreError::MergeConflicts`] with `dst` untouched. `src` is
    /// never modified.
    pub fn merge(&self, src: &str, dst: &str) -> Result<MergeOutcome> {
        let mut inner = self.core.inner.lock();
        BranchCore::merge_locked(&mut inner, self.core.durable, true, src, dst)
    }

    /// Delete a branch (its log history remains; `main` cannot be
    /// dropped).
    pub fn drop_branch(&self, name: &str) -> Result<()> {
        let mut inner = self.core.inner.lock();
        BranchCore::drop_locked(&mut inner, true, name)
    }

    /// Drain every branch's pending read-mint residue to the branch log
    /// and fsync it (no-op for an in-memory manager).
    pub fn flush(&self) -> Result<()> {
        BranchCore::flush_locked(&mut self.core.inner.lock())
    }

    /// Where the branch log lives, if durable.
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.core.dir.clone()
    }

    /// Bytes in the branch log (None when in-memory) — lets tests truncate
    /// at exact record boundaries.
    pub fn log_len(&self) -> Option<u64> {
        self.core.inner.lock().log.as_ref().map(|w| w.len())
    }
}

/// Handle to one named branch — the write surface of the branch layer.
/// Cheap to clone; all methods go through the manager so every mutation is
/// stamped, recorded in the branch's history, and (when durable) logged.
#[derive(Clone)]
pub struct Branch {
    core: Arc<BranchCore>,
    name: String,
}

impl Branch {
    /// This branch's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execute a BiDEL script on this branch ([`Inverda::execute`]).
    pub fn execute(&self, script: &str) -> Result<ExecutionOutcome> {
        let mut inner = self.core.inner.lock();
        match BranchCore::exec_op_locked(
            &mut inner,
            self.core.durable,
            true,
            &self.name,
            BranchOp::Execute(script.to_string()),
        )? {
            OpReturn::Executed(outcome) => Ok(outcome),
            OpReturn::Applied(_) => unreachable!("execute op returns an outcome"),
        }
    }

    /// Apply a batch of logical writes on this branch
    /// ([`Inverda::apply_many`]).
    pub fn apply_many(
        &self,
        version: &str,
        table: &str,
        writes: Vec<LogicalWrite>,
    ) -> Result<Vec<Option<Key>>> {
        let mut inner = self.core.inner.lock();
        match BranchCore::exec_op_locked(
            &mut inner,
            self.core.durable,
            true,
            &self.name,
            BranchOp::ApplyMany {
                version: version.to_string(),
                table: table.to_string(),
                writes,
            },
        )? {
            OpReturn::Applied(minted) => Ok(minted),
            OpReturn::Executed(_) => unreachable!("apply op returns minted keys"),
        }
    }

    /// Insert one row; returns the minted key.
    pub fn insert(&self, version: &str, table: &str, row: Vec<Value>) -> Result<Key> {
        let minted = self.apply_many(version, table, vec![LogicalWrite::Insert(row)])?;
        Ok(minted[0].expect("insert mints a key"))
    }

    /// Replace the row under `key`.
    pub fn update(&self, version: &str, table: &str, key: Key, row: Vec<Value>) -> Result<()> {
        self.apply_many(version, table, vec![LogicalWrite::Update(key, row)])?;
        Ok(())
    }

    /// Delete the row under `key`.
    pub fn delete(&self, version: &str, table: &str, key: Key) -> Result<()> {
        self.apply_many(version, table, vec![LogicalWrite::Delete(key)])?;
        Ok(())
    }

    /// Scan a versioned table on this branch (under the manager lock, so
    /// read-mints serialize with residue logging).
    pub fn scan(&self, version: &str, table: &str) -> Result<Arc<Relation>> {
        self.with_db(|db| db.scan(version, table))?
    }

    /// One row by key.
    pub fn get(&self, version: &str, table: &str, key: Key) -> Result<Option<Row>> {
        self.with_db(|db| db.get(version, table, key))?
    }

    /// Schema versions on this branch.
    pub fn versions(&self) -> Result<Vec<String>> {
        self.with_db(|db| db.versions())
    }

    /// A pinned, immutable MVCC view of this branch
    /// ([`Inverda::pin`](crate::serving::PinnedView)).
    pub fn pin(&self) -> Result<PinnedView> {
        self.with_db_arc(|db| db.pin())
    }

    /// This branch's stamped operation history (a clone).
    pub fn history(&self) -> Result<Vec<HistoryEntry>> {
        let inner = self.core.inner.lock();
        let state = inner
            .branches
            .get(&self.name)
            .ok_or_else(|| unknown(&self.name))?;
        Ok(state.history.clone())
    }

    /// The branch's underlying engine, for read-only use (diagnostics,
    /// benchmarks, equivalence oracles). Writing or executing DDL through
    /// it bypasses history stamping and the branch log — such changes are
    /// invisible to diff/merge and lost on recovery.
    pub fn engine(&self) -> Result<Arc<Inverda>> {
        let inner = self.core.inner.lock();
        let state = inner
            .branches
            .get(&self.name)
            .ok_or_else(|| unknown(&self.name))?;
        Ok(Arc::clone(&state.db))
    }

    fn with_db<T>(&self, f: impl FnOnce(&Inverda) -> T) -> Result<T> {
        let inner = self.core.inner.lock();
        let state = inner
            .branches
            .get(&self.name)
            .ok_or_else(|| unknown(&self.name))?;
        Ok(f(&state.db))
    }

    fn with_db_arc<T>(&self, f: impl FnOnce(&Arc<Inverda>) -> T) -> Result<T> {
        let inner = self.core.inner.lock();
        let state = inner
            .branches
            .get(&self.name)
            .ok_or_else(|| unknown(&self.name))?;
        Ok(f(&state.db))
    }
}
