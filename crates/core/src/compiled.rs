//! Cross-statement cache of compiled SMO rule sets.
//!
//! Every SMO instance carries two rule sets (γ_tgt / γ_src) that are fixed
//! for the lifetime of the SMO. Compiling them (slot interning + schedule
//! precomputation, see `inverda-datalog::eval`) is cheap but happens on the
//! hot path of every statement: one read on a three-hop virtual version
//! resolves up to three mappings. This store compiles each `(SMO,
//! direction)` pair once and hands out shared references; the [`Inverda`]
//! facade clears it whenever the genealogy changes (schema version created
//! or dropped), which is the only event that can add or retire rule sets.
//!
//! The store also caches **fused γ-chains** ([`FusedChain`]): rule sets
//! composing a whole run of adjacent mappings, built by `VersionedEdb` via
//! `inverda_datalog::fusion`. A chain is keyed by its *source* table
//! version; the *target* version it resolves toward is recorded in the
//! entry — equivalent to `(source, target)` keying, because the target is a
//! function of the source, the genealogy, and the materialization schema,
//! and the cache is cleared whenever either changes (genealogy changes
//! clear everything; `MATERIALIZE` clears the fused chains, whose hop
//! structure depends on where the data lives, while the per-SMO
//! compilations stay valid). A chain additionally records the aux tables
//! it assumed empty at build time; users revalidate that assumption
//! against live storage on every hit.
//!
//! [`Inverda`]: crate::Inverda

use inverda_catalog::{SmoId, TableVersionId};
use inverda_datalog::{CompiledRuleSet, RuleSet};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Which of an SMO's two rule sets is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// γ_tgt: derives the target side from the source side.
    ToTgt,
    /// γ_src: derives the source side from the target side.
    ToSrc,
}

/// A fused γ-chain: one compiled rule set composing a run of adjacent
/// mappings, resolving `source` directly against `target`'s side of the
/// genealogy (plus any physical aux tables of the intermediate hops).
#[derive(Debug)]
pub struct FusedChain {
    /// The fused, compiled rule set (skolem-free and non-staged by
    /// construction).
    pub crs: Arc<CompiledRuleSet>,
    /// The table version this chain resolves (the cache key, recorded for
    /// diagnostics).
    pub source: TableVersionId,
    /// The table version the chain's terminal data atom belongs to — the
    /// far end of the fused run.
    pub target: TableVersionId,
    /// Number of γ mappings composed into `crs` (1 = no composition, the
    /// single defining hop with aux-emptiness simplification applied).
    pub hops: usize,
    /// Physical aux tables that were empty at build time and whose rules
    /// were simplified away under that assumption (Lemma 2). The chain is
    /// only valid while every one of them is still empty; users must
    /// revalidate before evaluating and invalidate on violation.
    pub assumed_empty: BTreeSet<String>,
}

/// Cache of compiled rule sets keyed by `(SMO instance, direction)`, plus
/// the fused-chain cache keyed by source table version.
#[derive(Debug, Default)]
pub struct CompiledStore {
    map: Mutex<HashMap<(SmoId, Direction), Arc<CompiledRuleSet>>>,
    fused: Mutex<HashMap<TableVersionId, Arc<FusedChain>>>,
}

impl CompiledStore {
    /// Empty store.
    pub fn new() -> Self {
        CompiledStore::default()
    }

    /// The compiled form of `rules`, compiling on first use. `rules` must be
    /// the rule set stored on `smo` for `direction` — the caller guarantees
    /// the association, the store only keys on it.
    pub fn get_or_compile(
        &self,
        smo: SmoId,
        direction: Direction,
        rules: &RuleSet,
    ) -> inverda_datalog::Result<Arc<CompiledRuleSet>> {
        if let Some(hit) = self.map.lock().get(&(smo, direction)) {
            return Ok(Arc::clone(hit));
        }
        let compiled = Arc::new(CompiledRuleSet::compile(rules)?);
        self.map
            .lock()
            .insert((smo, direction), Arc::clone(&compiled));
        Ok(compiled)
    }

    /// The cached fused chain resolving `source`, if any. The caller must
    /// revalidate `assumed_empty` before evaluating the chain.
    pub fn fused_get(&self, source: TableVersionId) -> Option<Arc<FusedChain>> {
        self.fused.lock().get(&source).map(Arc::clone)
    }

    /// Cache a fused chain under its source table version.
    pub fn fused_insert(&self, chain: FusedChain) -> Arc<FusedChain> {
        let shared = Arc::new(chain);
        self.fused.lock().insert(shared.source, Arc::clone(&shared));
        shared
    }

    /// Number of cached fused chains and the deepest hop run among them
    /// (diagnostics — lets tests assert fusion actually engaged).
    pub fn fused_stats(&self) -> (usize, usize) {
        let fused = self.fused.lock();
        let deepest = fused.values().map(|c| c.hops).max().unwrap_or(0);
        (fused.len(), deepest)
    }

    /// Drop one fused chain (its emptiness assumption was violated).
    pub fn fused_invalidate(&self, source: TableVersionId) {
        self.fused.lock().remove(&source);
    }

    /// Drop every fused chain but keep the per-SMO compilations (called on
    /// `MATERIALIZE`: moving the data changes which mapping defines each
    /// version — and therefore every chain's hop structure — while the
    /// SMO rule sets themselves are untouched).
    ///
    /// Invalidation scope is **this store**, i.e. one branch: every branch
    /// engine owns a private `CompiledStore` (see
    /// [`CompiledStore::fork`]), so a `MATERIALIZE` on one branch can
    /// never cold-start a sibling's fused chains.
    pub fn clear_fused(&self) {
        self.fused.lock().clear();
    }

    /// An independent copy sharing every cached compilation and fused
    /// chain by `Arc` — the warm start of a branch fork. Compiled rule
    /// sets are pure functions of the genealogy's rules (which the fork
    /// clones id-stably), and fused chains revalidate their emptiness
    /// assumptions against the *probing branch's* storage on every hit, so
    /// sharing at fork time is sound; afterwards each store invalidates
    /// independently (a branch-scoped `MATERIALIZE` clears only its own
    /// chains).
    pub fn fork(&self) -> CompiledStore {
        CompiledStore {
            map: Mutex::new(self.map.lock().clone()),
            fused: Mutex::new(self.fused.lock().clone()),
        }
    }

    /// Drop every cached compilation and fused chain (called on genealogy
    /// changes).
    pub fn clear(&self) {
        self.map.lock().clear();
        self.fused.lock().clear();
    }

    /// Number of cached compilations (diagnostics).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
