//! Cross-statement cache of compiled SMO rule sets.
//!
//! Every SMO instance carries two rule sets (γ_tgt / γ_src) that are fixed
//! for the lifetime of the SMO. Compiling them (slot interning + schedule
//! precomputation, see `inverda-datalog::eval`) is cheap but happens on the
//! hot path of every statement: one read on a three-hop virtual version
//! resolves up to three mappings. This store compiles each `(SMO,
//! direction)` pair once and hands out shared references; the [`Inverda`]
//! facade clears it whenever the genealogy changes (schema version created
//! or dropped), which is the only event that can add or retire rule sets.
//!
//! [`Inverda`]: crate::Inverda

use inverda_catalog::SmoId;
use inverda_datalog::{CompiledRuleSet, RuleSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Which of an SMO's two rule sets is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// γ_tgt: derives the target side from the source side.
    ToTgt,
    /// γ_src: derives the source side from the target side.
    ToSrc,
}

/// Cache of compiled rule sets keyed by `(SMO instance, direction)`.
#[derive(Debug, Default)]
pub struct CompiledStore {
    map: Mutex<HashMap<(SmoId, Direction), Arc<CompiledRuleSet>>>,
}

impl CompiledStore {
    /// Empty store.
    pub fn new() -> Self {
        CompiledStore::default()
    }

    /// The compiled form of `rules`, compiling on first use. `rules` must be
    /// the rule set stored on `smo` for `direction` — the caller guarantees
    /// the association, the store only keys on it.
    pub fn get_or_compile(
        &self,
        smo: SmoId,
        direction: Direction,
        rules: &RuleSet,
    ) -> inverda_datalog::Result<Arc<CompiledRuleSet>> {
        if let Some(hit) = self.map.lock().get(&(smo, direction)) {
            return Ok(Arc::clone(hit));
        }
        let compiled = Arc::new(CompiledRuleSet::compile(rules)?);
        self.map
            .lock()
            .insert((smo, direction), Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Drop every cached compilation (called on genealogy changes).
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Number of cached compilations (diagnostics).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
