//! Cross-statement snapshot store: resolved virtual relations, kept alive
//! and **delta-maintained** across statements.
//!
//! Before this store existed, every statement built a fresh [`VersionedEdb`]
//! and re-resolved each virtual relation from scratch — per-write cost was
//! dominated by O(data) view expansion (the `tasky_write_round` section of
//! `BENCH_eval.json`). The store lifts that state out of the statement:
//!
//! * **Entries** are keyed by relation name and hold the resolved
//!   `Arc<Relation>` snapshot (`None` for physical relations, which are
//!   served straight from [`Storage`] — their entries exist only to carry
//!   join indexes) plus any [`ColumnIndex`]es built over that snapshot.
//! * **Validity** is decided by the entry's *footprint*: the set of physical
//!   tables the relation's defining mappings can read (computed statically
//!   over the rule sets, so it is a superset of any data-dependent read set
//!   and stable under patching), each stamped with the [`Storage`] epoch
//!   observed when the snapshot was taken. An entry is served only while
//!   every footprint table still shows its stamped epoch; epochs are never
//!   reused, so staleness detection is exact even across table re-creation.
//! * **Maintenance**: the write path does not throw resolved state away. As
//!   [`drain`] pushes a logical delta toward physical storage it records the
//!   exact per-relation head deltas it already computed; after the batch
//!   commits, [`SnapshotStore::commit`] applies those deltas to the cached
//!   snapshots copy-on-write (and to their indexes, incrementally) and
//!   restamps their footprints — O(delta) instead of O(data). Hops whose
//!   defining mapping is staged or id-minting are maintained by
//!   **recompute-vs-stored**: the departed side's new state is fully
//!   re-evaluated over the post-write state (minting exactly what a
//!   post-write cold read would mint, in the same order) and diffed against
//!   the stored snapshot. Relations whose footprint intersects an aux-table
//!   purge fall back to targeted invalidation; everything else the write
//!   did not touch stays warm untouched.
//!
//! The store is cleared wholesale on every genealogy or materialization
//! change — exactly the events that can alter the defining rule sets or the
//! physical/virtual split — mirroring [`CompiledStore`].
//!
//! ## Epoch-versioned invalidation (the serving layer's contract)
//!
//! Invalidation is **versioned, not in-place**: each relation holds a short
//! list of snapshot versions, oldest first, whose last element is *current*.
//! Superseding a version (a commit-time patch, a fresh `store_entry`, an
//! epoch-stale eviction) *retires* the old version — keeps it in the list —
//! whenever epoch-pinned readers are outstanding
//! ([`acquire_pin`](SnapshotStore::acquire_pin)); with no pins it is dropped
//! immediately, preserving the single-session memory profile. Every lookup
//! scans versions newest-first for one whose **exact** footprint stamps
//! match the probing [`Storage`] — live storage only ever matches the
//! current version (epochs are monotonic), while a reader that pinned table
//! epochs `E` (its [`Storage::from_pinned`] view reproduces `E`) matches
//! whichever version was resolved at `E`.
//! [`fork_for_pin`](SnapshotStore::fork_for_pin) hands such a reader a
//! private store of
//! `Arc`-shared versions, so a pin taken from a store the commit pipeline
//! has already advanced still starts warm at its own epochs, and its cold
//! resolutions never touch the shared store. Correctness invalidations
//! (aux-purge hits, unpatchable deltas, targeted
//! [`invalidate`](SnapshotStore::invalidate)) drop the current version *for
//! real* — those mark entries wrong for their stamps, not merely
//! superseded — and `clear()` still empties everything.
//!
//! The warm/cold equivalence discipline (a warm read must be byte-identical
//! to cold resolution, including skolem id minting) is enforced by the
//! property tests in `tests/snapshot_reuse_props.rs`.
//!
//! [`VersionedEdb`]: crate::edb::VersionedEdb
//! [`CompiledStore`]: crate::compiled::CompiledStore
//! [`drain`]: crate::Inverda
//! [`Storage`]: inverda_storage::Storage

use inverda_datalog::delta::{Delta, DeltaMap};
use inverda_storage::{ColumnIndex, Key, Relation, Storage};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached snapshot version (see the module docs).
#[derive(Clone)]
struct Entry {
    /// Resolved contents for virtual relations; `None` for physical
    /// relations (served from storage — the entry only carries indexes).
    rel: Option<Arc<Relation>>,
    /// Physical table → storage epoch observed at resolution time.
    footprint: BTreeMap<String, u64>,
    /// Join indexes over this snapshot, patched in lockstep with it.
    indexes: HashMap<usize, Arc<ColumnIndex>>,
}

impl Entry {
    fn is_valid(&self, storage: &Storage) -> bool {
        self.footprint
            .iter()
            .all(|(table, epoch)| storage.epoch_of(table) == *epoch)
    }
}

/// Most versions one relation retains (current + retired). Retired versions
/// only accumulate while epoch-pinned readers are outstanding; the cap
/// bounds memory under a permanently pinned soak.
const VERSION_CAP: usize = 5;

#[derive(Default)]
struct Inner {
    /// Relation → snapshot versions, oldest first; the **last** element is
    /// current, everything before it is retired (see the module docs on
    /// epoch-versioned invalidation). The list is never left empty — a
    /// relation with no versions has no map entry.
    entries: HashMap<String, Vec<Arc<Entry>>>,
    /// Static resolution footprints per relation (data-independent, so they
    /// are computed once per catalog state and survive patching).
    footprints: HashMap<String, Arc<BTreeSet<String>>>,
}

impl Inner {
    fn first_valid<'a>(&'a self, relation: &str, storage: &Storage) -> Option<&'a Arc<Entry>> {
        self.entries
            .get(relation)?
            .iter()
            .rev()
            .find(|e| e.is_valid(storage))
    }

    /// Install `entry` as the new current version of `relation`. The
    /// previous current is retired when `retain` is set and its stamps
    /// differ (identical stamps mean the new version supersedes it for
    /// every possible pin); otherwise it is dropped.
    fn push_version(&mut self, relation: &str, entry: Entry, retain: bool) {
        let versions = self.entries.entry(relation.to_string()).or_default();
        if let Some(last) = versions.last() {
            if !retain || last.footprint == entry.footprint {
                versions.pop();
            }
        }
        versions.push(Arc::new(entry));
        if versions.len() > VERSION_CAP {
            versions.remove(0);
        }
    }

    /// Drop the current version of `relation` — a correctness invalidation,
    /// not a supersession, so it is never retired. Retired versions stay:
    /// their stamps are strictly older than the live epochs, so only
    /// in-flight epoch-pinned forks can still match them. Returns whether a
    /// version was dropped.
    fn drop_current(&mut self, relation: &str) -> bool {
        let Some(versions) = self.entries.get_mut(relation) else {
            return false;
        };
        let dropped = versions.pop().is_some();
        if versions.is_empty() {
            self.entries.remove(relation);
        }
        dropped
    }
}

/// Hit/miss/maintenance counters (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Warm reads served from a valid entry.
    pub hits: u64,
    /// Reads that found no valid entry (cold resolution followed).
    pub misses: u64,
    /// Entries updated in place by exact write deltas.
    pub patches: u64,
    /// Entries dropped by commit-time invalidation.
    pub invalidations: u64,
}

/// Cross-statement store of resolved relation snapshots. Owned by
/// [`Inverda`](crate::Inverda); see the module docs.
#[derive(Default)]
pub struct SnapshotStore {
    inner: Mutex<Inner>,
    /// Outstanding epoch-pinned reader forks. While non-zero, superseded
    /// snapshot versions are retired (kept servable at their old stamps)
    /// instead of dropped.
    pins: AtomicU64,
    /// The [`Storage::branch_tag`] this store's footprint stamps belong
    /// to; 0 = unbound (serve any storage — standalone stores in tests).
    /// Epoch numbers are only comparable within one branch's epoch
    /// namespace: two branches forked from a common prefix resume the same
    /// epoch counter, so after divergence an entry stamped on one branch
    /// could *falsely* validate against the other branch's storage. A
    /// bound store refuses to serve a storage with a different tag.
    owner_tag: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    patches: AtomicU64,
    invalidations: AtomicU64,
}

impl SnapshotStore {
    /// Empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Bind this store to one storage's epoch namespace (see the
    /// `owner_tag` field docs). Serve paths then treat a storage with a
    /// different [`Storage::branch_tag`] as a guaranteed miss.
    pub fn bind_owner(&self, branch_tag: u64) {
        self.owner_tag.store(branch_tag, Ordering::Relaxed);
    }

    /// The bound owner tag (0 = unbound; diagnostics and tests).
    pub fn owner_tag(&self) -> u64 {
        self.owner_tag.load(Ordering::Relaxed)
    }

    /// Whether `storage` belongs to the epoch namespace this store stamps
    /// in — the cross-branch footprint-validation guard.
    fn serves(&self, storage: &Storage) -> bool {
        let owner = self.owner_tag.load(Ordering::Relaxed);
        owner == 0 || owner == storage.branch_tag()
    }

    /// The static footprint of `relation`, computing it with `compute` on
    /// first use (cached until [`clear`](SnapshotStore::clear)).
    pub fn footprint_of(
        &self,
        relation: &str,
        compute: impl FnOnce() -> BTreeSet<String>,
    ) -> Arc<BTreeSet<String>> {
        if let Some(hit) = self.inner.lock().footprints.get(relation) {
            return Arc::clone(hit);
        }
        let built = Arc::new(compute());
        self.inner
            .lock()
            .footprints
            .entry(relation.to_string())
            .or_insert_with(|| Arc::clone(&built))
            .clone()
    }

    /// The cached snapshot of a virtual relation, if some version's whole
    /// footprint is at exactly the probing storage's epochs (newest version
    /// wins). When every version is stale the line is dropped — unless
    /// epoch-pinned readers are outstanding, in which case the versions are
    /// retired in place so an in-flight fork can still copy them.
    pub fn get(&self, relation: &str, storage: &Storage) -> Option<Arc<Relation>> {
        if !self.serves(storage) {
            // A foreign branch's storage: its epochs live in a different
            // namespace, so an exact stamp match would be coincidence, not
            // validity. Count a miss and touch nothing.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        match inner.entries.get(relation) {
            Some(versions) => {
                if let Some(entry) = versions.iter().rev().find(|e| e.is_valid(storage)) {
                    let rel = entry.rel.as_ref().map(Arc::clone)?;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(rel)
                } else {
                    if self.pins.load(Ordering::Relaxed) == 0 {
                        inner.entries.remove(relation);
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The cached join index for a *virtual* relation, served only if the
    /// entry's snapshot is pointer-identical to `based_on` — the snapshot
    /// the calling statement already reads. Epoch validity alone is not
    /// enough: a concurrent writer may have patched the entry to a newer
    /// generation (with refreshed epochs) after this statement cached its
    /// snapshot, and an index from that generation would disagree with the
    /// data the statement joins over.
    pub fn get_index_virtual(
        &self,
        relation: &str,
        column: usize,
        based_on: &Arc<Relation>,
    ) -> Option<Arc<ColumnIndex>> {
        let inner = self.inner.lock();
        inner.entries.get(relation)?.iter().rev().find_map(|entry| {
            let rel = entry.rel.as_ref()?;
            if Arc::ptr_eq(rel, based_on) {
                entry.indexes.get(&column).map(Arc::clone)
            } else {
                None
            }
        })
    }

    /// The cached join index for a *physical* table, served only if the
    /// carrier entry still describes exactly `epoch` — the epoch of the
    /// snapshot the calling statement reads (see
    /// [`get_index_virtual`](SnapshotStore::get_index_virtual) for why a
    /// current-validity check is insufficient).
    pub fn get_index_physical(
        &self,
        relation: &str,
        column: usize,
        epoch: u64,
    ) -> Option<Arc<ColumnIndex>> {
        let inner = self.inner.lock();
        inner.entries.get(relation)?.iter().rev().find_map(|entry| {
            if entry.rel.is_none() && entry.footprint.get(relation) == Some(&epoch) {
                entry.indexes.get(&column).map(Arc::clone)
            } else {
                None
            }
        })
    }

    /// Store a freshly resolved virtual snapshot with its stamped footprint
    /// as the new current version. The previous current (and its indexes —
    /// they described the old snapshot) is retired or dropped per the
    /// versioning policy.
    pub fn store_entry(
        &self,
        relation: &str,
        rel: Arc<Relation>,
        footprint: BTreeMap<String, u64>,
    ) {
        let retain = self.pins.load(Ordering::Relaxed) > 0;
        self.inner.lock().push_version(
            relation,
            Entry {
                rel: Some(rel),
                footprint,
                indexes: HashMap::new(),
            },
            retain,
        );
    }

    /// Attach an index built over a *virtual* entry's current snapshot. The
    /// caller passes the `Arc` it built the index from; the attach is
    /// skipped if the entry has been replaced or patched since (pointer
    /// identity), so a racing reader can never poison a newer snapshot.
    pub fn store_index_virtual(
        &self,
        relation: &str,
        column: usize,
        index: Arc<ColumnIndex>,
        based_on: &Arc<Relation>,
    ) {
        let mut inner = self.inner.lock();
        if let Some(versions) = inner.entries.get_mut(relation) {
            let pos = versions
                .iter()
                .position(|e| e.rel.as_ref().is_some_and(|r| Arc::ptr_eq(r, based_on)));
            if let Some(pos) = pos {
                // Same logical version with one more index — an in-place
                // `Arc` swap, not a supersession, so nothing is retired.
                let mut entry = (*versions[pos]).clone();
                entry.indexes.insert(column, index);
                versions[pos] = Arc::new(entry);
            }
        }
    }

    /// Attach an index built over a *physical* table snapshot taken at
    /// `epoch`, creating the carrier entry on first use. Skipped if the
    /// table has moved past that epoch.
    pub fn store_index_physical(
        &self,
        relation: &str,
        column: usize,
        index: Arc<ColumnIndex>,
        epoch: u64,
    ) {
        let retain = self.pins.load(Ordering::Relaxed) > 0;
        let mut inner = self.inner.lock();
        if let Some(versions) = inner.entries.get_mut(relation) {
            let pos = versions
                .iter()
                .position(|e| e.rel.is_none() && e.footprint.get(relation) == Some(&epoch));
            if let Some(pos) = pos {
                // Extend the existing carrier at this exact epoch in place.
                let mut entry = (*versions[pos]).clone();
                entry.indexes.insert(column, index);
                versions[pos] = Arc::new(entry);
                return;
            }
            // Refuse to supersede a virtual snapshot line or a carrier that
            // already moved past this epoch with an older-epoch carrier.
            if versions.last().is_some_and(|cur| {
                cur.rel.is_some() || cur.footprint.get(relation).is_some_and(|e| *e > epoch)
            }) {
                return;
            }
        }
        inner.push_version(
            relation,
            Entry {
                rel: None,
                footprint: BTreeMap::from([(relation.to_string(), epoch)]),
                indexes: HashMap::from([(column, index)]),
            },
            retain,
        );
    }

    /// The stored snapshot of a virtual relation if its entry is valid
    /// right now — with **no** counter updates and no stale-entry eviction.
    /// Used by reverse maintenance (which probes entries mid-write, before
    /// the batch commits) and by the parallel-preparation mint gate: both
    /// must not perturb the hit/miss statistics or evict state a later
    /// read would have served.
    pub fn peek_valid(&self, relation: &str, storage: &Storage) -> Option<Arc<Relation>> {
        if !self.serves(storage) {
            return None;
        }
        let inner = self.inner.lock();
        inner
            .first_valid(relation, storage)?
            .rel
            .as_ref()
            .map(Arc::clone)
    }

    /// Names of entries that are valid *right now* — captured by the write
    /// path immediately before applying a batch, so commit-time patching can
    /// tell pre-write-valid entries (patchable) from already-stale ones.
    pub fn valid_rels(&self, storage: &Storage) -> BTreeSet<String> {
        if !self.serves(storage) {
            return BTreeSet::new();
        }
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|(_, versions)| versions.iter().any(|e| e.is_valid(storage)))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Apply the maintenance plan a completed write produced: patch entries
    /// that have an exact delta and were valid before the write (refreshing
    /// their footprint epochs from post-write storage), drop entries the
    /// plan invalidates or whose footprint intersects an aux purge, and
    /// leave everything else to lazy epoch validation.
    pub fn commit(
        &self,
        maint: &SnapshotMaintenance,
        valid_before: &BTreeSet<String>,
        storage: &Storage,
    ) {
        let retain = self.pins.load(Ordering::Relaxed) > 0;
        let mut inner = self.inner.lock();
        for rel in &maint.invalidate {
            if inner.drop_current(rel) {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
        for (rel, delta) in &maint.patches {
            let Some(versions) = inner.entries.get_mut(rel) else {
                continue;
            };
            let Some(current) = versions.last() else {
                continue;
            };
            // A purge hit or a pre-write-stale entry marks the *current*
            // version wrong/unpatchable — a correctness invalidation, so it
            // is dropped for real, never retired.
            let purged = current.footprint.keys().any(|t| maint.purged.contains(t));
            if !valid_before.contains(rel) || purged {
                versions.pop();
                if versions.is_empty() {
                    inner.entries.remove(rel);
                }
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Patch the current version into a new one; the pre-patch
            // version is retired while pins are outstanding (it stays
            // servable at its old stamps).
            let old = versions.pop().expect("current version exists");
            let mut entry;
            let mut retired = None;
            if retain {
                entry = (*old).clone();
                retired = Some(old);
            } else {
                entry = Arc::try_unwrap(old).unwrap_or_else(|arc| (*arc).clone());
            }
            if patch_entry(&mut entry, delta) {
                for (table, epoch) in entry.footprint.iter_mut() {
                    *epoch = storage.epoch_of(table);
                }
                if let Some(old) = retired {
                    // Identical stamps mean the patched version supersedes
                    // the old one for every possible pin.
                    if old.footprint != entry.footprint {
                        versions.push(old);
                    }
                }
                versions.push(Arc::new(entry));
                if versions.len() > VERSION_CAP {
                    versions.remove(0);
                }
                self.patches.fetch_add(1, Ordering::Relaxed);
            } else {
                // Unpatchable delta: correctness invalidation of the
                // current version (retired copies, if any, stay).
                if versions.is_empty() {
                    inner.entries.remove(rel);
                }
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop the current version of one relation (targeted correctness
    /// invalidation — never retired).
    pub fn invalidate(&self, relation: &str) {
        if self.inner.lock().drop_current(relation) {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop everything — entries and cached footprints (genealogy or
    /// materialization changed).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.footprints.clear();
    }

    /// Number of live entries (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of virtual entries currently valid (diagnostics).
    pub fn entry_names(&self, storage: &Storage) -> Vec<(String, Arc<Relation>)> {
        let inner = self.inner.lock();
        inner
            .entries
            .keys()
            .filter_map(|name| {
                let entry = inner.first_valid(name, storage)?;
                let rel = entry.rel.as_ref()?;
                Some((name.clone(), Arc::clone(rel)))
            })
            .collect()
    }

    /// Counter snapshot (diagnostics and tests).
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Register an epoch-pinned reader. While any pin is outstanding,
    /// superseded snapshot versions are retired instead of dropped, so a
    /// fork taken a beat later can still copy the version matching its
    /// pinned epochs. Must be called **before** capturing the epochs the
    /// pin will read at; paired with [`release_pin`](SnapshotStore::release_pin).
    pub fn acquire_pin(&self) {
        self.pins.fetch_add(1, Ordering::SeqCst);
    }

    /// Release an epoch-pinned reader. When the last pin goes away all
    /// retired versions are pruned — only the current version of each
    /// relation survives.
    pub fn release_pin(&self) {
        if self.pins.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut inner = self.inner.lock();
            for versions in inner.entries.values_mut() {
                if versions.len() > 1 {
                    versions.drain(..versions.len() - 1);
                }
            }
        }
    }

    /// Number of outstanding epoch-pinned readers.
    pub fn pin_count(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }

    /// Total retired (non-current) versions held across all relations
    /// (diagnostics: must be 0 when no pins are outstanding).
    pub fn retained_versions(&self) -> usize {
        self.inner
            .lock()
            .entries
            .values()
            .map(|v| v.len().saturating_sub(1))
            .sum()
    }

    /// A private copy of this store for an epoch-pinned reader: shares the
    /// snapshot versions (`Arc`) and cached footprints at fork time, but is
    /// fully isolated afterwards — the pin's cold resolutions (which may
    /// mint scratch skolem ids deterministic only for that pin's own read
    /// history) never flow back, and later live-store maintenance never
    /// touches the fork. The fork starts with zero pins and zero counters.
    pub fn fork_for_pin(&self) -> SnapshotStore {
        // A pinned view's storage reproduces the origin's epochs and
        // inherits its branch tag, so the fork keeps the owner binding.
        self.fork_owned_by(self.owner_tag.load(Ordering::Relaxed))
    }

    /// A private copy of this store for a **branch** fork: shares entries
    /// and footprints like [`fork_for_pin`](SnapshotStore::fork_for_pin)
    /// (the branch storage reproduces the fork-point epochs exactly, so
    /// every warm entry stays servable), but bound to the branch storage's
    /// fresh tag — after divergence, neither branch's entries can be
    /// mistaken for the other's.
    pub fn fork_for_branch(&self, branch_tag: u64) -> SnapshotStore {
        self.fork_owned_by(branch_tag)
    }

    fn fork_owned_by(&self, owner_tag: u64) -> SnapshotStore {
        let inner = self.inner.lock();
        SnapshotStore {
            inner: Mutex::new(Inner {
                entries: inner.entries.clone(),
                footprints: inner.footprints.clone(),
            }),
            pins: AtomicU64::new(0),
            owner_tag: AtomicU64::new(owner_tag),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

/// Apply an exact delta to an entry's snapshot (copy-on-write) and patch its
/// indexes in place. Returns `false` if the delta cannot be applied (the
/// entry is then dropped by the caller).
fn patch_entry(entry: &mut Entry, delta: &Delta) -> bool {
    if let Some(rel) = entry.rel.as_mut() {
        let rel = Arc::make_mut(rel);
        for key in delta.deletes.keys() {
            if !delta.inserts.contains_key(key) {
                rel.delete_if_present(*key);
            }
        }
        for (key, row) in &delta.inserts {
            if rel.upsert(*key, row.clone()).is_err() {
                return false;
            }
        }
    }
    if !entry.indexes.is_empty() {
        let keys: BTreeSet<Key> = delta
            .deletes
            .keys()
            .chain(delta.inserts.keys())
            .copied()
            .collect();
        for key in keys {
            let old = delta.deletes.get(&key);
            let new = delta.inserts.get(&key);
            for (col, index) in entry.indexes.iter_mut() {
                Arc::make_mut(index).apply_row_change(*col, key, old, new);
            }
        }
    }
    true
}

/// The maintenance plan one logical write accumulates while draining: which
/// relations have exact deltas to patch with, which must be invalidated
/// (recompute-path hops), and which physical aux tables were purged.
#[derive(Debug, Default)]
pub struct SnapshotMaintenance {
    /// Relation → exact delta, composed in application order (the same
    /// [`Delta::merge`] composition the drain applies physically).
    pub patches: DeltaMap,
    /// Relations whose deltas came from a recompute-path hop.
    pub invalidate: BTreeSet<String>,
    /// Physical aux tables purged by this write.
    pub purged: BTreeSet<String>,
}

impl SnapshotMaintenance {
    /// Empty plan.
    pub fn new() -> Self {
        SnapshotMaintenance::default()
    }

    /// Record an exact delta for `relation`; invalidation, once recorded,
    /// wins over patching. An **empty** delta is meaningful: it certifies
    /// the relation is unchanged by this write, so its entry's footprint
    /// epochs can be refreshed instead of going stale.
    pub fn record_patch(&mut self, relation: &str, delta: &Delta) {
        if self.invalidate.contains(relation) {
            return;
        }
        match self.patches.get_mut(relation) {
            Some(existing) => existing.merge(delta),
            None => {
                self.patches.insert(relation.to_string(), delta.clone());
            }
        }
    }

    /// Mark `relation` for invalidation (its delta is not patchable).
    pub fn record_invalidate(&mut self, relation: &str) {
        self.patches.remove(relation);
        self.invalidate.insert(relation.to_string());
    }

    /// Record that `table`'s rows were purged outside delta propagation.
    pub fn record_purge(&mut self, table: &str) {
        self.purged.insert(table.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::{TableSchema, Value, WriteBatch};

    fn storage_with(name: &str) -> Storage {
        let s = Storage::new();
        s.create_table(TableSchema::new(name, ["a"]).unwrap())
            .unwrap();
        s
    }

    fn rel_with(name: &str, rows: &[(u64, i64)]) -> Arc<Relation> {
        let mut r = Relation::with_columns(name, ["a"]);
        for (k, v) in rows {
            r.insert(Key(*k), vec![Value::Int(*v)]).unwrap();
        }
        Arc::new(r)
    }

    fn bump(storage: &Storage, table: &str, key: u64, v: i64) {
        let mut b = WriteBatch::new();
        b.upsert(table, Key(key), vec![Value::Int(v)]);
        storage.apply(&b).unwrap();
    }

    #[test]
    fn entries_serve_until_footprint_epoch_moves() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        let fp = BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]);
        store.store_entry("V", rel_with("V", &[(1, 10)]), fp);
        assert!(store.get("V", &storage).is_some());
        assert_eq!(store.stats().hits, 1);
        bump(&storage, "T", 7, 7);
        assert!(store.get("V", &storage).is_none());
        assert!(store.is_empty(), "stale entry must be dropped");
    }

    #[test]
    fn commit_patches_valid_entries_and_refreshes_epochs() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        let fp = BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]);
        store.store_entry("V", rel_with("V", &[(1, 10), (2, 20)]), fp);

        let valid = store.valid_rels(&storage);
        assert!(valid.contains("V"));
        bump(&storage, "T", 3, 30); // the physical half of the write
        let mut maint = SnapshotMaintenance::new();
        let mut d = Delta::insert(Key(3), vec![Value::Int(30)]);
        d.deletes.insert(Key(1), vec![Value::Int(10)]);
        maint.record_patch("V", &d);
        store.commit(&maint, &valid, &storage);

        let rel = store.get("V", &storage).expect("patched entry is warm");
        assert_eq!(rel.len(), 2);
        assert!(rel.get(Key(1)).is_none());
        assert_eq!(rel.get(Key(3)), Some(&vec![Value::Int(30)]));
        assert_eq!(store.stats().patches, 1);
    }

    #[test]
    fn commit_drops_invalidated_and_purge_hit_entries() {
        let storage = storage_with("T");
        storage
            .create_table(TableSchema::new("Aux", ["a"]).unwrap())
            .unwrap();
        let store = SnapshotStore::new();
        let e = |t: &str| storage.epoch_of(t);
        store.store_entry(
            "V",
            rel_with("V", &[(1, 10)]),
            BTreeMap::from([("T".to_string(), e("T"))]),
        );
        store.store_entry(
            "W",
            rel_with("W", &[(1, 10)]),
            BTreeMap::from([("T".to_string(), e("T")), ("Aux".to_string(), e("Aux"))]),
        );
        let valid = store.valid_rels(&storage);
        let mut maint = SnapshotMaintenance::new();
        maint.record_invalidate("V");
        maint.record_patch("V", &Delta::insert(Key(9), vec![Value::Int(9)]));
        maint.record_patch("W", &Delta::insert(Key(9), vec![Value::Int(9)]));
        maint.record_purge("Aux");
        store.commit(&maint, &valid, &storage);
        assert!(store.get("V", &storage).is_none(), "invalidation wins");
        assert!(
            store.get("W", &storage).is_none(),
            "purge in footprint forces invalidation"
        );
        assert_eq!(store.stats().invalidations, 2);
    }

    #[test]
    fn indexes_follow_their_snapshot() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        let fp = BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]);
        let snap = rel_with("V", &[(1, 10), (2, 10)]);
        store.store_entry("V", Arc::clone(&snap), fp);
        let idx = Arc::new(snap.build_column_index(0));
        store.store_index_virtual("V", 0, idx, &snap);
        assert!(store.get_index_virtual("V", 0, &snap).is_some());
        // Attach against a replaced snapshot is refused.
        let other = rel_with("V", &[(5, 50)]);
        store.store_index_virtual("V", 1, Arc::new(other.build_column_index(0)), &other);
        assert!(store.get_index_virtual("V", 1, &snap).is_none());
        // And serving is snapshot-identity-guarded too.
        assert!(store.get_index_virtual("V", 0, &other).is_none());

        // Patch keeps the index in sync — and replaces the snapshot Arc,
        // so a statement still holding the old snapshot no longer matches.
        let valid = store.valid_rels(&storage);
        bump(&storage, "T", 9, 9);
        let mut maint = SnapshotMaintenance::new();
        maint.record_patch(
            "V",
            &Delta::update(Key(2), vec![Value::Int(10)], vec![Value::Int(33)]),
        );
        store.commit(&maint, &valid, &storage);
        assert!(store.get_index_virtual("V", 0, &snap).is_none());
        let patched = store.get("V", &storage).expect("patched entry is warm");
        let idx = store
            .get_index_virtual("V", 0, &patched)
            .expect("still cached");
        assert_eq!(idx.keys_for(&Value::Int(10)), &[Key(1)]);
        assert_eq!(idx.keys_for(&Value::Int(33)), &[Key(2)]);
    }

    #[test]
    fn physical_index_entries_guard_on_epoch() {
        let storage = storage_with("T");
        bump(&storage, "T", 1, 10);
        let store = SnapshotStore::new();
        let (snap, epoch) = storage.snapshot_with_epoch("T").unwrap();
        let idx = Arc::new(snap.build_column_index(0));
        store.store_index_physical("T", 0, Arc::clone(&idx), epoch);
        assert!(store.get_index_physical("T", 0, epoch).is_some());
        // After the table moves, a statement reading the *new* epoch must
        // not be served the old index (and a stale re-attach is refused).
        bump(&storage, "T", 2, 20);
        let now = storage.epoch_of("T");
        assert!(store.get_index_physical("T", 0, now).is_none());
        store.store_index_physical("T", 0, idx, epoch);
        assert!(store.get_index_physical("T", 0, now).is_none());
    }

    #[test]
    fn pins_retire_superseded_versions_and_release_prunes() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        let pinned_epoch = storage.epoch_of("T");
        let fp = BTreeMap::from([("T".to_string(), pinned_epoch)]);
        store.store_entry("V", rel_with("V", &[(1, 10)]), fp);

        store.acquire_pin();
        // A reader pins the current table epochs before the table moves.
        let pinned_tables = BTreeMap::from([(
            "T".to_string(),
            (storage.snapshot("T").unwrap(), pinned_epoch),
        )]);
        bump(&storage, "T", 7, 7);
        // Live probe misses but the stale version is retired, not dropped.
        assert!(store.get("V", &storage).is_none());
        assert_eq!(store.len(), 1, "version retired while pinned");
        // A fresh store_entry supersedes: old version retained alongside.
        let fp_new = BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]);
        store.store_entry("V", rel_with("V", &[(1, 10), (7, 7)]), fp_new);
        assert_eq!(store.retained_versions(), 1);

        // A pinned storage view reproducing the old epochs is served the
        // retired version; live storage is served the current one.
        let pinned = Storage::from_pinned(pinned_tables, 1);
        let old = store.get("V", &pinned).expect("retired version serves pin");
        assert_eq!(old.len(), 1);
        let new = store.get("V", &storage).expect("current serves live");
        assert_eq!(new.len(), 2);

        store.release_pin();
        assert_eq!(store.retained_versions(), 0, "release prunes retirees");
        assert!(store.get("V", &storage).is_some(), "current survives");
    }

    #[test]
    fn fork_for_pin_is_isolated_from_live_store() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        let pinned_epoch = storage.epoch_of("T");
        store.store_entry(
            "V",
            rel_with("V", &[(1, 10)]),
            BTreeMap::from([("T".to_string(), pinned_epoch)]),
        );
        store.acquire_pin();
        let pinned_tables = BTreeMap::from([(
            "T".to_string(),
            (storage.snapshot("T").unwrap(), pinned_epoch),
        )]);
        bump(&storage, "T", 7, 7);
        store.store_entry(
            "V",
            rel_with("V", &[(1, 10), (7, 7)]),
            BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]),
        );

        let fork = store.fork_for_pin();
        let pinned = Storage::from_pinned(pinned_tables, 1);
        // The fork serves the pin's epochs even after the live store drops
        // every version.
        store.clear();
        let rel = fork.get("V", &pinned).expect("fork serves pinned epoch");
        assert_eq!(rel.len(), 1);
        // And writes into the fork never reach the live store.
        fork.store_entry(
            "W",
            rel_with("W", &[(2, 2)]),
            BTreeMap::from([("T".to_string(), pinned.epoch_of("T"))]),
        );
        assert!(store.is_empty());
        store.release_pin();
    }

    #[test]
    fn correctness_invalidation_drops_even_under_pin() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        store.store_entry(
            "V",
            rel_with("V", &[(1, 10)]),
            BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]),
        );
        store.acquire_pin();
        store.invalidate("V");
        assert!(
            store.get("V", &storage).is_none(),
            "targeted invalidation is never retired"
        );
        assert!(store.is_empty());
        assert_eq!(store.stats().invalidations, 1);
        store.release_pin();
    }

    #[test]
    fn bound_store_refuses_foreign_branch_storage() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        store.bind_owner(storage.branch_tag());
        store.store_entry(
            "V",
            rel_with("V", &[(1, 10)]),
            BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]),
        );
        assert!(store.get("V", &storage).is_some());

        // A fork reproduces the same epochs under a different tag — the
        // exact stamps match, but the store must refuse to serve it.
        let foreign = storage.fork();
        assert_eq!(foreign.epoch_of("T"), storage.epoch_of("T"));
        assert!(store.peek_valid("V", &foreign).is_none());
        assert!(store.valid_rels(&foreign).is_empty());
        let misses_before = store.stats().misses;
        assert!(store.get("V", &foreign).is_none());
        assert_eq!(store.stats().misses, misses_before + 1);
        // The refusal must not evict the entry the owner still wants.
        assert!(store.get("V", &storage).is_some());

        // A branch fork of the store serves the branch storage warm.
        let branch_store = store.fork_for_branch(foreign.branch_tag());
        assert!(branch_store.get("V", &foreign).is_some());
        assert!(branch_store.get("V", &storage).is_none());

        // A pin fork keeps the owner binding, serving a tag-inheriting
        // pinned view.
        let pin_fork = store.fork_for_pin();
        let pinned = Storage::from_pinned_tagged(
            storage.snapshot_all(),
            storage.sequences().current_key(),
            storage.branch_tag(),
        );
        assert!(pin_fork.get("V", &pinned).is_some());
    }

    #[test]
    fn clear_empties_everything() {
        let storage = storage_with("T");
        let store = SnapshotStore::new();
        let fp = store.footprint_of("V", || BTreeSet::from(["T".to_string()]));
        assert_eq!(fp.len(), 1);
        store.store_entry(
            "V",
            rel_with("V", &[(1, 1)]),
            BTreeMap::from([("T".to_string(), storage.epoch_of("T"))]),
        );
        store.clear();
        assert!(store.is_empty());
        // Footprint cache cleared too: recomputed on next ask.
        let fp2 = store.footprint_of("V", BTreeSet::new);
        assert!(fp2.is_empty());
    }
}
