//! Lazy versioned EDB: resolves any table version's state by expanding SMO
//! mappings toward the physical storage.
//!
//! This is the engine-side equivalent of the generated *views* (Section 6):
//! each virtual table version is defined by the mapping rules of exactly one
//! adjacent SMO instance — γ_src of a materialized outgoing SMO (Case 2,
//! forwards) or γ_tgt of the virtualized incoming SMO (Case 3, backwards) —
//! and those rules reference relations one step closer to the data, so
//! resolution recurses along the genealogy and terminates at physical
//! tables. Key lookups are pushed through the mapping rules instead of
//! materializing whole relations, like a DBMS optimizer pushing a key
//! predicate into a view.
//!
//! Mappings are evaluated in their **compiled** form, served by the
//! database-wide [`CompiledStore`]; resolved relations, per-key rows, and
//! secondary join indexes are all cached for the lifetime of the view (one
//! statement / one propagation step).

use crate::compiled::{CompiledStore, Direction};
use crate::Result;
use inverda_catalog::{Genealogy, MaterializationSchema, StorageCase, TableVersionId};
use inverda_datalog::eval::{evaluate_compiled, EdbView, Evaluator, IdSource};
use inverda_datalog::{CompiledRuleSet, DatalogError, RuleSet};
use inverda_storage::{ColumnIndex, IndexCache, Key, Relation, Row, Storage};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Read view over the whole versioned database under one materialization
/// schema. Caches resolved relations, key lookups, and join indexes for the
/// lifetime of the view (one statement / one propagation step).
pub struct VersionedEdb<'a> {
    genealogy: &'a Genealogy,
    materialization: &'a MaterializationSchema,
    storage: &'a Storage,
    ids: &'a dyn IdSource,
    compiled: &'a CompiledStore,
    /// rel name → table version (for virtual resolution).
    rel_index: BTreeMap<String, TableVersionId>,
    /// aux rel name → (owning SMO, lives on target side). A non-physical
    /// aux table is part of the *derived* state of its side and resolves
    /// through the owning SMO's mapping.
    aux_index: BTreeMap<String, (inverda_catalog::SmoId, bool)>,
    /// rel name → column names (for derived relation schemas).
    head_columns: BTreeMap<String, Vec<String>>,
    cache: RefCell<BTreeMap<String, Arc<Relation>>>,
    /// Two-level `rel → key → row` cache: lookups are by `&str`, so the hot
    /// path allocates nothing.
    key_cache: RefCell<HashMap<String, HashMap<Key, Option<Row>>>>,
    /// Secondary join indexes per `(rel, column)`, shared with every
    /// evaluator that probes through this view.
    index_cache: IndexCache,
}

impl<'a> VersionedEdb<'a> {
    /// Build a view for the given catalog state.
    pub fn new(
        genealogy: &'a Genealogy,
        materialization: &'a MaterializationSchema,
        storage: &'a Storage,
        ids: &'a dyn IdSource,
        compiled: &'a CompiledStore,
    ) -> Self {
        let mut rel_index = BTreeMap::new();
        let mut aux_index = BTreeMap::new();
        let mut head_columns = BTreeMap::new();
        for tv in genealogy.table_versions() {
            rel_index.insert(tv.rel.clone(), tv.id);
            head_columns.insert(tv.rel.clone(), tv.columns.clone());
        }
        for smo in genealogy.smos() {
            for aux in &smo.derived.src_aux {
                aux_index.insert(aux.rel.clone(), (smo.id, false));
            }
            for aux in &smo.derived.tgt_aux {
                aux_index.insert(aux.rel.clone(), (smo.id, true));
            }
            for aux in smo.derived.all_aux() {
                head_columns.insert(aux.rel.clone(), aux.columns.clone());
            }
            for shared in &smo.derived.shared_aux {
                head_columns.insert(shared.new_name.clone(), shared.table.columns.clone());
            }
        }
        VersionedEdb {
            genealogy,
            materialization,
            storage,
            ids,
            compiled,
            rel_index,
            aux_index,
            head_columns,
            cache: RefCell::new(BTreeMap::new()),
            key_cache: RefCell::new(HashMap::new()),
            index_cache: IndexCache::new(),
        }
    }

    /// Column-name map for derived heads (shared with the delta engine).
    pub fn head_columns(&self) -> &BTreeMap<String, Vec<String>> {
        &self.head_columns
    }

    /// The mapping that defines a virtual table version, together with the
    /// head name to extract: γ_src of the materialized outgoing SMO
    /// (forwards) or γ_tgt of the virtualized incoming SMO (backwards).
    fn defining_rules(
        &self,
        tv: TableVersionId,
    ) -> Option<(inverda_catalog::SmoId, Direction, &'a RuleSet)> {
        match self.materialization.storage_of(self.genealogy, tv) {
            StorageCase::Local => None,
            StorageCase::Forward(m) => {
                Some((m, Direction::ToSrc, &self.genealogy.smo(m).derived.to_src))
            }
            StorageCase::Backward(m) => {
                Some((m, Direction::ToTgt, &self.genealogy.smo(m).derived.to_tgt))
            }
        }
    }

    /// Compiled form of an SMO's rule set, via the database-wide store.
    fn compiled_rules(
        &self,
        smo: inverda_catalog::SmoId,
        direction: Direction,
        rules: &RuleSet,
    ) -> inverda_datalog::Result<Arc<CompiledRuleSet>> {
        self.compiled.get_or_compile(smo, direction, rules)
    }

    fn resolve_with(&self, relation: &str, crs: &CompiledRuleSet) -> Result<Arc<Relation>> {
        let out = evaluate_compiled(crs, self, self.ids, &self.head_columns)
            .map_err(crate::CoreError::from)?;
        let mut cache = self.cache.borrow_mut();
        let mut requested = None;
        for (head, rel) in out {
            // Cache sibling heads too — one evaluation serves every output
            // of the defining SMO: the side's table versions and its
            // (virtual) aux tables. Shared `@new` heads describe the next
            // physical state, not current state, and intermediate heads
            // (Sn, Ro, …) are artifacts — skip both.
            if self.rel_index.contains_key(&head)
                || (self.aux_index.contains_key(&head) && !self.storage.has_table(&head))
            {
                let shared = Arc::new(rel);
                if head == relation {
                    requested = Some(Arc::clone(&shared));
                }
                cache.insert(head, shared);
            }
        }
        match requested {
            Some(rel) => Ok(rel),
            // An aux table the mapping derives no rules for is empty by
            // construction (e.g. the single-arm split's R⁻, which has no
            // second twin to lose).
            None if self.aux_index.contains_key(relation) => {
                let columns = self.head_columns.get(relation).cloned().unwrap_or_default();
                let empty = Arc::new(Relation::new(
                    inverda_storage::TableSchema::new(relation.to_string(), columns)
                        .expect("valid aux schema"),
                ));
                cache.insert(relation.to_string(), Arc::clone(&empty));
                Ok(empty)
            }
            None => Err(crate::CoreError::from(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            })),
        }
    }

    fn resolve_virtual(&self, relation: &str, tv: TableVersionId) -> Result<Arc<Relation>> {
        let (smo, direction, rules) = self
            .defining_rules(tv)
            .expect("virtual table version must have defining rules");
        let crs = self
            .compiled_rules(smo, direction, rules)
            .map_err(crate::CoreError::from)?;
        self.resolve_with(relation, &crs)
    }

    /// Resolve a non-physical aux table: it is part of its side's derived
    /// state, so evaluate the mapping *toward* that side.
    fn resolve_virtual_aux(
        &self,
        relation: &str,
        smo: inverda_catalog::SmoId,
        tgt_side: bool,
    ) -> Result<Arc<Relation>> {
        let inst = self.genealogy.smo(smo);
        let (direction, rules) = if tgt_side {
            (Direction::ToTgt, &inst.derived.to_tgt)
        } else {
            (Direction::ToSrc, &inst.derived.to_src)
        };
        let crs = self
            .compiled_rules(smo, direction, rules)
            .map_err(crate::CoreError::from)?;
        self.resolve_with(relation, &crs)
    }
}

impl EdbView for VersionedEdb<'_> {
    fn full(&self, relation: &str) -> inverda_datalog::Result<Arc<Relation>> {
        if let Some(hit) = self.cache.borrow().get(relation) {
            return Ok(Arc::clone(hit));
        }
        // Physical tables (data tables in P, aux tables, shared aux).
        if self.storage.has_table(relation) {
            let rel = self
                .storage
                .snapshot(relation)
                .map_err(DatalogError::Storage)?;
            let shared = Arc::new(rel);
            self.cache
                .borrow_mut()
                .insert(relation.to_string(), Arc::clone(&shared));
            return Ok(shared);
        }
        // Virtual table versions and virtual aux tables.
        let resolved = if let Some(tv) = self.rel_index.get(relation).copied() {
            self.resolve_virtual(relation, tv)
        } else if let Some((smo, tgt_side)) = self.aux_index.get(relation).copied() {
            self.resolve_virtual_aux(relation, smo, tgt_side)
        } else {
            return Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            });
        };
        resolved.map_err(|e| match e {
            crate::CoreError::Datalog(d) => d,
            other => DatalogError::UnboundRelation {
                relation: format!("{relation} ({other})"),
            },
        })
    }

    fn by_key(&self, relation: &str, key: Key) -> inverda_datalog::Result<Option<Row>> {
        if let Some(hit) = self.cache.borrow().get(relation) {
            return Ok(hit.get(key).cloned());
        }
        if let Some(hit) = self
            .key_cache
            .borrow()
            .get(relation)
            .and_then(|m| m.get(&key))
        {
            return Ok(hit.clone());
        }
        if self.storage.has_table(relation) {
            let row = self
                .storage
                .with_table(relation, |rel| rel.get(key).cloned())
                .map_err(DatalogError::Storage)?;
            return Ok(row);
        }
        let Some(tv) = self.rel_index.get(relation).copied() else {
            // Virtual aux tables resolve through their full state.
            if self.aux_index.contains_key(relation) {
                return Ok(self.full(relation)?.get(key).cloned());
            }
            return Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            });
        };
        let Some((smo, direction, rules)) = self.defining_rules(tv) else {
            return Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            });
        };
        let crs = self.compiled_rules(smo, direction, rules)?;
        // Staged rule sets (the id-generating SMOs) consume their own
        // intermediate heads, which are not resolvable relations — fall back
        // to full resolution for them.
        if crs.staged() {
            return Ok(self.full(relation)?.get(key).cloned());
        }
        // Push the key through the defining mapping.
        let mut ev = Evaluator::new(self, self.ids);
        let row = ev.head_row_for_key(&crs, relation, key)?;
        self.key_cache
            .borrow_mut()
            .entry(relation.to_string())
            .or_default()
            .insert(key, row.clone());
        Ok(row)
    }

    fn contains(&self, relation: &str) -> bool {
        self.storage.has_table(relation) || self.rel_index.contains_key(relation)
    }

    fn index(&self, relation: &str, column: usize) -> inverda_datalog::Result<Arc<ColumnIndex>> {
        self.index_cache.get_or_build(relation, column, || {
            Ok(self.full(relation)?.build_column_index(column))
        })
    }
}
