//! Lazy versioned EDB: resolves any table version's state by expanding SMO
//! mappings toward the physical storage.
//!
//! This is the engine-side equivalent of the generated *views* (Section 6):
//! each virtual table version is defined by the mapping rules of exactly one
//! adjacent SMO instance — γ_src of a materialized outgoing SMO (Case 2,
//! forwards) or γ_tgt of the virtualized incoming SMO (Case 3, backwards) —
//! and those rules reference relations one step closer to the data, so
//! resolution recurses along the genealogy and terminates at physical
//! tables. Key lookups are pushed through the mapping rules instead of
//! materializing whole relations, like a DBMS optimizer pushing a key
//! predicate into a view.
//!
//! Mappings are evaluated in their **compiled** form, served by the
//! database-wide [`CompiledStore`]. Resolved relations, per-key rows, and
//! secondary join indexes are cached for the lifetime of the view (one
//! statement / one propagation step) — and, when the view is bound to the
//! database's [`SnapshotStore`], resolved snapshots outlive the statement:
//! a warm read reuses the stored `Arc<Relation>` (and its indexes) as long
//! as every physical table in the relation's static resolution footprint
//! still shows the storage epoch stamped at resolution time. Cold
//! resolutions stamp their footprint *before* evaluating, so a snapshot
//! raced by a concurrent write can never be served (its stamp is already
//! behind the table's epoch).

use crate::compiled::{CompiledStore, Direction, FusedChain};
use crate::snapshot::SnapshotStore;
use crate::Result;
use inverda_catalog::{Genealogy, MaterializationSchema, StorageCase, TableVersionId};
use inverda_datalog::eval::{evaluate_compiled, EdbView, Evaluator, IdSource};
use inverda_datalog::simplify::{apply_empty, Derivation};
use inverda_datalog::{fusion, CompiledRuleSet, DatalogError, Literal, RuleSet};
use inverda_storage::{ColumnIndex, IndexCache, Key, Relation, Row, Storage, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// One relation's seeded-probe memo: `column → probe value → rows`. Two
/// levels so lookups probe with a **borrowed** value (no allocation on the
/// hit or miss path).
type ColumnRows = HashMap<usize, HashMap<Value, Vec<(Key, Row)>>>;

/// SMO kinds whose mappings may start or extend a fused γ-chain: the
/// column-level SMOs, whose rule sets are linear in a single data relation
/// of the adjacent version. SPLIT/MERGE, JOIN, and DECOMPOSE restructure
/// rows across relations (and the id-generating ones mint), so they
/// terminate a run and are resolved hop by hop.
const FUSABLE_KINDS: [&str; 4] = ["ADD COLUMN", "DROP COLUMN", "RENAME COLUMN", "RENAME TABLE"];

/// Read view over the whole versioned database under one materialization
/// schema. Caches resolved relations, key lookups, and join indexes for the
/// lifetime of the view (one statement / one propagation step); bound to a
/// [`SnapshotStore`], it additionally reuses and replenishes cross-statement
/// snapshots.
pub struct VersionedEdb<'a> {
    genealogy: &'a Genealogy,
    materialization: &'a MaterializationSchema,
    storage: &'a Storage,
    ids: &'a (dyn IdSource + Sync),
    compiled: &'a CompiledStore,
    /// Cross-statement snapshot store, when reuse is enabled.
    snapshots: Option<&'a SnapshotStore>,
    /// rel name → table version (for virtual resolution).
    rel_index: BTreeMap<String, TableVersionId>,
    /// aux rel name → (owning SMO, lives on target side). A non-physical
    /// aux table is part of the *derived* state of its side and resolves
    /// through the owning SMO's mapping.
    aux_index: BTreeMap<String, (inverda_catalog::SmoId, bool)>,
    /// rel name → column names (for derived relation schemas).
    head_columns: BTreeMap<String, Vec<String>>,
    /// Caches are mutex-guarded (not `RefCell`) so the view is `Sync` and
    /// one statement's view can be shared by parallel evaluation workers.
    cache: Mutex<BTreeMap<String, Arc<Relation>>>,
    /// Physical table → epoch of the snapshot this statement reads (first
    /// access wins, so footprint stamps agree with the data actually read).
    seen_epochs: Mutex<HashMap<String, u64>>,
    /// Two-level `rel → key → row` cache: lookups are by `&str`, so the hot
    /// path allocates nothing.
    key_cache: Mutex<HashMap<String, HashMap<Key, Option<Row>>>>,
    /// Per-relation memo of [`pushable_cold`](VersionedEdb::pushable_cold):
    /// the check walks the whole resolution closure, and a seeded probe
    /// re-asks it at every recursion level of an N-hop chain. Pushability
    /// only ever *improves* as this statement's caches warm (a mint-free
    /// closure stays mint-free), so a memoized verdict can be conservative
    /// but never wrong.
    push_cache: Mutex<HashMap<String, bool>>,
    /// `rel → column → probe value → rows` memo for seeded pushdown.
    /// Load-bearing, not just a nicety: the rules of one γ mapping (and
    /// every recursion level above) probe the same lower relation with the
    /// same binding, so without the memo an N-hop chain whose mappings have
    /// k rules fans out into k^N recursive probes.
    col_cache: Mutex<HashMap<String, ColumnRows>>,
    /// Secondary join indexes per `(rel, column)`, shared with every
    /// evaluator that probes through this view.
    index_cache: IndexCache,
}

impl<'a> VersionedEdb<'a> {
    /// Build a view for the given catalog state.
    pub fn new(
        genealogy: &'a Genealogy,
        materialization: &'a MaterializationSchema,
        storage: &'a Storage,
        ids: &'a (dyn IdSource + Sync),
        compiled: &'a CompiledStore,
    ) -> Self {
        let mut rel_index = BTreeMap::new();
        let mut aux_index = BTreeMap::new();
        let mut head_columns = BTreeMap::new();
        for tv in genealogy.table_versions() {
            rel_index.insert(tv.rel.clone(), tv.id);
            head_columns.insert(tv.rel.clone(), tv.columns.clone());
        }
        for smo in genealogy.smos() {
            for aux in &smo.derived.src_aux {
                aux_index.insert(aux.rel.clone(), (smo.id, false));
            }
            for aux in &smo.derived.tgt_aux {
                aux_index.insert(aux.rel.clone(), (smo.id, true));
            }
            for aux in smo.derived.all_aux() {
                head_columns.insert(aux.rel.clone(), aux.columns.clone());
            }
            for shared in &smo.derived.shared_aux {
                head_columns.insert(shared.new_name.clone(), shared.table.columns.clone());
            }
        }
        VersionedEdb {
            genealogy,
            materialization,
            storage,
            ids,
            compiled,
            snapshots: None,
            rel_index,
            aux_index,
            head_columns,
            cache: Mutex::new(BTreeMap::new()),
            seen_epochs: Mutex::new(HashMap::new()),
            key_cache: Mutex::new(HashMap::new()),
            push_cache: Mutex::new(HashMap::new()),
            col_cache: Mutex::new(HashMap::new()),
            index_cache: IndexCache::new(),
        }
    }

    /// Bind the view to a cross-statement snapshot store: warm reads are
    /// served from (and cold resolutions recorded into) the store.
    pub fn with_store(mut self, store: &'a SnapshotStore) -> Self {
        self.snapshots = Some(store);
        self
    }

    /// Column-name map for derived heads (shared with the delta engine).
    pub fn head_columns(&self) -> &BTreeMap<String, Vec<String>> {
        &self.head_columns
    }

    /// The mapping that defines a virtual table version, together with the
    /// head name to extract: γ_src of the materialized outgoing SMO
    /// (forwards) or γ_tgt of the virtualized incoming SMO (backwards).
    fn defining_rules(
        &self,
        tv: TableVersionId,
    ) -> Option<(inverda_catalog::SmoId, Direction, &'a RuleSet)> {
        match self.materialization.storage_of(self.genealogy, tv) {
            StorageCase::Local => None,
            StorageCase::Forward(m) => {
                Some((m, Direction::ToSrc, &self.genealogy.smo(m).derived.to_src))
            }
            StorageCase::Backward(m) => {
                Some((m, Direction::ToTgt, &self.genealogy.smo(m).derived.to_tgt))
            }
        }
    }

    /// The mapping direction and rule set that derive an aux table's side:
    /// γ_tgt for target-side aux, γ_src for source-side.
    fn aux_rules(&self, smo: inverda_catalog::SmoId, tgt_side: bool) -> (Direction, &'a RuleSet) {
        let inst = self.genealogy.smo(smo);
        if tgt_side {
            (Direction::ToTgt, &inst.derived.to_tgt)
        } else {
            (Direction::ToSrc, &inst.derived.to_src)
        }
    }

    /// The rule set whose evaluation materializes `relation` (a virtual
    /// table version or a virtual aux table), if any.
    fn resolving_rules(&self, relation: &str) -> Option<&'a RuleSet> {
        if let Some(tv) = self.rel_index.get(relation) {
            return self.defining_rules(*tv).map(|(_, _, rules)| rules);
        }
        if let Some((smo, tgt_side)) = self.aux_index.get(relation).copied() {
            return Some(self.aux_rules(smo, tgt_side).1);
        }
        None
    }

    /// The set of physical tables `relation`'s resolution can possibly read:
    /// the body relations of its defining rule set, expanded recursively
    /// through virtual relations down to storage. Computed over the rule
    /// *structure* (not the data), so it over-approximates any concrete
    /// evaluation's read set and is stable while the catalog is — exactly
    /// what the snapshot store needs for sound epoch invalidation.
    pub fn static_footprint(&self, relation: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut visited = BTreeSet::new();
        self.collect_footprint(relation, &mut out, &mut visited);
        out
    }

    fn collect_footprint(
        &self,
        relation: &str,
        out: &mut BTreeSet<String>,
        visited: &mut BTreeSet<String>,
    ) {
        if !visited.insert(relation.to_string()) {
            return;
        }
        if self.storage.has_table(relation) {
            out.insert(relation.to_string());
            return;
        }
        let Some(rules) = self.resolving_rules(relation) else {
            return;
        };
        // Heads of the same set (the `old`/`new` staging intermediates) are
        // derived in place — their inputs are this set's other body atoms.
        let heads: BTreeSet<&str> = rules
            .rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect();
        for rule in &rules.rules {
            for lit in &rule.body {
                if let Literal::Pos(atom) | Literal::Neg(atom) = lit {
                    if heads.contains(atom.relation.as_str()) {
                        continue;
                    }
                    self.collect_footprint(&atom.relation, out, visited);
                }
            }
        }
    }

    /// Whether resolving `relation` right now could **evaluate id-minting
    /// rules cold**: true if the relation is neither physical, nor already
    /// resolved in this statement's cache, nor servable warm from the
    /// snapshot store, *and* some rule set in its resolution closure
    /// (defining rule sets expanded recursively through virtual relations,
    /// like [`static_footprint`](VersionedEdb::static_footprint)) binds a
    /// variable through a generator.
    ///
    /// Cold minting resolutions have side effects whose order matters — a
    /// width-1 evaluation triggers them lazily, in first-touch order — so
    /// the parallel preparation refuses to front-load them and falls back
    /// to the sequential path, which performs (and commits) the mints at
    /// their canonical position. Once committed, re-serving the relation
    /// warm or from cache is a pure read, so subsequent statements take the
    /// parallel path.
    fn resolution_may_mint_cold(&self, relation: &str, visited: &mut BTreeSet<String>) -> bool {
        if !visited.insert(relation.to_string()) {
            return false;
        }
        if self.storage.has_table(relation) || self.cache.lock().contains_key(relation) {
            return false;
        }
        if let Some(store) = self.snapshots {
            if store.peek_valid(relation, self.storage).is_some() {
                return false;
            }
        }
        let Some(rules) = self.resolving_rules(relation) else {
            return false;
        };
        let heads: BTreeSet<&str> = rules
            .rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect();
        for rule in &rules.rules {
            for lit in &rule.body {
                match lit {
                    Literal::Skolem { .. } => return true,
                    Literal::Pos(atom) | Literal::Neg(atom) => {
                        if heads.contains(atom.relation.as_str()) {
                            continue;
                        }
                        if self.resolution_may_mint_cold(&atom.relation, visited) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
        }
        false
    }

    /// Footprint of `relation` stamped with the epochs this statement's
    /// snapshots correspond to: the first-read epoch where the table was
    /// already read, the current epoch otherwise. Stamps are taken *before*
    /// resolution, so a write racing the resolution leaves the stamp behind
    /// the restamped epoch and the entry is simply never served.
    fn stamped_footprint(&self, relation: &str) -> BTreeMap<String, u64> {
        let store = self.snapshots.expect("stamping requires a store");
        let footprint = store.footprint_of(relation, || self.static_footprint(relation));
        let seen = self.seen_epochs.lock();
        footprint
            .iter()
            .map(|table| {
                let epoch = seen
                    .get(table)
                    .copied()
                    .unwrap_or_else(|| self.storage.epoch_of(table));
                (table.clone(), epoch)
            })
            .collect()
    }

    /// Compiled form of an SMO's rule set, via the database-wide store.
    fn compiled_rules(
        &self,
        smo: inverda_catalog::SmoId,
        direction: Direction,
        rules: &RuleSet,
    ) -> inverda_datalog::Result<Arc<CompiledRuleSet>> {
        self.compiled.get_or_compile(smo, direction, rules)
    }

    fn resolve_with(
        &self,
        relation: &str,
        crs: &CompiledRuleSet,
        stamp: Option<&BTreeMap<String, u64>>,
    ) -> Result<Arc<Relation>> {
        let out = evaluate_compiled(crs, self, self.ids, &self.head_columns)
            .map_err(crate::CoreError::from)?;
        let mut cache = self.cache.lock();
        let mut requested = None;
        for (head, rel) in out {
            // Cache sibling heads too — one evaluation serves every output
            // of the defining SMO: the side's table versions and its
            // (virtual) aux tables. Shared `@new` heads describe the next
            // physical state, not current state, and intermediate heads
            // (Sn, Ro, …) are artifacts — skip both.
            if self.rel_index.contains_key(&head)
                || (self.aux_index.contains_key(&head) && !self.storage.has_table(&head))
            {
                let shared = Arc::new(rel);
                if head == relation {
                    requested = Some(Arc::clone(&shared));
                }
                // Every sibling head is defined by this same rule set, so
                // the requested relation's stamped footprint covers them.
                if let (Some(store), Some(stamp)) = (self.snapshots, stamp) {
                    store.store_entry(&head, Arc::clone(&shared), stamp.clone());
                }
                cache.insert(head, shared);
            }
        }
        match requested {
            Some(rel) => Ok(rel),
            // An aux table the mapping derives no rules for is empty by
            // construction (e.g. the single-arm split's R⁻, which has no
            // second twin to lose).
            None if self.aux_index.contains_key(relation) => {
                let columns = self.head_columns.get(relation).cloned().unwrap_or_default();
                let empty = Arc::new(Relation::new(
                    inverda_storage::TableSchema::new(relation.to_string(), columns)
                        .expect("valid aux schema"),
                ));
                if let (Some(store), Some(stamp)) = (self.snapshots, stamp) {
                    store.store_entry(relation, Arc::clone(&empty), stamp.clone());
                }
                cache.insert(relation.to_string(), Arc::clone(&empty));
                Ok(empty)
            }
            None => Err(crate::CoreError::from(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            })),
        }
    }

    fn resolve_virtual(
        &self,
        relation: &str,
        tv: TableVersionId,
        stamp: Option<&BTreeMap<String, u64>>,
    ) -> Result<Arc<Relation>> {
        // One fused hop instead of k, when the chain fuses. The stamp was
        // computed from the *original* hop-by-hop rules, i.e. the union of
        // every constituent hop's footprint — exactly the read set of the
        // fused evaluation (including the aux tables assumed empty).
        if let Some(chain) = self.fused_chain(relation, tv) {
            return self.resolve_with(relation, &chain.crs, stamp);
        }
        let (smo, direction, rules) = self
            .defining_rules(tv)
            .expect("virtual table version must have defining rules");
        let crs = self
            .compiled_rules(smo, direction, rules)
            .map_err(crate::CoreError::from)?;
        self.resolve_with(relation, &crs, stamp)
    }

    /// Resolve a non-physical aux table: it is part of its side's derived
    /// state, so evaluate the mapping *toward* that side.
    fn resolve_virtual_aux(
        &self,
        relation: &str,
        smo: inverda_catalog::SmoId,
        tgt_side: bool,
        stamp: Option<&BTreeMap<String, u64>>,
    ) -> Result<Arc<Relation>> {
        let (direction, rules) = self.aux_rules(smo, tgt_side);
        let crs = self
            .compiled_rules(smo, direction, rules)
            .map_err(crate::CoreError::from)?;
        self.resolve_with(relation, &crs, stamp)
    }

    /// The compiled defining rule set of a virtual relation (table version
    /// or aux table), if it has one.
    fn defining_compiled(
        &self,
        relation: &str,
    ) -> Option<inverda_datalog::Result<Arc<CompiledRuleSet>>> {
        if let Some(tv) = self.rel_index.get(relation).copied() {
            let (smo, direction, rules) = self.defining_rules(tv)?;
            return Some(self.compiled_rules(smo, direction, rules));
        }
        if let Some((smo, tgt_side)) = self.aux_index.get(relation).copied() {
            let (direction, rules) = self.aux_rules(smo, tgt_side);
            return Some(self.compiled_rules(smo, direction, rules));
        }
        None
    }

    /// The relation's state **without forcing a cold resolution**: served
    /// from the statement cache, physical storage, or a valid snapshot-store
    /// entry. `None` means only a cold evaluation could answer — the query
    /// planner then chooses between seeded pushdown and a full scan.
    pub fn peek_resolved(&self, relation: &str) -> inverda_datalog::Result<Option<Arc<Relation>>> {
        if let Some(hit) = self.cache.lock().get(relation) {
            return Ok(Some(Arc::clone(hit)));
        }
        if self.storage.has_table(relation) {
            return self.physical_full(relation).map(Some);
        }
        if let Some(store) = self.snapshots {
            if let Some(hit) = store.get(relation, self.storage) {
                self.cache
                    .lock()
                    .insert(relation.to_string(), Arc::clone(&hit));
                return Ok(Some(hit));
            }
        }
        Ok(None)
    }

    /// Whether a **cold** read of `relation` can be answered by column-seeded
    /// evaluation instead of materializing: defining rules exist, are not
    /// staged (staged sets consume their own intermediate heads, which are
    /// not resolvable relations), and nothing in the resolution closure
    /// could mint skolem ids cold (seeded evaluation explores only matching
    /// bindings, so letting it mint would assign ids in a different order
    /// than the canonical full resolution — see
    /// [`Evaluator::head_rows_by_column`]).
    pub fn pushable_cold(&self, relation: &str) -> bool {
        if let Some(&hit) = self.push_cache.lock().get(relation) {
            return hit;
        }
        let pushable = match self.defining_compiled(relation) {
            Some(Ok(crs)) => {
                !crs.staged() && !self.resolution_may_mint_cold(relation, &mut BTreeSet::new())
            }
            _ => false,
        };
        self.push_cache
            .lock()
            .insert(relation.to_string(), pushable);
        pushable
    }

    /// Serve a physical table: O(1) shared snapshot, with the epoch recorded
    /// for later footprint stamping.
    fn physical_full(&self, relation: &str) -> inverda_datalog::Result<Arc<Relation>> {
        let (shared, epoch) = self
            .storage
            .snapshot_with_epoch(relation)
            .map_err(DatalogError::Storage)?;
        self.seen_epochs
            .lock()
            .entry(relation.to_string())
            .or_insert(epoch);
        self.cache
            .lock()
            .insert(relation.to_string(), Arc::clone(&shared));
        Ok(shared)
    }

    /// Whether `tv`'s defining hop may participate in a fused run: its SMO
    /// is one of the column-level kinds and its rule set is skolem-free and
    /// non-staged. Returns the mapping restricted to the rules deriving
    /// `relation` (sound for non-staged sets, whose heads are independent).
    fn fusable_hop(&self, relation: &str, tv: TableVersionId) -> Option<RuleSet> {
        let (smo, _, rules) = self.defining_rules(tv)?;
        if !FUSABLE_KINDS.contains(&self.genealogy.smo(smo).derived.kind) {
            return None;
        }
        if !fusion::hop_fusable(rules) {
            return None;
        }
        let restricted: Vec<_> = rules.rules_for(relation).into_iter().cloned().collect();
        if restricted.is_empty() {
            return None;
        }
        Some(RuleSet::new(restricted))
    }

    /// Lemma-2-simplify one hop's rules against its currently-empty
    /// physical aux tables, **pinning** each one's (empty) snapshot into the
    /// statement caches and recording it in `assumed`. Pinning makes the
    /// assumption part of this statement's consistent read set: the aux
    /// table is in the chain's resolution footprint, so a later write to it
    /// bumps its epoch past the stamp and invalidates any snapshot resolved
    /// through the fused chain — and every cache hit revalidates emptiness
    /// before evaluating.
    fn simplify_empty_aux(&self, rules: RuleSet, assumed: &mut BTreeSet<String>) -> RuleSet {
        let mut empty = BTreeSet::new();
        for rule in &rules.rules {
            for lit in &rule.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    let rel = a.relation.as_str();
                    if empty.contains(rel)
                        || !self.aux_index.contains_key(rel)
                        || !self.storage.has_table(rel)
                    {
                        continue;
                    }
                    if let Ok(snap) = self.physical_full(rel) {
                        if snap.is_empty() {
                            empty.insert(rel.to_string());
                        }
                    }
                }
            }
        }
        if empty.is_empty() {
            return rules;
        }
        let simplified = apply_empty(&rules, &empty, &mut Derivation::new());
        assumed.extend(empty);
        simplified
    }

    /// The fused γ-chain resolving `relation` (a virtual table version):
    /// served from the [`CompiledStore`] after revalidating its
    /// aux-emptiness assumptions, built and cached on a miss. `None` when
    /// fusion is disabled or the defining hop cannot be fused — callers
    /// then take the ordinary hop-by-hop path.
    fn fused_chain(&self, relation: &str, tv: TableVersionId) -> Option<Arc<FusedChain>> {
        if !fusion::enabled() {
            return None;
        }
        if let Some(hit) = self.compiled.fused_get(tv) {
            let valid = hit.assumed_empty.iter().all(|aux| {
                self.storage.has_table(aux)
                    && self
                        .physical_full(aux)
                        .map(|r| r.is_empty())
                        .unwrap_or(false)
            });
            if valid {
                return Some(hit);
            }
            self.compiled.fused_invalidate(tv);
        }
        self.build_fused_chain(relation, tv)
    }

    /// Compose the longest fusable run starting at `relation`'s defining
    /// hop into one rule set, compile it, and cache it. Body atoms over a
    /// non-fusable (barrier) or budget-exceeding hop are left in place —
    /// evaluation resolves them recursively, so a chain interrupted by a
    /// SPLIT simply fuses per segment.
    fn build_fused_chain(&self, relation: &str, tv: TableVersionId) -> Option<Arc<FusedChain>> {
        let budget = fusion::FusionBudget::default();
        let mut assumed = BTreeSet::new();
        let mut fused = self.simplify_empty_aux(self.fusable_hop(relation, tv)?, &mut assumed);
        if fused.rules_for(relation).is_empty() {
            return None;
        }
        let mut hops = 1usize;
        let mut target = tv;
        let mut barriers: BTreeSet<String> = BTreeSet::new();
        loop {
            // Next intermediate: a body relation that is itself a virtual
            // table version and not yet declared a barrier.
            let next = fused
                .rules
                .iter()
                .flat_map(|r| r.body.iter())
                .find_map(|lit| match lit {
                    Literal::Pos(a) | Literal::Neg(a) => {
                        let rel = a.relation.as_str();
                        if self.storage.has_table(rel) || barriers.contains(rel) {
                            return None;
                        }
                        self.rel_index
                            .get(rel)
                            .copied()
                            .map(|ctv| (rel.to_string(), ctv))
                    }
                    _ => None,
                });
            let Some((crel, ctv)) = next else { break };
            let Some(defs) = self.fusable_hop(&crel, ctv) else {
                barriers.insert(crel);
                continue;
            };
            let defs = self.simplify_empty_aux(defs, &mut assumed);
            let next_fused = if defs.is_empty() {
                // Every defining rule vanished under the emptiness
                // assumptions: the intermediate version is empty, Lemma 2
                // applies to its occurrences directly.
                let e: BTreeSet<String> = [crel.clone()].into_iter().collect();
                apply_empty(&fused, &e, &mut Derivation::new())
            } else {
                match fusion::inline_hop(&fused, &defs, &budget) {
                    Some(f) => f,
                    None => {
                        barriers.insert(crel);
                        continue;
                    }
                }
            };
            if next_fused.rules_for(relation).is_empty() {
                // The fused head would be empty — correct, but the resolve
                // path expects at least one rule per requested head; leave
                // this case to hop-by-hop resolution.
                return None;
            }
            fused = next_fused;
            hops += 1;
            target = ctv;
        }
        let crs = Arc::new(CompiledRuleSet::compile(&fused).ok()?);
        debug_assert!(!crs.staged() && !crs.mints_ids());
        Some(self.compiled.fused_insert(FusedChain {
            crs,
            source: tv,
            target,
            hops,
            assumed_empty: assumed,
        }))
    }

    /// The fused chain's compiled rule set for `relation`, if one applies —
    /// the seeded-probe paths (`by_key` / `by_column`) evaluate it in place
    /// of the single defining mapping, pushing the binding through the
    /// whole run at once.
    fn fused_for(&self, relation: &str) -> Option<Arc<CompiledRuleSet>> {
        let tv = self.rel_index.get(relation).copied()?;
        self.fused_chain(relation, tv).map(|c| Arc::clone(&c.crs))
    }

    /// An already-materialized column index for `relation` — statement
    /// cache or snapshot store — **without building one**. The query
    /// planner's range path uses this to distinguish a free probe from one
    /// that would pay an O(n) index build.
    pub fn cached_index(&self, relation: &str, column: usize) -> Option<Arc<ColumnIndex>> {
        if let Some(hit) = self.index_cache.get(relation, column) {
            return Some(hit);
        }
        let store = self.snapshots?;
        let hit = if self.storage.has_table(relation) {
            let epoch = self.seen_epochs.lock().get(relation).copied()?;
            store.get_index_physical(relation, column, epoch)
        } else {
            let rel = self.cache.lock().get(relation).map(Arc::clone)?;
            store.get_index_virtual(relation, column, &rel)
        }?;
        self.index_cache.put(relation, column, Arc::clone(&hit));
        Some(hit)
    }
}

impl EdbView for VersionedEdb<'_> {
    /// Make the view shareable by parallel workers: refuse (`Ok(false)`)
    /// when any requested relation would have to **evaluate id-minting
    /// rules cold** (front-loading such a resolution — or worse, triggering
    /// it lazily from a worker — would mint ids at a different point than
    /// the width-1 path, which resolves lazily in first-touch order; warm
    /// snapshots and cached resolutions are pure reads and pass), otherwise
    /// resolve everything **now** — distinct uncached virtual relations
    /// cold-resolve in parallel on the pool (each such resolution is pure,
    /// so racing duplicates are identical and harmless) — and report any
    /// resolution error as `Ok(false)` so the sequential path produces the
    /// canonical outcome.
    fn prepare_parallel(&self, relations: &[&str]) -> inverda_datalog::Result<bool> {
        let mut visited = BTreeSet::new();
        for rel in relations {
            if self.resolution_may_mint_cold(rel, &mut visited) {
                return Ok(false);
            }
        }
        let missing: Vec<&str> = {
            let cache = self.cache.lock();
            relations
                .iter()
                .copied()
                .filter(|rel| !self.storage.has_table(rel) && !cache.contains_key(*rel))
                .collect()
        };
        if missing.len() >= 2 && inverda_datalog::parallel::threads() > 1 {
            let results = inverda_datalog::parallel::map_indexed(missing.len(), |i| {
                self.full(missing[i]).map(|_| ())
            });
            if results.iter().any(|r| r.is_err()) {
                return Ok(false);
            }
        }
        for rel in relations {
            if self.full(rel).is_err() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn full(&self, relation: &str) -> inverda_datalog::Result<Arc<Relation>> {
        // Statement cache, physical tables, and warm snapshot-store entries
        // (byte-identical to what cold resolution would produce) — one
        // shared implementation with the query planner's probe.
        if let Some(hit) = self.peek_resolved(relation)? {
            return Ok(hit);
        }
        // Cold path: stamp the footprint, then resolve.
        let stamp = self.snapshots.map(|_| self.stamped_footprint(relation));
        let resolved = if let Some(tv) = self.rel_index.get(relation).copied() {
            self.resolve_virtual(relation, tv, stamp.as_ref())
        } else if let Some((smo, tgt_side)) = self.aux_index.get(relation).copied() {
            self.resolve_virtual_aux(relation, smo, tgt_side, stamp.as_ref())
        } else {
            return Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            });
        };
        resolved.map_err(|e| match e {
            crate::CoreError::Datalog(d) => d,
            other => DatalogError::UnboundRelation {
                relation: format!("{relation} ({other})"),
            },
        })
    }

    fn by_key(&self, relation: &str, key: Key) -> inverda_datalog::Result<Option<Row>> {
        if let Some(hit) = self.cache.lock().get(relation) {
            return Ok(hit.get(key).cloned());
        }
        if let Some(hit) = self
            .key_cache
            .lock()
            .get(relation)
            .and_then(|m| m.get(&key))
        {
            return Ok(hit.clone());
        }
        // Physical snapshots are O(1) now — take the full path so the epoch
        // is recorded and later lookups hit the statement cache.
        if self.storage.has_table(relation) {
            return Ok(self.physical_full(relation)?.get(key).cloned());
        }
        // Warm path: serve the point lookup from a valid stored snapshot.
        if let Some(store) = self.snapshots {
            if let Some(hit) = store.get(relation, self.storage) {
                let row = hit.get(key).cloned();
                self.cache.lock().insert(relation.to_string(), hit);
                return Ok(row);
            }
        }
        let Some(tv) = self.rel_index.get(relation).copied() else {
            // Virtual aux tables resolve through their full state.
            if self.aux_index.contains_key(relation) {
                return Ok(self.full(relation)?.get(key).cloned());
            }
            return Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            });
        };
        let Some((smo, direction, rules)) = self.defining_rules(tv) else {
            return Err(DatalogError::UnboundRelation {
                relation: relation.to_string(),
            });
        };
        let crs = self.compiled_rules(smo, direction, rules)?;
        // Staged rule sets (the id-generating SMOs) consume their own
        // intermediate heads, which are not resolvable relations — fall back
        // to full resolution for them.
        if crs.staged() {
            return Ok(self.full(relation)?.get(key).cloned());
        }
        // Push the key through the defining mapping — the whole fused run
        // of it, when the chain fuses (fused sets are never staged).
        let crs = self.fused_for(relation).unwrap_or(crs);
        let mut ev = Evaluator::new(self, self.ids);
        let row = ev.head_row_for_key(&crs, relation, key)?;
        self.key_cache
            .lock()
            .entry(relation.to_string())
            .or_default()
            .insert(key, row.clone());
        Ok(row)
    }

    fn contains(&self, relation: &str) -> bool {
        self.storage.has_table(relation) || self.rel_index.contains_key(relation)
    }

    /// Column-equality rows, with **predicate pushdown through the γ
    /// mappings**: a relation that is already materialized (statement
    /// cache, physical table, warm snapshot) answers with an index probe
    /// over its snapshot; a cold virtual relation whose resolution is
    /// non-staged and provably mint-free pushes the binding into its
    /// defining rule set via column-seeded evaluation — whose depth-0
    /// candidate fetch calls `by_column` again one mapping closer to the
    /// data, so the predicate recurses down the whole chain touching only
    /// matching rows. Everything else (staged mappings, possibly-minting
    /// closures) materializes first, preserving the canonical resolution
    /// and minting order, then probes.
    fn by_column(
        &self,
        relation: &str,
        column: usize,
        value: &Value,
    ) -> inverda_datalog::Result<Vec<(Key, Row)>> {
        if let Some(hit) = self
            .col_cache
            .lock()
            .get(relation)
            .and_then(|m| m.get(&column))
            .and_then(|m| m.get(value))
        {
            return Ok(hit.clone());
        }
        let resolved = match self.peek_resolved(relation)? {
            Some(rel) => Some(rel),
            None if !self.pushable_cold(relation) => Some(self.full(relation)?),
            None => None,
        };
        let rows = if let Some(rel) = resolved {
            if column >= rel.schema().arity() {
                Vec::new()
            } else {
                self.index(relation, column)?.rows_for(&rel, value)
            }
        } else {
            // Seed through the fused run when the chain fuses: the probe
            // recurses into `by_column` of the chain's *terminal* relation
            // instead of the adjacent hop, skipping the intermediates.
            let crs = match self.fused_for(relation) {
                Some(fused) => fused,
                None => self
                    .defining_compiled(relation)
                    .expect("pushable implies defining rules")?,
            };
            let mut ev = Evaluator::new(self, self.ids);
            ev.head_rows_by_column(&crs, relation, column, value)?
        };
        self.col_cache
            .lock()
            .entry(relation.to_string())
            .or_default()
            .entry(column)
            .or_default()
            .insert(value.clone(), rows.clone());
        Ok(rows)
    }

    fn index(&self, relation: &str, column: usize) -> inverda_datalog::Result<Arc<ColumnIndex>> {
        if let Some(hit) = self.index_cache.get(relation, column) {
            return Ok(hit);
        }
        // Pin the statement's snapshot of the relation *first*: warm index
        // reuse and attachment are both guarded against exactly this
        // snapshot (pointer identity for virtual relations, the observed
        // epoch for physical tables), so an index can never describe a
        // different snapshot generation than the data this statement joins
        // over — even with a writer patching the store concurrently.
        let rel = self.full(relation)?;
        if let Some(store) = self.snapshots {
            let hit = if self.storage.has_table(relation) {
                self.seen_epochs
                    .lock()
                    .get(relation)
                    .and_then(|epoch| store.get_index_physical(relation, column, *epoch))
            } else {
                store.get_index_virtual(relation, column, &rel)
            };
            if let Some(hit) = hit {
                self.index_cache.put(relation, column, Arc::clone(&hit));
                return Ok(hit);
            }
        }
        let built = Arc::new(rel.build_column_index(column));
        self.index_cache.put(relation, column, Arc::clone(&built));
        if let Some(store) = self.snapshots {
            if self.storage.has_table(relation) {
                if let Some(epoch) = self.seen_epochs.lock().get(relation).copied() {
                    store.store_index_physical(relation, column, Arc::clone(&built), epoch);
                }
            } else {
                store.store_index_virtual(relation, column, Arc::clone(&built), &rel);
            }
        }
        Ok(built)
    }
}
