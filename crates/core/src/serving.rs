//! The concurrent serving layer: MVCC snapshot reads over a pipelined,
//! group-committing write queue.
//!
//! [`Inverda`] is already safe to share, but every statement contends on the
//! same locks and every reader observes the moving head. This module layers
//! the paper's *co-existing schema versions serving concurrent applications*
//! on top:
//!
//! * **Readers** ([`Reader::pin`] / [`ServingInverda::pin`]) take an
//!   **epoch-pinned** [`PinnedView`]: an `Arc` copy of every table at one
//!   commit epoch (O(tables) pointer clones via
//!   [`Storage::snapshot_all`]), the committed skolem registry and key
//!   sequence at that epoch, and a private fork of the snapshot store
//!   ([`SnapshotStore::fork_for_pin`](crate::snapshot::SnapshotStore::fork_for_pin)). All subsequent reads run entirely
//!   against pin-private state — they never take the writer lock and never
//!   block (or are blocked by) the commit pipeline. Reads on the pin are
//!   byte-identical to a single-session database stopped at that epoch,
//!   including skolem minting order (fresh read-path mints go to a
//!   pin-private scratch registry seeded with the pinned key sequence).
//! * **Writers** ([`Client`]) submit statements into a single admission
//!   queue drained by one **commit pipeline** thread. Each drained batch is
//!   executed statement-at-a-time (each request keeps its own atomicity),
//!   assigned dense commit epochs `1..`, and published; under
//!   `INVERDA_DURABILITY=group` the pipeline installs a WAL group-size
//!   override so the fsync happens **once per drained group** — the group
//!   window becomes cross-session batching instead of per-record counting —
//!   and replies are released only after that group fsync, so an
//!   acknowledged write is crash-durable.
//!
//! The linearizable commit order is the pipeline's drain order; the oracle
//! in `tests/serving_props.rs` replays it single-threaded and asserts every
//! concurrent read byte-identical to the sequential state at its pinned
//! epoch.

use crate::compiled::CompiledStore;
use crate::database::ExecutionOutcome;
use crate::durability::DurabilityMode;
use crate::write::LogicalWrite;
use crate::{CoreError, Inverda, Result};
use inverda_catalog::{Genealogy, MaterializationSchema};
use inverda_datalog::eval::{EdbView, IdSource};
use inverda_datalog::SkolemRegistry;
use inverda_storage::{Key, Relation, Row, Storage, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Requests drained per pipeline iteration (and records per group fsync).
const GROUP_CAP: usize = 64;

/// Pin-private id source: committed assignments come from the pinned
/// registry; fresh read-path mints go to a scratch overlay and draw from
/// the pinned storage's key sequence — exactly what a single-session
/// database stopped at the pinned epoch would mint, in the same order.
struct PinIds {
    storage: Arc<Storage>,
    registry: Arc<SkolemRegistry>,
    scratch: Mutex<SkolemRegistry>,
}

impl IdSource for PinIds {
    fn generate(&self, generator: &str, args: &[Value]) -> u64 {
        if let Some(id) = self.registry.peek(generator, args) {
            return id;
        }
        let mut scratch = self.scratch.lock();
        if let Some(id) = scratch.peek(generator, args) {
            return id;
        }
        let id = self.storage.sequences().next_key().0;
        scratch.observe(generator, args, id);
        id
    }

    fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.registry
            .peek(generator, args)
            .or_else(|| self.scratch.lock().peek(generator, args))
    }
}

/// An epoch-consistent read view over every schema version, detached from
/// the live database: reads here never block writers and are never
/// invalidated by them. Obtained from [`Inverda::pin`] (current state) or
/// [`Reader::pin`] (latest published serving epoch). Dropping the view
/// releases its retirement hold on the origin's snapshot store.
pub struct PinnedView {
    genealogy: Arc<Genealogy>,
    materialization: Arc<MaterializationSchema>,
    storage: Arc<Storage>,
    store: crate::snapshot::SnapshotStore,
    compiled: Arc<CompiledStore>,
    ids: PinIds,
    epoch: u64,
    key_seq: u64,
    origin: Arc<Inverda>,
}

impl PinnedView {
    #[allow(clippy::too_many_arguments)]
    fn build(
        origin: Arc<Inverda>,
        genealogy: Arc<Genealogy>,
        materialization: Arc<MaterializationSchema>,
        tables: BTreeMap<String, (Arc<Relation>, u64)>,
        key_seq: u64,
        registry: Arc<SkolemRegistry>,
        compiled: Arc<CompiledStore>,
        epoch: u64,
    ) -> PinnedView {
        let store = origin.snapshots.fork_for_pin();
        // The pinned view reproduces the origin's epochs, so it inherits
        // the origin's branch tag — the forked store keeps serving it.
        let storage = Arc::new(Storage::from_pinned_tagged(
            tables,
            key_seq,
            origin.storage.branch_tag(),
        ));
        PinnedView {
            genealogy,
            materialization,
            ids: PinIds {
                storage: Arc::clone(&storage),
                registry,
                scratch: Mutex::new(SkolemRegistry::new()),
            },
            storage,
            store,
            compiled,
            epoch,
            key_seq,
            origin,
        }
    }

    fn edb(&self) -> crate::edb::VersionedEdb<'_> {
        crate::edb::VersionedEdb::new(
            &self.genealogy,
            &self.materialization,
            &self.storage,
            &self.ids,
            &self.compiled,
        )
        .with_store(&self.store)
    }

    fn rel_of(&self, version: &str, table: &str) -> Result<String> {
        let tv = self.genealogy.resolve(version, table)?;
        Ok(self.genealogy.table_version(tv).rel.clone())
    }

    /// The serving commit epoch this view is pinned at (0 for a pin taken
    /// directly from an [`Inverda`] outside a serving pipeline).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The committed key-sequence value at the pinned epoch.
    pub fn key_seq(&self) -> u64 {
        self.key_seq
    }

    /// Debug dump of the **committed** skolem registry at the pinned epoch
    /// (scratch mints of this pin's own reads are not included).
    pub fn registry_dump(&self) -> String {
        self.ids.registry.dump()
    }

    /// Names of all schema versions at the pinned epoch.
    pub fn versions(&self) -> Vec<String> {
        self.genealogy
            .version_names()
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// Table names of a schema version at the pinned epoch.
    pub fn tables_of(&self, version: &str) -> Result<Vec<String>> {
        Ok(self
            .genealogy
            .version(version)?
            .tables
            .keys()
            .cloned()
            .collect())
    }

    /// Read the full state of `version.table` at the pinned epoch.
    pub fn scan(&self, version: &str, table: &str) -> Result<Arc<Relation>> {
        let rel = self.rel_of(version, table)?;
        self.edb().full(&rel).map_err(CoreError::from)
    }

    /// Number of rows visible in `version.table` at the pinned epoch.
    pub fn count(&self, version: &str, table: &str) -> Result<usize> {
        Ok(self.scan(version, table)?.len())
    }

    /// Point lookup by tuple identifier at the pinned epoch.
    pub fn get(&self, version: &str, table: &str, key: Key) -> Result<Option<Row>> {
        let rel = self.rel_of(version, table)?;
        self.edb().by_key(&rel, key).map_err(CoreError::from)
    }
}

impl Drop for PinnedView {
    fn drop(&mut self) {
        self.origin.snapshots.release_pin();
    }
}

impl Inverda {
    /// Pin the current committed state into a [`PinnedView`]: an
    /// epoch-consistent snapshot of every table, the skolem registry, and
    /// the key sequence, taken under the writer lock so no batch is in
    /// flight. Reads on the view never touch the live database again.
    ///
    /// Inside a serving pipeline prefer [`Reader::pin`], which pins the
    /// latest *published* epoch without taking the writer lock.
    pub fn pin(self: &Arc<Self>) -> PinnedView {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        // Order matters: the pin hold must be registered before the store
        // fork inside `build`, so concurrent maintenance retires (rather
        // than drops) versions the fork still wants.
        self.snapshots.acquire_pin();
        let tables = self.storage.snapshot_all();
        let key_seq = self.storage.sequences().current_key();
        let registry = Arc::new(self.ids.0.lock().clone());
        PinnedView::build(
            Arc::clone(self),
            Arc::new(state.genealogy.clone()),
            Arc::new(state.materialization.clone()),
            tables,
            key_seq,
            registry,
            Arc::new(CompiledStore::new()),
            0,
        )
    }
}

/// One write-side request for the commit pipeline.
#[derive(Debug, Clone)]
pub enum ServingOp {
    /// A batch of logical writes against one `version.table`, applied as a
    /// single atomic [`Inverda::apply_many`].
    Apply {
        /// Schema version name.
        version: String,
        /// Table name within the version.
        table: String,
        /// The logical writes, applied in order within one propagation
        /// round.
        writes: Vec<LogicalWrite>,
    },
    /// A BiDEL script (DDL / MATERIALIZE) via [`Inverda::execute`].
    Execute(String),
    /// Snapshot the durable state and rotate the log
    /// ([`Inverda::checkpoint`]).
    Checkpoint,
}

/// What a successfully committed [`ServingOp`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingOutcome {
    /// Minted identifiers per write (`None` for updates/deletes).
    Applied(Vec<Option<Key>>),
    /// Script outcome.
    Executed(ExecutionOutcome),
    /// Checkpoint completed.
    Checkpointed,
}

/// The pipeline's acknowledgement of one request, sent after the request's
/// group became durable (group mode) or immediately after commit otherwise.
#[derive(Debug, Clone)]
pub struct ServingReply {
    /// The dense commit epoch assigned to this request (failed requests
    /// consume an epoch too — they can consume keys and registry state, so
    /// the oracle must replay them).
    pub epoch: u64,
    /// WAL length in bytes right after this request's record landed
    /// (`None` in-memory). Fault injection uses this as a truncation
    /// boundary.
    pub wal_len: Option<u64>,
    /// The statement outcome.
    pub outcome: Result<ServingOutcome>,
}

struct Request {
    op: ServingOp,
    reply: mpsc::Sender<ServingReply>,
}

/// Everything a [`PinnedView`] needs, captured at one commit epoch. The
/// pipeline publishes a fresh `Published` after every operation; readers
/// grab the `Arc` and go.
struct Published {
    epoch: u64,
    tables: BTreeMap<String, (Arc<Relation>, u64)>,
    key_seq: u64,
    genealogy: Arc<Genealogy>,
    materialization: Arc<MaterializationSchema>,
    registry: Arc<SkolemRegistry>,
    /// Compiled rule sets shared by every pin of this catalog generation
    /// (swapped for a fresh store whenever an `Execute` changes the
    /// catalog; SMO ids are never reused, and fused-chain revalidation
    /// checks each pin's own storage).
    compiled: Arc<CompiledStore>,
}

/// Shared state between the façade, its readers, and the pipeline thread.
struct Shared {
    db: Arc<Inverda>,
    published: RwLock<Arc<Published>>,
    /// Highest epoch ever published (monotonicity diagnostics).
    max_epoch: AtomicU64,
}

/// A cheap, cloneable handle for taking epoch-pinned reads on the latest
/// published commit epoch. Safe to move into reader threads.
#[derive(Clone)]
pub struct Reader {
    shared: Arc<Shared>,
}

impl Reader {
    /// Pin the latest published epoch. Never takes the writer lock; the
    /// pipeline is never blocked by this call.
    pub fn pin(&self) -> PinnedView {
        let db = &self.shared.db;
        // Pin hold first, then read the published head: a fork taken after
        // the head advanced still finds the head's versions retired (never
        // dropped) in the shared store.
        db.snapshots.acquire_pin();
        let p = Arc::clone(&self.shared.published.read());
        PinnedView::build(
            Arc::clone(db),
            Arc::clone(&p.genealogy),
            Arc::clone(&p.materialization),
            p.tables.clone(),
            p.key_seq,
            Arc::clone(&p.registry),
            Arc::clone(&p.compiled),
            p.epoch,
        )
    }

    /// The latest published commit epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.published.read().epoch
    }
}

/// A cheap, cloneable write-side handle: submits requests into the
/// admission queue and blocks for the pipeline's acknowledgement. Safe to
/// move into writer threads.
#[derive(Clone)]
pub struct Client {
    sender: mpsc::Sender<Request>,
}

impl Client {
    /// Submit one request and wait for its committed (and, in group mode,
    /// durable) acknowledgement.
    ///
    /// # Panics
    /// Panics if the serving pipeline has been shut down.
    pub fn submit(&self, op: ServingOp) -> ServingReply {
        let (tx, rx) = mpsc::channel();
        self.sender
            .send(Request { op, reply: tx })
            .expect("serving pipeline has shut down");
        rx.recv().expect("serving pipeline has shut down")
    }

    /// [`ServingOp::Apply`] convenience.
    pub fn apply_many(
        &self,
        version: &str,
        table: &str,
        writes: Vec<LogicalWrite>,
    ) -> ServingReply {
        self.submit(ServingOp::Apply {
            version: version.to_string(),
            table: table.to_string(),
            writes,
        })
    }

    /// Insert one row; convenience over [`Client::apply_many`].
    pub fn insert(&self, version: &str, table: &str, row: Row) -> ServingReply {
        self.apply_many(version, table, vec![LogicalWrite::Insert(row)])
    }

    /// [`ServingOp::Execute`] convenience.
    pub fn execute(&self, script: &str) -> ServingReply {
        self.submit(ServingOp::Execute(script.to_string()))
    }

    /// [`ServingOp::Checkpoint`] convenience.
    pub fn checkpoint(&self) -> ServingReply {
        self.submit(ServingOp::Checkpoint)
    }
}

/// The serving façade: one [`Inverda`], any number of epoch-pinned readers,
/// one commit pipeline draining a single admission queue. See the module
/// docs.
pub struct ServingInverda {
    shared: Arc<Shared>,
    sender: Mutex<Option<mpsc::Sender<Request>>>,
    pipeline: Mutex<Option<JoinHandle<()>>>,
}

impl ServingInverda {
    /// Serve an existing shared database. Captures the current state as
    /// published epoch 0 and starts the pipeline thread; under group-mode
    /// durability the WAL's per-record group counting is overridden so
    /// fsync runs once per drained group.
    pub fn new(db: Arc<Inverda>) -> ServingInverda {
        if let Some(d) = &db.durability {
            if d.mode() == DurabilityMode::Group {
                d.set_group_override(u64::MAX);
            }
        }
        let catalog = PipelineCatalog::capture(&db);
        let published = Published {
            epoch: 0,
            tables: db.storage.snapshot_all(),
            key_seq: db.storage.sequences().current_key(),
            genealogy: Arc::clone(&catalog.genealogy),
            materialization: Arc::clone(&catalog.materialization),
            registry: Arc::clone(&catalog.registry),
            compiled: Arc::clone(&catalog.compiled),
        };
        let shared = Arc::new(Shared {
            db,
            published: RwLock::new(Arc::new(published)),
            max_epoch: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel();
        let pipeline_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("inverda-serving".to_string())
            .spawn(move || run_pipeline(pipeline_shared, catalog, rx))
            .expect("spawn serving pipeline");
        ServingInverda {
            shared,
            sender: Mutex::new(Some(tx)),
            pipeline: Mutex::new(Some(handle)),
        }
    }

    /// [`ServingInverda::new`] over a freshly owned database.
    pub fn over(db: Inverda) -> ServingInverda {
        ServingInverda::new(Arc::new(db))
    }

    /// A read-side handle (cloneable, thread-safe).
    pub fn reader(&self) -> Reader {
        Reader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A write-side handle (cloneable, thread-safe).
    ///
    /// # Panics
    /// Panics after [`shutdown`](ServingInverda::shutdown).
    pub fn client(&self) -> Client {
        Client {
            sender: self
                .sender
                .lock()
                .as_ref()
                .expect("serving pipeline has shut down")
                .clone(),
        }
    }

    /// Pin the latest published epoch (shorthand for `reader().pin()`).
    pub fn pin(&self) -> PinnedView {
        self.reader().pin()
    }

    /// The latest published commit epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.published.read().epoch
    }

    /// The underlying database (diagnostics, audits; direct statements on
    /// it bypass the pipeline's epoch accounting).
    pub fn db(&self) -> &Arc<Inverda> {
        &self.shared.db
    }

    /// Submit through a one-shot client. See [`Client::apply_many`].
    pub fn apply_many(
        &self,
        version: &str,
        table: &str,
        writes: Vec<LogicalWrite>,
    ) -> ServingReply {
        self.client().apply_many(version, table, writes)
    }

    /// Submit through a one-shot client. See [`Client::execute`].
    pub fn execute(&self, script: &str) -> ServingReply {
        self.client().execute(script)
    }

    /// Submit through a one-shot client. See [`Client::checkpoint`].
    pub fn checkpoint(&self) -> ServingReply {
        self.client().checkpoint()
    }

    /// Drain and stop the pipeline, then wait for it to exit. Requests
    /// already admitted are still committed and acknowledged. Blocks until
    /// every outstanding [`Client`] clone has been dropped.
    pub fn shutdown(&self) {
        drop(self.sender.lock().take());
        if let Some(handle) = self.pipeline.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServingInverda {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The pipeline's locally tracked catalog-generation state, re-captured
/// only when it can have changed (an `Execute` for the catalog, a registry
/// revision bump for the registry) so per-op publishing stays O(tables).
struct PipelineCatalog {
    genealogy: Arc<Genealogy>,
    materialization: Arc<MaterializationSchema>,
    registry: Arc<SkolemRegistry>,
    revision: u64,
    compiled: Arc<CompiledStore>,
}

impl PipelineCatalog {
    fn capture(db: &Inverda) -> PipelineCatalog {
        let state = db.state.read();
        let reg = db.ids.0.lock();
        PipelineCatalog {
            genealogy: Arc::new(state.genealogy.clone()),
            materialization: Arc::new(state.materialization.clone()),
            revision: reg.revision(),
            registry: Arc::new(reg.clone()),
            compiled: Arc::new(CompiledStore::new()),
        }
    }

    fn refresh_catalog(&mut self, db: &Inverda) {
        let state = db.state.read();
        self.genealogy = Arc::new(state.genealogy.clone());
        self.materialization = Arc::new(state.materialization.clone());
        self.compiled = Arc::new(CompiledStore::new());
    }

    fn refresh_registry(&mut self, db: &Inverda) {
        let reg = db.ids.0.lock();
        if reg.revision() != self.revision {
            self.revision = reg.revision();
            self.registry = Arc::new(reg.clone());
        }
    }
}

/// The commit pipeline: drain the admission queue in groups, execute each
/// request as its own statement, publish after every commit, fsync once per
/// group, acknowledge after the fsync.
fn run_pipeline(shared: Arc<Shared>, mut catalog: PipelineCatalog, rx: mpsc::Receiver<Request>) {
    let db = &shared.db;
    let group_mode = db
        .durability
        .as_ref()
        .is_some_and(|d| d.mode() == DurabilityMode::Group);
    let mut epoch = shared.published.read().epoch;
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < GROUP_CAP {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        let mut pending = Vec::with_capacity(batch.len());
        for Request { op, reply } in batch {
            epoch += 1;
            let catalog_op = matches!(op, ServingOp::Execute(_));
            let outcome = match op {
                ServingOp::Apply {
                    version,
                    table,
                    writes,
                } => db
                    .apply_many(&version, &table, writes)
                    .map(ServingOutcome::Applied),
                ServingOp::Execute(script) => db.execute(&script).map(ServingOutcome::Executed),
                ServingOp::Checkpoint => db.checkpoint().map(|()| ServingOutcome::Checkpointed),
            };
            // A failed script can still have committed a statement prefix,
            // so the catalog is re-captured on every Execute.
            if catalog_op {
                catalog.refresh_catalog(db);
            }
            catalog.refresh_registry(db);
            let wal_len = db.wal_len();
            let published = Published {
                epoch,
                tables: db.storage.snapshot_all(),
                key_seq: db.storage.sequences().current_key(),
                genealogy: Arc::clone(&catalog.genealogy),
                materialization: Arc::clone(&catalog.materialization),
                registry: Arc::clone(&catalog.registry),
                compiled: Arc::clone(&catalog.compiled),
            };
            *shared.published.write() = Arc::new(published);
            shared.max_epoch.fetch_max(epoch, Ordering::Relaxed);
            pending.push((
                reply,
                ServingReply {
                    epoch,
                    wal_len,
                    outcome,
                },
            ));
        }
        // Group commit: one fsync per drained group, then release every
        // acknowledgement — an acknowledged request is durable.
        if group_mode {
            let _ = db.flush();
        }
        for (reply, ack) in pending {
            let _ = reply.send(ack);
        }
    }
    if group_mode {
        let _ = db.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::Value;

    fn tasky_serving() -> ServingInverda {
        let db = Inverda::new();
        db.execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);")
            .unwrap();
        ServingInverda::over(db)
    }

    fn row(author: &str, task: &str, prio: i64) -> Row {
        vec![Value::text(author), Value::text(task), Value::Int(prio)]
    }

    #[test]
    fn pinned_reads_do_not_see_later_commits() {
        let serving = tasky_serving();
        let client = serving.client();
        client.insert("TasKy", "Task", row("ann", "write", 1));
        let pin = serving.pin();
        assert_eq!(pin.epoch(), 1);
        assert_eq!(pin.count("TasKy", "Task").unwrap(), 1);
        client.insert("TasKy", "Task", row("bob", "review", 2));
        // The pin keeps serving epoch 1; a fresh pin sees epoch 2.
        assert_eq!(pin.count("TasKy", "Task").unwrap(), 1);
        let pin2 = serving.pin();
        assert_eq!(pin2.epoch(), 2);
        assert_eq!(pin2.count("TasKy", "Task").unwrap(), 2);
        drop((pin, pin2));
        assert_eq!(serving.db().snapshots.pin_count(), 0);
    }

    #[test]
    fn pinned_reads_survive_ddl_and_match_prior_state() {
        let serving = tasky_serving();
        let client = serving.client();
        client.insert("TasKy", "Task", row("ann", "write", 1));
        client.insert("TasKy", "Task", row("bob", "relax", 2));
        let pin = serving.pin();
        let before = pin.scan("TasKy", "Task").unwrap();
        let reply = client.execute(
            "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
             SPLIT TABLE Task INTO Todo WITH prio = 1; \
             DROP COLUMN prio FROM Todo DEFAULT 1;",
        );
        assert!(reply.outcome.is_ok());
        // The pin predates the DDL: same versions, same bytes.
        assert_eq!(pin.versions(), vec!["TasKy".to_string()]);
        assert_eq!(
            pin.scan("TasKy", "Task").unwrap().to_string(),
            before.to_string()
        );
        // A fresh pin sees the new version.
        let pin2 = serving.pin();
        assert_eq!(pin2.count("Do!", "Todo").unwrap(), 1);
    }

    #[test]
    fn failed_requests_consume_epochs() {
        let serving = tasky_serving();
        let client = serving.client();
        let bad = client.apply_many(
            "TasKy",
            "Task",
            vec![LogicalWrite::Insert(vec![Value::Int(1)])],
        );
        assert!(bad.outcome.is_err());
        assert_eq!(bad.epoch, 1);
        let good = client.insert("TasKy", "Task", row("ann", "write", 1));
        assert!(good.outcome.is_ok());
        assert_eq!(good.epoch, 2);
        assert_eq!(serving.epoch(), 2);
    }

    #[test]
    fn core_level_pin_is_isolated() {
        let db = Arc::new(Inverda::new());
        db.execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);")
            .unwrap();
        db.insert("TasKy", "Task", row("ann", "write", 1)).unwrap();
        let pin = db.pin();
        db.insert("TasKy", "Task", row("bob", "review", 2)).unwrap();
        assert_eq!(pin.count("TasKy", "Task").unwrap(), 1);
        assert_eq!(db.count("TasKy", "Task").unwrap(), 2);
        assert_eq!(pin.epoch(), 0);
        drop(pin);
        assert_eq!(db.snapshots.retained_versions(), 0);
    }
}
