//! Write propagation: the engine-side equivalent of the generated triggers.
//!
//! A logical write on `version.table` becomes a [`Delta`] on that table
//! version and is pushed, hop by hop, toward the physical storage:
//!
//! * **Case 1 (local)** — applied to the physical data table directly;
//! * **Case 2 (forwards)** — mapped through γ_tgt of the materialized
//!   outgoing SMO onto the target-side tables (data, auxiliary, shared);
//! * **Case 3 (backwards)** — mapped through γ_src of the virtualized
//!   incoming SMO onto the source side.
//!
//! At each hop the mapping's update-propagation rules produce exact deltas
//! for *all* relations of the destination side, including the auxiliary
//! tables that preserve otherwise-lost information (lost twins, separated
//! twins, condition violators, computed values, generated identifiers).
//!
//! Deletes additionally purge key-matching rows from the physical auxiliary
//! tables of *adjacent* SMOs that the propagation path does not traverse:
//! the paper's laws only constrain round trips of states, and without the
//! purge a separated twin recorded in `S⁺` would resurrect a tuple deleted
//! through the side that physically stores it (see DESIGN.md).

use crate::compiled::Direction;
use crate::database::{Inverda, State, WritePath};
use crate::edb::VersionedEdb;
use crate::error::CoreError;
use crate::Result;
use inverda_catalog::{SmoId, StorageCase, TableVersionId};
use inverda_datalog::delta::{
    propagate_by_recompute_compiled, propagate_compiled, Delta, DeltaMap,
};
use inverda_storage::{Key, Row, Value, WriteBatch};
use std::collections::BTreeMap;

impl Inverda {
    /// Insert a row into `version.table`; returns the InVerDa identifier.
    pub fn insert(&self, version: &str, table: &str, row: Vec<Value>) -> Result<Key> {
        Ok(self.insert_many(version, table, vec![row])?[0])
    }

    /// Insert many rows in one propagation round (bulk load).
    pub fn insert_many(
        &self,
        version: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<Key>> {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        let arity = state.genealogy.table_version(tv).columns.len();
        let mut delta = Delta::new();
        let mut keys = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != arity {
                return Err(CoreError::Storage(
                    inverda_storage::StorageError::ArityMismatch {
                        table: table.to_string(),
                        expected: arity,
                        got: row.len(),
                    },
                ));
            }
            let key = self.storage.sequences().next_key();
            delta.inserts.insert(key, row);
            keys.push(key);
        }
        self.apply_logical(&state, tv, delta)?;
        Ok(keys)
    }

    /// Replace the row under `key` in `version.table`.
    pub fn update(&self, version: &str, table: &str, key: Key, row: Vec<Value>) -> Result<()> {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        let old = self
            .current_row(&state, tv, key)?
            .ok_or(CoreError::MissingRow {
                version: version.to_string(),
                table: table.to_string(),
                key: key.0,
            })?;
        if old == row {
            return Ok(());
        }
        self.apply_logical(&state, tv, Delta::update(key, old, row))
    }

    /// Delete the row under `key` from `version.table`.
    pub fn delete(&self, version: &str, table: &str, key: Key) -> Result<()> {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        let old = self
            .current_row(&state, tv, key)?
            .ok_or(CoreError::MissingRow {
                version: version.to_string(),
                table: table.to_string(),
                key: key.0,
            })?;
        self.apply_logical(&state, tv, Delta::delete(key, old))
    }

    fn current_row(&self, state: &State, tv: TableVersionId, key: Key) -> Result<Option<Row>> {
        let rel = state.genealogy.table_version(tv).rel.clone();
        let ids = self.id_source();
        let edb = VersionedEdb::new(
            &state.genealogy,
            &state.materialization,
            &self.storage,
            &ids,
            &self.compiled,
        );
        use inverda_datalog::eval::EdbView;
        Ok(edb.by_key(&rel, key)?)
    }

    /// Propagate a logical delta on a table version to physical storage and
    /// apply it atomically.
    pub(crate) fn apply_logical(
        &self,
        state: &State,
        tv: TableVersionId,
        delta: Delta,
    ) -> Result<()> {
        let mut batch = WriteBatch::new();
        {
            let ids = self.id_source();
            let edb = VersionedEdb::new(
                &state.genealogy,
                &state.materialization,
                &self.storage,
                &ids,
                &self.compiled,
            );
            let mut pending: BTreeMap<TableVersionId, (Delta, Option<SmoId>)> = BTreeMap::new();
            pending.insert(tv, (delta, None));
            self.drain(state, &edb, &mut pending, &mut batch)?;
        }
        self.storage.apply(&batch)?;
        Ok(())
    }

    /// Process pending per-table-version deltas until all reach physical
    /// storage. Deltas heading through the same SMO hop are combined so
    /// multi-source SMOs (MERGE, JOIN) see all their changed inputs at once.
    fn drain(
        &self,
        state: &State,
        edb: &VersionedEdb<'_>,
        pending: &mut BTreeMap<TableVersionId, (Delta, Option<SmoId>)>,
        batch: &mut WriteBatch,
    ) -> Result<()> {
        let g = &state.genealogy;
        let m = &state.materialization;
        // Relations whose rows persist generator assignments: applying a
        // delta to them must keep the skolem registry in sync, or a later
        // occurrence of a replaced payload would reuse a repurposed id.
        let hint_map: BTreeMap<&str, &str> = g
            .smos()
            .flat_map(|s| {
                s.derived
                    .observe_hints
                    .iter()
                    .map(|h| (h.relation.as_str(), h.generator.as_str()))
            })
            .collect();
        while let Some((&tv, _)) = pending.iter().next() {
            let case = m.storage_of(g, tv);
            match case {
                StorageCase::Local => {
                    let (delta, arrived) = pending.remove(&tv).expect("present");
                    let rel = g.table_version(tv).rel.clone();
                    self.purge_sibling_aux(state, tv, &delta, arrived, None, batch);
                    if let Some(generator) = hint_map.get(rel.as_str()) {
                        self.sync_registry(generator, &delta);
                    }
                    apply_delta_physically(&rel, &delta, batch);
                }
                StorageCase::Forward(smo) | StorageCase::Backward(smo) => {
                    // Gather every pending delta that departs through `smo`.
                    let departing: Vec<TableVersionId> = pending
                        .iter()
                        .filter(|(id, _)| match m.storage_of(g, **id) {
                            StorageCase::Forward(s) | StorageCase::Backward(s) => s == smo,
                            StorageCase::Local => false,
                        })
                        .map(|(id, _)| *id)
                        .collect();
                    let inst = g.smo(smo);
                    let forwards = matches!(case, StorageCase::Forward(_));
                    let (direction, rules) = if forwards {
                        (Direction::ToTgt, &inst.derived.to_tgt)
                    } else {
                        (Direction::ToSrc, &inst.derived.to_src)
                    };
                    let crs = self
                        .compiled
                        .get_or_compile(smo, direction, rules)
                        .map_err(CoreError::from)?;
                    let mut input = DeltaMap::new();
                    for id in &departing {
                        let (delta, arrived) = pending.remove(id).expect("present");
                        self.purge_sibling_aux(state, *id, &delta, arrived, Some(smo), batch);
                        input.insert(g.table_version(*id).rel.clone(), delta);
                    }
                    let ids = self.id_source();
                    let head_deltas = match state.write_path {
                        WritePath::Delta => {
                            propagate_compiled(&crs, edb, &input, &ids, edb.head_columns())?
                        }
                        WritePath::Recompute => propagate_by_recompute_compiled(
                            &crs,
                            edb,
                            &input,
                            &ids,
                            edb.head_columns(),
                        )?,
                    };
                    // Distribute: data heads continue; aux and shared heads
                    // are physical on the destination side.
                    let next_data = if forwards {
                        inst.derived.tgt_data.iter().zip(inst.targets.iter())
                    } else {
                        inst.derived.src_data.iter().zip(inst.sources.iter())
                    };
                    let next_index: BTreeMap<&str, TableVersionId> =
                        next_data.map(|(t, id)| (t.rel.as_str(), *id)).collect();
                    let aux_side = if forwards {
                        &inst.derived.tgt_aux
                    } else {
                        &inst.derived.src_aux
                    };
                    for (rel, d) in head_deltas {
                        if d.is_empty() {
                            continue;
                        }
                        if let Some(next_tv) = next_index.get(rel.as_str()) {
                            match pending.get_mut(next_tv) {
                                Some((existing, _)) => existing.merge(&d),
                                None => {
                                    pending.insert(*next_tv, (d, Some(smo)));
                                }
                            }
                            continue;
                        }
                        if let Some(shared) =
                            inst.derived.shared_aux.iter().find(|s| s.new_name == rel)
                        {
                            apply_delta_physically(&shared.table.rel, &d, batch);
                            continue;
                        }
                        if aux_side.iter().any(|a| a.rel == rel) {
                            apply_delta_physically(&rel, &d, batch);
                        }
                        // Intermediate heads (Sn, Tn, Ro, …) are discarded.
                    }
                }
            }
        }
        Ok(())
    }

    /// Keep the skolem registry consistent with a physical id-bearing
    /// relation: replaced payloads are forgotten, new payloads recorded.
    fn sync_registry(&self, generator: &str, delta: &Delta) {
        let mut reg = self.ids.0.lock();
        for row in delta.deletes.values() {
            reg.unobserve(generator, row);
        }
        for (key, row) in &delta.inserts {
            reg.observe(generator, row, key.0);
        }
    }

    /// Purge key-matching rows of physical auxiliary tables of SMOs adjacent
    /// to `tv` that the propagation neither arrived through nor departs
    /// through. Only pure deletes purge — updates keep twins separated.
    fn purge_sibling_aux(
        &self,
        state: &State,
        tv: TableVersionId,
        delta: &Delta,
        arrived: Option<SmoId>,
        departing: Option<SmoId>,
        batch: &mut WriteBatch,
    ) {
        let g = &state.genealogy;
        let m = &state.materialization;
        let deleted: Vec<Key> = delta
            .deletes
            .keys()
            .filter(|k| !delta.inserts.contains_key(k))
            .copied()
            .collect();
        if deleted.is_empty() {
            return;
        }
        let mut adjacent: Vec<SmoId> = vec![g.incoming(tv)];
        adjacent.extend(g.outgoing(tv).iter().copied());
        for smo in adjacent {
            if Some(smo) == arrived || Some(smo) == departing {
                continue;
            }
            let inst = g.smo(smo);
            if !inst.moves_data() {
                continue;
            }
            // Physical aux of this SMO under the current materialization.
            let aux = if m.is_materialized(g, smo) {
                &inst.derived.tgt_aux
            } else {
                &inst.derived.src_aux
            };
            for a in aux
                .iter()
                .chain(inst.derived.shared_aux.iter().map(|s| &s.table))
            {
                for k in &deleted {
                    batch.delete_if_present(a.rel.clone(), *k);
                }
            }
        }
    }
}

/// Turn a delta into physical write ops (tolerant: propagation is exact,
/// but aux purges may have removed rows already).
fn apply_delta_physically(rel: &str, delta: &Delta, batch: &mut WriteBatch) {
    for key in delta.deletes.keys() {
        if !delta.inserts.contains_key(key) {
            batch.delete_if_present(rel.to_string(), *key);
        }
    }
    for (key, row) in &delta.inserts {
        batch.upsert(rel.to_string(), *key, row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::Value;

    fn tasky_full() -> Inverda {
        let db = Inverda::new();
        db.execute(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1; \
             CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
               DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
               RENAME COLUMN author IN Author TO name;",
        )
        .unwrap();
        db
    }

    fn seed(db: &Inverda) -> Vec<Key> {
        // Figure 1's data set.
        db.insert_many(
            "TasKy",
            "Task",
            vec![
                vec!["Ann".into(), "Organize party".into(), 3.into()],
                vec!["Ben".into(), "Learn for exam".into(), 2.into()],
                vec!["Ann".into(), "Write paper".into(), 1.into()],
                vec!["Ben".into(), "Clean room".into(), 1.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure_1_views_from_initial_materialization() {
        let db = tasky_full();
        let keys = seed(&db);
        // TasKy sees all 4 tasks.
        assert_eq!(db.count("TasKy", "Task").unwrap(), 4);
        // Do! sees the two prio-1 tasks, without the prio column.
        let todo = db.scan("Do!", "Todo").unwrap();
        assert_eq!(todo.len(), 2);
        assert!(todo.contains_key(keys[2]));
        assert!(todo.contains_key(keys[3]));
        assert_eq!(
            todo.get(keys[2]).unwrap(),
            &vec![Value::text("Ann"), Value::text("Write paper")]
        );
        // TasKy2: 4 tasks with fk, 2 authors.
        let task2 = db.scan("TasKy2", "Task").unwrap();
        assert_eq!(task2.len(), 4);
        let authors = db.scan("TasKy2", "Author").unwrap();
        assert_eq!(authors.len(), 2);
        // Tasks reference author ids that exist in Author.
        for (_, row) in task2.iter() {
            let fk = row[2].clone();
            let fk_key = match fk {
                Value::Int(i) => Key(i as u64),
                other => panic!("non-id fk {other}"),
            };
            assert!(authors.contains_key(fk_key), "dangling fk {fk_key}");
        }
    }

    #[test]
    fn writes_in_do_propagate_backwards() {
        // "When a new entry is inserted in Todo, this will automatically
        // insert a corresponding task with priority 1 to Task in TasKy."
        let db = tasky_full();
        seed(&db);
        let k = db
            .insert("Do!", "Todo", vec!["Eve".into(), "New task".into()])
            .unwrap();
        let task = db.scan("TasKy", "Task").unwrap();
        assert_eq!(
            task.get(k).unwrap(),
            &vec![Value::text("Eve"), Value::text("New task"), Value::Int(1)]
        );
        // And it is visible in TasKy2 as well.
        assert!(db.scan("TasKy2", "Task").unwrap().contains_key(k));

        // Updates and deletes propagate too.
        db.update("Do!", "Todo", k, vec!["Eve".into(), "Edited".into()])
            .unwrap();
        assert_eq!(
            db.get("TasKy", "Task", k).unwrap().unwrap()[1],
            Value::text("Edited")
        );
        db.delete("Do!", "Todo", k).unwrap();
        assert!(db.get("TasKy", "Task", k).unwrap().is_none());
        assert!(db.get("TasKy2", "Task", k).unwrap().is_none());
    }

    #[test]
    fn writes_in_tasky2_propagate_backwards_through_fk_decompose() {
        let db = tasky_full();
        seed(&db);
        let authors = db.scan("TasKy2", "Author").unwrap();
        let ann_id = authors
            .iter()
            .find(|(_, row)| row[0] == Value::text("Ann"))
            .map(|(k, _)| k)
            .unwrap();
        // Insert a task for the existing author Ann through TasKy2.
        let k = db
            .insert(
                "TasKy2",
                "Task",
                vec!["Fix bug".into(), 2.into(), Value::Int(ann_id.0 as i64)],
            )
            .unwrap();
        let row = db.get("TasKy", "Task", k).unwrap().unwrap();
        assert_eq!(
            row,
            vec![Value::text("Ann"), Value::text("Fix bug"), Value::Int(2)]
        );
    }

    #[test]
    fn update_through_tasky_changes_do_view() {
        let db = tasky_full();
        let keys = seed(&db);
        // Raising prio of "Organize party" to 1 adds it to Do!.
        db.update(
            "TasKy",
            "Task",
            keys[0],
            vec!["Ann".into(), "Organize party".into(), 1.into()],
        )
        .unwrap();
        assert_eq!(db.count("Do!", "Todo").unwrap(), 3);
        // Lowering "Write paper" to 2 removes it.
        db.update(
            "TasKy",
            "Task",
            keys[2],
            vec!["Ann".into(), "Write paper".into(), 2.into()],
        )
        .unwrap();
        assert_eq!(db.count("Do!", "Todo").unwrap(), 2);
    }

    #[test]
    fn missing_rows_are_reported() {
        let db = tasky_full();
        seed(&db);
        assert!(matches!(
            db.delete("Do!", "Todo", Key(99_999)),
            Err(CoreError::MissingRow { .. })
        ));
        assert!(matches!(
            db.update(
                "TasKy",
                "Task",
                Key(99_999),
                vec!["x".into(), "y".into(), 1.into()]
            ),
            Err(CoreError::MissingRow { .. })
        ));
    }

    #[test]
    fn recompute_path_agrees_with_delta_path() {
        let run = |path: WritePath| {
            let db = tasky_full();
            db.set_write_path(path);
            let keys = seed(&db);
            db.insert("Do!", "Todo", vec!["Eve".into(), "t5".into()])
                .unwrap();
            db.update(
                "TasKy",
                "Task",
                keys[0],
                vec!["Ann".into(), "Organize party".into(), 1.into()],
            )
            .unwrap();
            db.delete("Do!", "Todo", keys[3]).unwrap();
            let mut out = Vec::new();
            for (v, t) in [
                ("TasKy", "Task"),
                ("Do!", "Todo"),
                ("TasKy2", "Task"),
                ("TasKy2", "Author"),
            ] {
                let rel = db.scan(v, t).unwrap();
                out.push(format!("{v}.{t}: {rel}"));
            }
            out.join("\n")
        };
        // Key sequences are deterministic, so the final states must match
        // exactly between the two write paths.
        assert_eq!(run(WritePath::Delta), run(WritePath::Recompute));
    }
}
