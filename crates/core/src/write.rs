//! Write propagation: the engine-side equivalent of the generated triggers.
//!
//! A logical write on `version.table` becomes a [`Delta`] on that table
//! version and is pushed, hop by hop, toward the physical storage:
//!
//! * **Case 1 (local)** — applied to the physical data table directly;
//! * **Case 2 (forwards)** — mapped through γ_tgt of the materialized
//!   outgoing SMO onto the target-side tables (data, auxiliary, shared);
//! * **Case 3 (backwards)** — mapped through γ_src of the virtualized
//!   incoming SMO onto the source side.
//!
//! At each hop the mapping's update-propagation rules produce exact deltas
//! for *all* relations of the destination side, including the auxiliary
//! tables that preserve otherwise-lost information (lost twins, separated
//! twins, condition violators, computed values, generated identifiers).
//!
//! Deletes additionally purge key-matching rows from the physical auxiliary
//! tables of *adjacent* SMOs that the propagation path does not traverse:
//! the paper's laws only constrain round trips of states, and without the
//! purge a separated twin recorded in `S⁺` would resurrect a tuple deleted
//! through the side that physically stores it (see DESIGN.md).
//!
//! When several **independent** SMO hops are pending at once (diamond
//! genealogies, multi-target SMOs), their propagations fan out on the
//! shared pool — but only under a proof of non-interference: pairwise
//! disjoint hop footprints (reachable SMOs/table versions, inputs, purge
//! targets) and a view prepared for parallel sharing. Staged and
//! id-minting mappings participate: each hop propagates against its own
//! hop-scope reservation arena ([`ReservingIds`]), committed — minting
//! real ids — in the sequential distribute epilogue. Inputs are popped and
//! outputs distributed sequentially in pop order, and the post-commit
//! reverse-maintenance pass likewise fans out only over
//! simultaneously-ready (hence independent) hops — so the write path at
//! any `INVERDA_THREADS` width is byte-identical to the sequential drain
//! (DESIGN.md "Parallel evaluation & deterministic merge", "Deterministic
//! minting & reservation commit").

use crate::compiled::Direction;
use crate::database::{Inverda, State, WritePath};
use crate::edb::VersionedEdb;
use crate::error::CoreError;
use crate::snapshot::SnapshotMaintenance;
use crate::Result;
use inverda_catalog::{SmoId, StorageCase, TableVersionId};
use inverda_datalog::delta::{
    patch_delta_map, propagate_by_recompute_compiled, propagate_compiled, Delta, DeltaMap,
    PatchedEdb,
};
use inverda_datalog::eval::{evaluate_compiled, EdbView as _, ReservingIds, NO_MINT_IDS};
use inverda_datalog::skolem;
use inverda_storage::codec::{Codec, Reader};
use inverda_storage::{Key, Relation, Row, TableSchema, Value, WriteBatch};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One logical write against a schema version's table, for batched
/// [`Inverda::apply_many`] application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalWrite {
    /// Insert a new row (a fresh InVerDa identifier is minted).
    Insert(Row),
    /// Replace the row under the key.
    Update(Key, Row),
    /// Delete the row under the key.
    Delete(Key),
}

const LW_INSERT: u8 = 0;
const LW_UPDATE: u8 = 1;
const LW_DELETE: u8 = 2;

// Wire form for the branch layer's operation log.
impl Codec for LogicalWrite {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogicalWrite::Insert(row) => {
                out.push(LW_INSERT);
                row.encode(out);
            }
            LogicalWrite::Update(key, row) => {
                out.push(LW_UPDATE);
                key.encode(out);
                row.encode(out);
            }
            LogicalWrite::Delete(key) => {
                out.push(LW_DELETE);
                key.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> inverda_storage::Result<Self> {
        Ok(match r.u8()? {
            LW_INSERT => LogicalWrite::Insert(Row::decode(r)?),
            LW_UPDATE => LogicalWrite::Update(Key::decode(r)?, Row::decode(r)?),
            LW_DELETE => LogicalWrite::Delete(Key::decode(r)?),
            t => {
                return Err(inverda_storage::StorageError::codec(format!(
                    "invalid logical-write tag {t}"
                )))
            }
        })
    }
}

/// One SMO hop a drain traversed, recorded so snapshot maintenance can walk
/// the chain *backward* after the write lands. The forward hop's head
/// deltas are what gets applied, but a virtual relation's **visible** state
/// is defined by resolution back from physical storage — in twin corners
/// (SPLIT with overlapping conditions, separations) the two can disagree,
/// so patches must be derived from the landed deltas through each side's
/// defining mapping, not from the forward inputs.
struct HopRecord {
    smo: SmoId,
    forwards: bool,
}

/// Everything a drain accumulates for post-commit snapshot maintenance.
#[derive(Default)]
struct MaintenancePlan {
    /// Patch/invalidate/purge records handed to [`SnapshotStore::commit`].
    ///
    /// [`SnapshotStore::commit`]: crate::snapshot::SnapshotStore::commit
    maint: SnapshotMaintenance,
    /// SMO hops traversed, for the backward reverse-propagation passes.
    hops: Vec<HopRecord>,
    /// Exact deltas of *physical* relations as applied by the batch —
    /// the trustworthy seeds of the reverse passes.
    landed: DeltaMap,
    /// Whether maintenance is being tracked at all (delta write path with
    /// the snapshot store enabled).
    track: bool,
}

impl MaintenancePlan {
    fn landed_merge(&mut self, rel: &str, delta: &Delta) {
        match self.landed.get_mut(rel) {
            Some(existing) => existing.merge(delta),
            None => {
                self.landed.insert(rel.to_string(), delta.clone());
            }
        }
    }
}

impl Inverda {
    /// Insert a row into `version.table`; returns the InVerDa identifier.
    pub fn insert(&self, version: &str, table: &str, row: Vec<Value>) -> Result<Key> {
        Ok(self.insert_many(version, table, vec![row])?[0])
    }

    /// Insert many rows in one propagation round (bulk load).
    pub fn insert_many(
        &self,
        version: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<Key>> {
        let writes = rows.into_iter().map(LogicalWrite::Insert).collect();
        Ok(self
            .apply_many(version, table, writes)?
            .into_iter()
            .flatten()
            .collect())
    }

    /// Replace the row under `key` in `version.table`.
    pub fn update(&self, version: &str, table: &str, key: Key, row: Vec<Value>) -> Result<()> {
        self.apply_many(version, table, vec![LogicalWrite::Update(key, row)])
            .map(|_| ())
    }

    /// Delete the row under `key` from `version.table`.
    pub fn delete(&self, version: &str, table: &str, key: Key) -> Result<()> {
        self.apply_many(version, table, vec![LogicalWrite::Delete(key)])
            .map(|_| ())
    }

    /// Apply a batch of mixed logical writes to `version.table` in **one**
    /// propagation round: the writes are folded into a single exact delta
    /// (later writes see the effects of earlier ones), so per-statement view
    /// setup and SMO-hop evaluation amortize across the whole batch — the
    /// mixed-workload sibling of [`insert_many`](Inverda::insert_many).
    ///
    /// Returns one entry per input write: the minted identifier for inserts,
    /// `None` for updates and deletes. Fails atomically: an invalid write
    /// (missing row, arity mismatch) leaves the database untouched.
    pub fn apply_many(
        &self,
        version: &str,
        table: &str,
        writes: Vec<LogicalWrite>,
    ) -> Result<Vec<Option<Key>>> {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        let key_seq_before = self.storage.sequences().current_key();
        let result = self.apply_many_locked(&state, version, table, writes);
        // A committed batch drained its journal into its own WAL record;
        // whatever remains (mints of a rejected batch's validation reads,
        // of a failed drain) is flushed so the crash-recovered registry
        // matches the in-memory one — and a rejected batch leaves exactly
        // the trace it left in memory: registry deltas, no writes. A
        // rejected batch can also consume keys without journaling (inserts
        // allocate before a later write fails validation), so the error
        // path logs a record whenever the sequence advanced, keeping
        // recovered key minting in lockstep with the in-memory process.
        if self.durability.is_some() {
            let reg_ops = self.ids.0.lock().take_journal();
            let key_seq = self.storage.sequences().current_key();
            if !reg_ops.is_empty() || (result.is_err() && key_seq != key_seq_before) {
                self.wal_append(
                    &state,
                    crate::durability::Record {
                        reg_ops,
                        key_seq,
                        body: crate::durability::RecordBody::RegistryOnly,
                    },
                )?;
            }
        }
        result
    }

    fn apply_many_locked(
        &self,
        state: &crate::database::State,
        version: &str,
        table: &str,
        writes: Vec<LogicalWrite>,
    ) -> Result<Vec<Option<Key>>> {
        let tv = state.genealogy.resolve(version, table)?;
        let arity = state.genealogy.table_version(tv).columns.len();
        let rel = state.genealogy.table_version(tv).rel.clone();
        let check_arity = |row: &Row| -> Result<()> {
            if row.len() != arity {
                return Err(CoreError::Storage(
                    inverda_storage::StorageError::ArityMismatch {
                        table: table.to_string(),
                        expected: arity,
                        got: row.len(),
                    },
                ));
            }
            Ok(())
        };
        let missing = |key: Key| CoreError::MissingRow {
            version: version.to_string(),
            table: table.to_string(),
            key: key.0,
        };
        let mut delta = Delta::new();
        let mut out = Vec::with_capacity(writes.len());
        {
            // One view serves every old-row lookup of the batch; `overlay`
            // layers the batch's own effects on top so later writes see
            // earlier ones.
            let ids = self.id_source();
            let edb = self.edb(state, &ids);
            use inverda_datalog::eval::EdbView;
            let mut overlay: BTreeMap<Key, Option<Row>> = BTreeMap::new();
            let current = |overlay: &BTreeMap<Key, Option<Row>>, key: Key| -> Result<Option<Row>> {
                match overlay.get(&key) {
                    Some(row) => Ok(row.clone()),
                    None => Ok(edb.by_key(&rel, key)?),
                }
            };
            for write in writes {
                match write {
                    LogicalWrite::Insert(row) => {
                        check_arity(&row)?;
                        let key = self.storage.sequences().next_key();
                        delta.merge(&Delta::insert(key, row.clone()));
                        overlay.insert(key, Some(row));
                        out.push(Some(key));
                    }
                    LogicalWrite::Update(key, row) => {
                        check_arity(&row)?;
                        let old = current(&overlay, key)?.ok_or_else(|| missing(key))?;
                        if old != row {
                            delta.merge(&Delta::update(key, old, row.clone()));
                            overlay.insert(key, Some(row));
                        }
                        out.push(None);
                    }
                    LogicalWrite::Delete(key) => {
                        let old = current(&overlay, key)?.ok_or_else(|| missing(key))?;
                        delta.merge(&Delta::delete(key, old));
                        overlay.insert(key, None);
                        out.push(None);
                    }
                }
            }
        }
        if !delta.is_empty() {
            self.apply_logical(state, tv, delta)?;
        }
        Ok(out)
    }

    /// Propagate a logical delta on a table version to physical storage and
    /// apply it atomically, then patch or invalidate the affected snapshot
    /// store entries (see [`crate::snapshot`]).
    pub(crate) fn apply_logical(
        &self,
        state: &State,
        tv: TableVersionId,
        delta: Delta,
    ) -> Result<()> {
        let mut batch = WriteBatch::new();
        let mut plan = MaintenancePlan {
            track: matches!(state.write_path, WritePath::Delta) && self.snapshot_store().is_some(),
            ..MaintenancePlan::default()
        };
        {
            let ids = self.id_source();
            let edb = self.edb(state, &ids);
            let mut pending: BTreeMap<TableVersionId, (Delta, Option<SmoId>)> = BTreeMap::new();
            pending.insert(tv, (delta, None));
            self.drain(state, &edb, &mut pending, &mut batch, &mut plan)?;
            if plan.track {
                let hops = std::mem::take(&mut plan.hops);
                let landed = std::mem::take(&mut plan.landed);
                self.reverse_maintenance(state, &edb, hops, landed, &ids, &mut plan.maint);
            }
        }
        // Capture which entries are valid *before* the batch lands: only a
        // pre-write-valid snapshot may be patched (patching a stale one
        // would compound the staleness).
        match self.snapshot_store() {
            Some(store) => {
                let valid = store.valid_rels(&self.storage);
                self.storage.apply(&batch)?;
                store.commit(&plan.maint, &valid, &self.storage);
            }
            None => self.storage.apply(&batch)?,
        }
        // The batch is committed: log the validated physical write set with
        // everything the statement minted or re-seeded (validation reads,
        // drain-time registry sync, maintenance-time mints). Replay applies
        // the batch directly — no rule re-evaluation — so the key-sequence
        // stamp is the post-statement value.
        if self.durability.is_some() {
            let reg_ops = self.ids.0.lock().take_journal();
            let key_seq = self.storage.sequences().current_key();
            self.wal_append(
                state,
                crate::durability::Record {
                    reg_ops,
                    key_seq,
                    body: crate::durability::RecordBody::Batch(batch),
                },
            )?;
        }
        Ok(())
    }

    /// Process pending per-table-version deltas until all reach physical
    /// storage. Deltas heading through the same SMO hop are combined so
    /// multi-source SMOs (MERGE, JOIN) see all their changed inputs at once.
    ///
    /// When maintenance is tracked, the plan records every physical delta
    /// the batch will apply plus the hop sequence, so
    /// [`reverse_maintenance`](Inverda::reverse_maintenance) can patch the
    /// snapshot store in place after the batch commits instead of letting
    /// every resolved relation on the path go stale.
    fn drain(
        &self,
        state: &State,
        edb: &VersionedEdb<'_>,
        pending: &mut BTreeMap<TableVersionId, (Delta, Option<SmoId>)>,
        batch: &mut WriteBatch,
        plan: &mut MaintenancePlan,
    ) -> Result<()> {
        let g = &state.genealogy;
        let m = &state.materialization;
        // Relations whose rows persist generator assignments: applying a
        // delta to them must keep the skolem registry in sync, or a later
        // occurrence of a replaced payload would reuse a repurposed id.
        let hint_map: BTreeMap<&str, &str> = g
            .smos()
            .flat_map(|s| {
                s.derived
                    .observe_hints
                    .iter()
                    .map(|h| (h.relation.as_str(), h.generator.as_str()))
            })
            .collect();
        while let Some((&tv, _)) = pending.iter().next() {
            let case = m.storage_of(g, tv);
            match case {
                StorageCase::Local => {
                    let (delta, arrived) = pending.remove(&tv).expect("present");
                    let rel = g.table_version(tv).rel.clone();
                    self.purge_sibling_aux(state, tv, &delta, arrived, None, batch, plan);
                    if let Some(generator) = hint_map.get(rel.as_str()) {
                        self.sync_registry(generator, &delta);
                    }
                    if plan.track {
                        // Physical rel: its store entry only carries join
                        // indexes, which the patch keeps in sync; the landed
                        // delta also seeds the reverse passes.
                        plan.maint.record_patch(&rel, &delta);
                        plan.landed_merge(&rel, &delta);
                    }
                    apply_delta_physically(&rel, &delta, batch);
                }
                StorageCase::Forward(_) | StorageCase::Backward(_) => {
                    // Fan out independent SMO hops when several are pending
                    // and provably non-interfering; otherwise process the
                    // hop of the smallest pending table version, exactly as
                    // a sequential drain would.
                    if self.parallel_hop_round(state, edb, pending, batch, plan)? {
                        continue;
                    }
                    let smo = match case {
                        StorageCase::Forward(s) | StorageCase::Backward(s) => s,
                        StorageCase::Local => unreachable!("handled above"),
                    };
                    let forwards = matches!(case, StorageCase::Forward(_));
                    let input = self.pop_hop_inputs(state, smo, pending, batch, plan);
                    let inst = g.smo(smo);
                    let (direction, rules) = if forwards {
                        (Direction::ToTgt, &inst.derived.to_tgt)
                    } else {
                        (Direction::ToSrc, &inst.derived.to_src)
                    };
                    let crs = self
                        .compiled
                        .get_or_compile(smo, direction, rules)
                        .map_err(CoreError::from)?;
                    let ids = self.id_source();
                    let head_deltas = match state.write_path {
                        WritePath::Delta => {
                            propagate_compiled(&crs, edb, &input, &ids, edb.head_columns())?
                        }
                        WritePath::Recompute => propagate_by_recompute_compiled(
                            &crs,
                            edb,
                            &input,
                            &ids,
                            edb.head_columns(),
                        )?,
                    };
                    self.distribute_hop(state, smo, forwards, head_deltas, pending, batch, plan);
                }
            }
        }
        Ok(())
    }

    /// Remove every pending delta departing through `smo` (purging sibling
    /// aux tables as the sequential drain would) and return them keyed by
    /// relation — the input of one hop's propagation.
    fn pop_hop_inputs(
        &self,
        state: &State,
        smo: SmoId,
        pending: &mut BTreeMap<TableVersionId, (Delta, Option<SmoId>)>,
        batch: &mut WriteBatch,
        plan: &mut MaintenancePlan,
    ) -> DeltaMap {
        let g = &state.genealogy;
        let m = &state.materialization;
        let departing: Vec<TableVersionId> = pending
            .iter()
            .filter(|(id, _)| match m.storage_of(g, **id) {
                StorageCase::Forward(s) | StorageCase::Backward(s) => s == smo,
                StorageCase::Local => false,
            })
            .map(|(id, _)| *id)
            .collect();
        let mut input = DeltaMap::new();
        for id in &departing {
            let (delta, arrived) = pending.remove(id).expect("present");
            self.purge_sibling_aux(state, *id, &delta, arrived, Some(smo), batch, plan);
            input.insert(g.table_version(*id).rel.clone(), delta);
        }
        input
    }

    /// Distribute one hop's head deltas: data heads continue as pending
    /// deltas of the destination table versions; aux and shared heads are
    /// physical on the destination side and land in the batch; intermediate
    /// heads (`Sn`, `Tn`, `Ro`, …) are discarded. Records the hop for the
    /// reverse-maintenance pass.
    #[allow(clippy::too_many_arguments)]
    fn distribute_hop(
        &self,
        state: &State,
        smo: SmoId,
        forwards: bool,
        head_deltas: DeltaMap,
        pending: &mut BTreeMap<TableVersionId, (Delta, Option<SmoId>)>,
        batch: &mut WriteBatch,
        plan: &mut MaintenancePlan,
    ) {
        let inst = state.genealogy.smo(smo);
        if plan.track {
            plan.hops.push(HopRecord { smo, forwards });
        }
        let next_data = if forwards {
            inst.derived.tgt_data.iter().zip(inst.targets.iter())
        } else {
            inst.derived.src_data.iter().zip(inst.sources.iter())
        };
        let next_index: BTreeMap<&str, TableVersionId> =
            next_data.map(|(t, id)| (t.rel.as_str(), *id)).collect();
        let aux_side = if forwards {
            &inst.derived.tgt_aux
        } else {
            &inst.derived.src_aux
        };
        for (rel, d) in head_deltas {
            if d.is_empty() {
                continue;
            }
            if let Some(next_tv) = next_index.get(rel.as_str()) {
                match pending.get_mut(next_tv) {
                    Some((existing, _)) => existing.merge(&d),
                    None => {
                        pending.insert(*next_tv, (d, Some(smo)));
                    }
                }
                continue;
            }
            if let Some(shared) = inst.derived.shared_aux.iter().find(|s| s.new_name == rel) {
                if plan.track {
                    plan.maint.record_patch(&shared.table.rel, &d);
                    plan.landed_merge(&shared.table.rel, &d);
                }
                apply_delta_physically(&shared.table.rel, &d, batch);
                continue;
            }
            if aux_side.iter().any(|a| a.rel == rel) {
                if plan.track {
                    plan.maint.record_patch(&rel, &d);
                    plan.landed_merge(&rel, &d);
                }
                apply_delta_physically(&rel, &d, batch);
            }
        }
    }

    /// Everything one hop's processing can transitively touch: the SMOs it
    /// may traverse, the table versions its outputs may reach (down to
    /// physical storage), its own input table versions, and the SMOs whose
    /// aux tables a delete purge on an input could hit. Two pending hops
    /// whose footprints are disjoint commute exactly — neither can feed,
    /// purge, or converge with the other — which is the condition for
    /// fanning them out in parallel without changing drain semantics.
    fn hop_footprint(
        &self,
        state: &State,
        smo: SmoId,
        forwards: bool,
        inputs: &[TableVersionId],
    ) -> (BTreeSet<SmoId>, BTreeSet<TableVersionId>) {
        let g = &state.genealogy;
        let m = &state.materialization;
        let mut smos: BTreeSet<SmoId> = BTreeSet::new();
        let mut tvs: BTreeSet<TableVersionId> = BTreeSet::new();
        smos.insert(smo);
        fn reach(
            g: &inverda_catalog::Genealogy,
            m: &inverda_catalog::MaterializationSchema,
            tv: TableVersionId,
            smos: &mut BTreeSet<SmoId>,
            tvs: &mut BTreeSet<TableVersionId>,
        ) {
            if !tvs.insert(tv) {
                return;
            }
            match m.storage_of(g, tv) {
                StorageCase::Local => {}
                StorageCase::Forward(s) => {
                    smos.insert(s);
                    for t in g.smo(s).targets.clone() {
                        reach(g, m, t, smos, tvs);
                    }
                }
                StorageCase::Backward(s) => {
                    smos.insert(s);
                    for t in g.smo(s).sources.clone() {
                        reach(g, m, t, smos, tvs);
                    }
                }
            }
        }
        let dests = if forwards {
            g.smo(smo).targets.clone()
        } else {
            g.smo(smo).sources.clone()
        };
        for t in dests {
            reach(g, m, t, &mut smos, &mut tvs);
        }
        for &tv in inputs {
            tvs.insert(tv);
            // A pure delete purges aux tables of SMOs adjacent to the input.
            smos.insert(g.incoming(tv));
            smos.extend(g.outgoing(tv).iter().copied());
        }
        (smos, tvs)
    }

    /// One parallel fan-out round over pending SMO hops. Returns `true` if
    /// a round ran (pending was advanced), `false` to fall back to the
    /// sequential single-hop step.
    ///
    /// A round runs only when it is provably equivalent to the sequential
    /// drain: no physical-case delta may be pending (local application
    /// interleaves with hops by table-version order and syncs the skolem
    /// registry), at least two hop groups must be selectable in pop order
    /// with pairwise-disjoint [`footprints`](Inverda::hop_footprint) —
    /// groups skipped over poison their footprint so no later group that
    /// could interact with them is selected — and every selected hop's
    /// propagation must run over a view prepared for parallel sharing.
    /// Staged and id-minting hops participate too: each selected hop gets
    /// its own hop-scope [`ReservingIds`], so workers reserve placeholder
    /// ids instead of touching the registry or the key sequence, and the
    /// sequential distribute epilogue commits each hop's reservations (in
    /// pop order, which is the order the sequential drain would have minted
    /// in) and patches the final ids through the hop's head deltas. The
    /// propagations run on the pool; inputs were popped and outputs are
    /// distributed sequentially in pop order, so the resulting pending map,
    /// write batch, skolem registry, and maintenance plan are
    /// byte-identical to the sequential drain's.
    fn parallel_hop_round(
        &self,
        state: &State,
        edb: &VersionedEdb<'_>,
        pending: &mut BTreeMap<TableVersionId, (Delta, Option<SmoId>)>,
        batch: &mut WriteBatch,
        plan: &mut MaintenancePlan,
    ) -> Result<bool> {
        use inverda_datalog::parallel;
        if parallel::threads() < 2 {
            return Ok(false);
        }
        let g = &state.genealogy;
        let m = &state.materialization;
        // Hop groups in pop order (order of their smallest pending tv).
        let mut groups: Vec<(SmoId, bool, Vec<TableVersionId>)> = Vec::new();
        for (&tv, _) in pending.iter() {
            match m.storage_of(g, tv) {
                StorageCase::Local => return Ok(false),
                StorageCase::Forward(s) | StorageCase::Backward(s) => {
                    let forwards = matches!(m.storage_of(g, tv), StorageCase::Forward(_));
                    match groups.iter_mut().find(|(smo, ..)| *smo == s) {
                        Some((.., tvs)) => tvs.push(tv),
                        None => groups.push((s, forwards, vec![tv])),
                    }
                }
            }
        }
        if groups.len() < 2 {
            return Ok(false);
        }
        // Select a maximal non-interfering prefix-respecting set.
        let mut poisoned_smos: BTreeSet<SmoId> = BTreeSet::new();
        let mut poisoned_tvs: BTreeSet<TableVersionId> = BTreeSet::new();
        let mut selected: Vec<(SmoId, bool, Arc<inverda_datalog::CompiledRuleSet>)> = Vec::new();
        for (smo, forwards, tvs) in &groups {
            let (smos, tvs_reach) = self.hop_footprint(state, *smo, *forwards, tvs);
            let disjoint = smos.is_disjoint(&poisoned_smos) && tvs_reach.is_disjoint(&poisoned_tvs);
            if disjoint {
                let inst = g.smo(*smo);
                let (direction, rules) = if *forwards {
                    (Direction::ToTgt, &inst.derived.to_tgt)
                } else {
                    (Direction::ToSrc, &inst.derived.to_src)
                };
                if let Ok(crs) = self.compiled.get_or_compile(*smo, direction, rules) {
                    if matches!(edb.prepare_parallel(&crs.body_relations()), Ok(true)) {
                        selected.push((*smo, *forwards, crs));
                    }
                }
            }
            poisoned_smos.extend(smos);
            poisoned_tvs.extend(tvs_reach);
        }
        if selected.len() < 2 {
            return Ok(false);
        }
        // Pop inputs (and run purges) sequentially in pop order.
        let inputs: Vec<DeltaMap> = selected
            .iter()
            .map(|(smo, ..)| self.pop_hop_inputs(state, *smo, pending, batch, plan))
            .collect();
        // Propagate all selected hops on the pool. Workers are pure: the
        // view was prepared, and any skolem call reserves into the hop's
        // own arena (peeking, never mutating, the shared registry).
        let write_path = state.write_path;
        let head_columns = edb.head_columns();
        let minter = self.id_source();
        let hop_ids: Vec<ReservingIds<'_>> = selected
            .iter()
            .map(|_| ReservingIds::new(&minter, skolem::SCOPE_HOP))
            .collect();
        let results: Vec<inverda_datalog::Result<DeltaMap>> =
            parallel::map_indexed(selected.len(), |i| {
                let (_, _, crs) = &selected[i];
                match write_path {
                    WritePath::Delta => {
                        propagate_compiled(crs, edb, &inputs[i], &hop_ids[i], head_columns)
                    }
                    WritePath::Recompute => propagate_by_recompute_compiled(
                        crs,
                        edb,
                        &inputs[i],
                        &hop_ids[i],
                        head_columns,
                    ),
                }
            });
        // Distribute sequentially in pop order: commit each hop's
        // reservations (minting now, in reservation order), patch the final
        // ids through its deltas, then distribute — errors surface in the
        // same order the sequential drain would raise them.
        for (i, (((smo, forwards, crs), hop_ids), result)) in
            selected.iter().zip(hop_ids).zip(results).enumerate()
        {
            let head_deltas = match result {
                Ok(head_deltas) => {
                    let patch = hop_ids.commit();
                    patch_delta_map(head_deltas, &patch)
                }
                Err(_) => {
                    // Reproduce the sequential error path exactly: the
                    // worker run had no side effects (reservations are
                    // discarded unminted), so re-running this hop against
                    // the real id source performs precisely the mints the
                    // sequential drain performs before failing — and raises
                    // the canonical error.
                    drop(hop_ids);
                    let replay = match write_path {
                        WritePath::Delta => {
                            propagate_compiled(crs, edb, &inputs[i], &minter, head_columns)
                        }
                        WritePath::Recompute => propagate_by_recompute_compiled(
                            crs,
                            edb,
                            &inputs[i],
                            &minter,
                            head_columns,
                        ),
                    };
                    replay.map_err(CoreError::from)?
                }
            };
            self.distribute_hop(state, *smo, *forwards, head_deltas, pending, batch, plan);
        }
        Ok(true)
    }

    /// Walk the traversed hops **backward from physical storage**, deriving
    /// the true visible-state delta of every departed side by pushing the
    /// already-known deltas of the side closer to the data through the
    /// departed side's *defining* mapping (the hop's opposite direction).
    /// This is the incremental-view-maintenance core of the snapshot store:
    /// the forward hop deltas are what gets applied physically, but a
    /// virtual relation's visible state is whatever resolution from the
    /// physical state derives — in twin corners (overlapping SPLIT,
    /// separations) the two differ, so only backward-derived deltas are
    /// trustworthy patches.
    ///
    /// A hop whose defining mapping is staged or can mint skolem ids (the
    /// id-generating SMOs served by the recompute fallback) cannot be
    /// probe-maintained, but it no longer falls back to invalidation: its
    /// departed side's **new** visible state is fully re-evaluated over the
    /// post-write state and diffed against the stored (pre-write-valid)
    /// snapshots — recompute-vs-stored. Evaluating only the *new* state is
    /// deliberate: the mints it performs are exactly those a post-write
    /// cold read would perform, in the same order, so the registry and key
    /// sequence stay in lockstep with a store-disabled database executing
    /// the same statement-and-read sequence (evaluating the old state too,
    /// as the propagation fallback would, could mint ids for payloads that
    /// vanished in this very write — ids no cold read ever mints).
    /// Departed relations without a valid stored entry, and maintenance
    /// failures, degrade to invalidation; they never fail the write.
    fn reverse_maintenance(
        &self,
        state: &State,
        edb: &VersionedEdb<'_>,
        hops: Vec<HopRecord>,
        landed: DeltaMap,
        ids: &dyn inverda_datalog::eval::IdSource,
        maint: &mut SnapshotMaintenance,
    ) {
        if hops.is_empty() {
            return;
        }
        let g = &state.genealogy;
        let m = &state.materialization;
        // A diamond drain can traverse one SMO twice; by the time a hop is
        // ready its destination deltas are fully known, so one pass per SMO
        // suffices.
        let mut remaining: Vec<HopRecord> = Vec::new();
        for hop in hops {
            if !remaining.iter().any(|h| h.smo == hop.smo) {
                remaining.push(hop);
            }
        }
        let tv_of: BTreeMap<&str, TableVersionId> =
            g.table_versions().map(|t| (t.rel.as_str(), t.id)).collect();
        // rel → true delta, seeded with what physically landed and extended
        // by each processed hop; rels whose delta could not be derived.
        let mut known = landed;
        let mut unknown: BTreeSet<String> = BTreeSet::new();
        while !remaining.is_empty() {
            let remaining_smos: BTreeSet<SmoId> = remaining.iter().map(|h| h.smo).collect();
            // A hop is ready once no unprocessed hop still has to derive the
            // delta of one of its destination data rels (i.e. every virtual
            // destination's defining SMO has been processed or was never
            // traversed). All simultaneously-ready hops are mutually
            // independent — a ready hop's inputs cannot be another *ready*
            // hop's departed relations (those would make it non-ready) — so
            // the whole ready set is processed per round and its pure
            // propagations may run in parallel.
            let mut ready: Vec<HopRecord> = Vec::new();
            let mut rest: Vec<HopRecord> = Vec::new();
            for h in remaining.drain(..) {
                let inst = g.smo(h.smo);
                let dest = if h.forwards {
                    &inst.derived.tgt_data
                } else {
                    &inst.derived.src_data
                };
                let is_ready = dest.iter().all(|t| {
                    if self.storage.has_table(&t.rel) {
                        return true;
                    }
                    match tv_of.get(t.rel.as_str()).map(|tv| m.storage_of(g, *tv)) {
                        Some(StorageCase::Forward(s)) | Some(StorageCase::Backward(s)) => {
                            !remaining_smos.contains(&s)
                        }
                        _ => true,
                    }
                });
                if is_ready {
                    ready.push(h);
                } else {
                    rest.push(h);
                }
            }
            remaining = rest;
            // Acyclic by construction (hops order along paths to storage);
            // if that ever breaks, degrade to invalidation rather than loop.
            if ready.is_empty() {
                for h in &remaining {
                    self.invalidate_departed(state, h, maint, &mut unknown);
                }
                return;
            }
            // What each ready hop needs done, decided sequentially (reads
            // `known`/`unknown`, which no other ready hop can touch).
            enum Action<'r> {
                /// Departed side fully physical — nothing to maintain.
                Skip,
                /// Cannot be maintained purely; invalidate the departed side.
                Invalidate,
                /// Departed side certified unchanged (or patched): record
                /// the deltas once available.
                Patch {
                    dep_virtual: Vec<&'r str>,
                    propagate: Option<(Arc<inverda_datalog::CompiledRuleSet>, DeltaMap)>,
                },
                /// Staged / id-minting defining mapping: evaluate the
                /// departed side's new state fully and diff against the
                /// stored snapshots (see the method docs).
                RecomputeDiff {
                    dep_virtual: Vec<&'r str>,
                    crs: Arc<inverda_datalog::CompiledRuleSet>,
                    input: DeltaMap,
                },
            }
            let mut actions: Vec<Action> = Vec::new();
            for h in &ready {
                let inst = g.smo(h.smo);
                let (rev_direction, rev_rules, dep_data, dep_aux, dest_data, dest_aux) =
                    if h.forwards {
                        (
                            Direction::ToSrc,
                            &inst.derived.to_src,
                            &inst.derived.src_data,
                            &inst.derived.src_aux,
                            &inst.derived.tgt_data,
                            &inst.derived.tgt_aux,
                        )
                    } else {
                        (
                            Direction::ToTgt,
                            &inst.derived.to_tgt,
                            &inst.derived.tgt_data,
                            &inst.derived.tgt_aux,
                            &inst.derived.src_data,
                            &inst.derived.src_aux,
                        )
                    };
                let dep_virtual: Vec<&str> = dep_data
                    .iter()
                    .map(|t| t.rel.as_str())
                    .chain(dep_aux.iter().map(|a| a.rel.as_str()))
                    .filter(|rel| !self.storage.has_table(rel))
                    .collect();
                if dep_virtual.is_empty() {
                    actions.push(Action::Skip);
                    continue;
                }
                // Relations the defining mapping reads: destination data
                // rels, the SMO's destination-side aux (physical by
                // materialization invariant), and shared aux under their
                // physical names.
                let inputs: Vec<&str> = dest_data
                    .iter()
                    .map(|t| t.rel.as_str())
                    .chain(dest_aux.iter().map(|a| a.rel.as_str()))
                    .chain(inst.derived.shared_aux.iter().map(|s| s.table.rel.as_str()))
                    .collect();
                let rev_crs = match self
                    .compiled
                    .get_or_compile(h.smo, rev_direction, rev_rules)
                {
                    Ok(crs) => crs,
                    Err(_) => {
                        actions.push(Action::Invalidate);
                        continue;
                    }
                };
                if inputs.iter().any(|rel| unknown.contains(*rel)) {
                    actions.push(Action::Invalidate);
                    continue;
                }
                let mut rev_input = DeltaMap::new();
                for rel in &inputs {
                    if let Some(d) = known.get(*rel) {
                        if !d.is_empty() {
                            rev_input.insert((*rel).to_string(), d.clone());
                        }
                    }
                }
                if rev_input.is_empty() {
                    // Nothing the mapping reads changed: the departed side
                    // is certified unchanged (empty patches refresh stamps)
                    // — staged and minting mappings included.
                    actions.push(Action::Patch {
                        dep_virtual,
                        propagate: None,
                    });
                } else if rev_crs.staged() || rev_crs.mints_ids() {
                    actions.push(Action::RecomputeDiff {
                        dep_virtual,
                        crs: rev_crs,
                        input: rev_input,
                    });
                } else {
                    actions.push(Action::Patch {
                        dep_virtual,
                        propagate: Some((rev_crs, rev_input)),
                    });
                }
            }
            // Run the propagations: pure ones (mint-free rules over a
            // prepared view) fan out on the pool, the rest run inline.
            let jobs: Vec<(usize, &Arc<inverda_datalog::CompiledRuleSet>, &DeltaMap)> = actions
                .iter()
                .enumerate()
                .filter_map(|(i, a)| match a {
                    Action::Patch {
                        propagate: Some((crs, input)),
                        ..
                    } => Some((i, crs, input)),
                    _ => None,
                })
                .collect();
            let parallel_jobs = inverda_datalog::parallel::threads() > 1
                && jobs.len() > 1
                && jobs.iter().all(|(_, crs, _)| {
                    crs.parallel_safe()
                        && matches!(edb.prepare_parallel(&crs.body_relations()), Ok(true))
                });
            let mut results: BTreeMap<usize, inverda_datalog::Result<DeltaMap>> = BTreeMap::new();
            if parallel_jobs {
                let head_columns = edb.head_columns();
                let outs = inverda_datalog::parallel::map_indexed(jobs.len(), |j| {
                    let (_, crs, input) = &jobs[j];
                    propagate_compiled(crs, edb, input, &NO_MINT_IDS, head_columns)
                });
                for ((i, ..), out) in jobs.iter().zip(outs) {
                    results.insert(*i, out);
                }
            } else {
                for (i, crs, input) in jobs {
                    results.insert(
                        i,
                        propagate_compiled(crs, edb, input, ids, edb.head_columns()),
                    );
                }
            }
            // Record outcomes in ready order (deterministic and identical
            // to processing the ready hops one at a time). RecomputeDiff
            // actions evaluate *here*, inline and in ready order: their
            // evaluations may mint (committing through the real id source),
            // so they must run at their canonical sequential position —
            // innermost hop first, exactly the order a post-write cold read
            // resolves (and therefore mints) in.
            for (i, (h, action)) in ready.iter().zip(actions.iter()).enumerate() {
                match action {
                    Action::Skip => {}
                    Action::Invalidate => {
                        self.invalidate_departed(state, h, maint, &mut unknown);
                    }
                    Action::RecomputeDiff {
                        dep_virtual,
                        crs,
                        input,
                    } => {
                        // Nothing warm to patch (store cleared, or the
                        // departed side already invalidated)? Skip the
                        // O(state) evaluation — the next cold read performs
                        // the identical mints, so registry lockstep with a
                        // store-disabled twin is unaffected.
                        let store = self.snapshot_store().filter(|store| {
                            dep_virtual
                                .iter()
                                .any(|rel| store.peek_valid(rel, &self.storage).is_some())
                        });
                        let Some(store) = store else {
                            self.invalidate_departed(state, h, maint, &mut unknown);
                            continue;
                        };
                        let patched = PatchedEdb::new(edb, input);
                        let new_out =
                            evaluate_compiled(crs, &patched, ids, edb.head_columns()).ok();
                        let Some(mut new_out) = new_out else {
                            self.invalidate_departed(state, h, maint, &mut unknown);
                            continue;
                        };
                        for rel in dep_virtual {
                            // Only an entry that was valid before this write
                            // may be patched; anything else re-resolves cold
                            // on next read (recording it as unknown poisons
                            // dependents, like an invalidation would).
                            let Some(stored) = store.peek_valid(rel, &self.storage) else {
                                maint.record_invalidate(rel);
                                unknown.insert((*rel).to_string());
                                continue;
                            };
                            // A head the mapping derives no rules for is
                            // empty by construction (single-arm aux).
                            let new_rel = new_out.remove(*rel).unwrap_or_else(|| {
                                let columns =
                                    edb.head_columns().get(*rel).cloned().unwrap_or_default();
                                Relation::new(
                                    TableSchema::new((*rel).to_string(), columns)
                                        .expect("valid head schema"),
                                )
                            });
                            let rd = new_rel.diff(&stored);
                            let mut delta = Delta::new();
                            for (k, row) in rd.deletes {
                                delta.deletes.insert(k, row);
                            }
                            for (k, row) in rd.inserts {
                                delta.inserts.insert(k, row);
                            }
                            for (k, old_row, new_row) in rd.updates {
                                delta.deletes.insert(k, old_row);
                                delta.inserts.insert(k, new_row);
                            }
                            maint.record_patch(rel, &delta);
                            match known.get_mut(*rel) {
                                Some(existing) => existing.merge(&delta),
                                None => {
                                    known.insert((*rel).to_string(), delta);
                                }
                            }
                        }
                    }
                    Action::Patch {
                        dep_virtual,
                        propagate,
                    } => {
                        let rev_deltas = match (propagate, results.remove(&i)) {
                            (None, _) => DeltaMap::new(),
                            (Some(_), Some(Ok(d))) => d,
                            (Some(_), _) => {
                                // Maintenance failures degrade to
                                // invalidation; they never fail the write.
                                self.invalidate_departed(state, h, maint, &mut unknown);
                                continue;
                            }
                        };
                        for rel in dep_virtual {
                            let d = rev_deltas.get(*rel).cloned().unwrap_or_default();
                            maint.record_patch(rel, &d);
                            match known.get_mut(*rel) {
                                Some(existing) => existing.merge(&d),
                                None => {
                                    known.insert((*rel).to_string(), d);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Mark every virtual relation of a hop's departed side as
    /// unmaintainable: invalidate its snapshot and poison dependents.
    fn invalidate_departed(
        &self,
        state: &State,
        hop: &HopRecord,
        maint: &mut SnapshotMaintenance,
        unknown: &mut BTreeSet<String>,
    ) {
        let inst = state.genealogy.smo(hop.smo);
        let (dep_data, dep_aux) = if hop.forwards {
            (&inst.derived.src_data, &inst.derived.src_aux)
        } else {
            (&inst.derived.tgt_data, &inst.derived.tgt_aux)
        };
        for rel in dep_data
            .iter()
            .map(|t| t.rel.as_str())
            .chain(dep_aux.iter().map(|a| a.rel.as_str()))
        {
            if !self.storage.has_table(rel) {
                maint.record_invalidate(rel);
                unknown.insert(rel.to_string());
            }
        }
    }

    /// Keep the skolem registry consistent with a physical id-bearing
    /// relation: replaced payloads are forgotten, new payloads recorded.
    fn sync_registry(&self, generator: &str, delta: &Delta) {
        let mut reg = self.ids.0.lock();
        for row in delta.deletes.values() {
            reg.unobserve(generator, row);
        }
        for (key, row) in &delta.inserts {
            reg.observe(generator, row, key.0);
        }
    }

    /// Purge key-matching rows of physical auxiliary tables of SMOs adjacent
    /// to `tv` that the propagation neither arrived through nor departs
    /// through. Pure deletes purge every aux kind; **updates** additionally
    /// purge the adjacent SMOs' *payload-keyed* aux tables (Appendix B.3's
    /// `ID_R(p, t)` assignment memos) — a payload-changing update
    /// invalidates such an entry, and keeping it stale would pin the old
    /// payload's generated id onto the new payload, colliding with the old
    /// payload's surviving twin on re-derivation (the historical
    /// twin-separated FK-DECOMPOSE `KeyConflict`). Twin-separation aux
    /// (`R⁺`/`R⁻`) is untouched by updates, and re-minting after the purge
    /// goes through the skolem registry, which reproduces the same id
    /// whenever the generator arguments did not actually change.
    ///
    /// Purged tables are recorded on the plan: these writes bypass delta
    /// propagation, so any snapshot whose footprint includes a purged table
    /// must be invalidated rather than patched.
    #[allow(clippy::too_many_arguments)]
    fn purge_sibling_aux(
        &self,
        state: &State,
        tv: TableVersionId,
        delta: &Delta,
        arrived: Option<SmoId>,
        departing: Option<SmoId>,
        batch: &mut WriteBatch,
        plan: &mut MaintenancePlan,
    ) {
        let g = &state.genealogy;
        let m = &state.materialization;
        let deleted: Vec<Key> = delta
            .deletes
            .keys()
            .filter(|k| !delta.inserts.contains_key(k))
            .copied()
            .collect();
        let updated: Vec<Key> = delta
            .deletes
            .keys()
            .filter(|k| delta.inserts.contains_key(k))
            .copied()
            .collect();
        if deleted.is_empty() && updated.is_empty() {
            return;
        }
        let mut adjacent: Vec<SmoId> = vec![g.incoming(tv)];
        adjacent.extend(g.outgoing(tv).iter().copied());
        for smo in adjacent {
            if Some(smo) == arrived || Some(smo) == departing {
                continue;
            }
            let inst = g.smo(smo);
            if !inst.moves_data() {
                continue;
            }
            // Physical aux of this SMO under the current materialization.
            let aux = if m.is_materialized(g, smo) {
                &inst.derived.tgt_aux
            } else {
                &inst.derived.src_aux
            };
            for a in aux
                .iter()
                .chain(inst.derived.shared_aux.iter().map(|s| &s.table))
            {
                let payload_keyed = inst.derived.payload_keyed_aux.contains(&a.rel);
                let update_purge = payload_keyed && !updated.is_empty();
                if deleted.is_empty() && !update_purge {
                    continue;
                }
                plan.maint.record_purge(&a.rel);
                for k in &deleted {
                    batch.delete_if_present(a.rel.clone(), *k);
                }
                if payload_keyed {
                    for k in &updated {
                        batch.delete_if_present(a.rel.clone(), *k);
                    }
                }
            }
        }
    }
}

/// Turn a delta into physical write ops (tolerant: propagation is exact,
/// but aux purges may have removed rows already).
fn apply_delta_physically(rel: &str, delta: &Delta, batch: &mut WriteBatch) {
    for key in delta.deletes.keys() {
        if !delta.inserts.contains_key(key) {
            batch.delete_if_present(rel.to_string(), *key);
        }
    }
    for (key, row) in &delta.inserts {
        batch.upsert(rel.to_string(), *key, row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::Value;

    fn tasky_full() -> Inverda {
        let db = Inverda::new();
        db.execute(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1; \
             CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
               DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
               RENAME COLUMN author IN Author TO name;",
        )
        .unwrap();
        db
    }

    fn seed(db: &Inverda) -> Vec<Key> {
        // Figure 1's data set.
        db.insert_many(
            "TasKy",
            "Task",
            vec![
                vec!["Ann".into(), "Organize party".into(), 3.into()],
                vec!["Ben".into(), "Learn for exam".into(), 2.into()],
                vec!["Ann".into(), "Write paper".into(), 1.into()],
                vec!["Ben".into(), "Clean room".into(), 1.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure_1_views_from_initial_materialization() {
        let db = tasky_full();
        let keys = seed(&db);
        // TasKy sees all 4 tasks.
        assert_eq!(db.count("TasKy", "Task").unwrap(), 4);
        // Do! sees the two prio-1 tasks, without the prio column.
        let todo = db.scan("Do!", "Todo").unwrap();
        assert_eq!(todo.len(), 2);
        assert!(todo.contains_key(keys[2]));
        assert!(todo.contains_key(keys[3]));
        assert_eq!(
            todo.get(keys[2]).unwrap(),
            &vec![Value::text("Ann"), Value::text("Write paper")]
        );
        // TasKy2: 4 tasks with fk, 2 authors.
        let task2 = db.scan("TasKy2", "Task").unwrap();
        assert_eq!(task2.len(), 4);
        let authors = db.scan("TasKy2", "Author").unwrap();
        assert_eq!(authors.len(), 2);
        // Tasks reference author ids that exist in Author.
        for (_, row) in task2.iter() {
            let fk = row[2].clone();
            let fk_key = match fk {
                Value::Int(i) => Key(i as u64),
                other => panic!("non-id fk {other}"),
            };
            assert!(authors.contains_key(fk_key), "dangling fk {fk_key}");
        }
    }

    #[test]
    fn writes_in_do_propagate_backwards() {
        // "When a new entry is inserted in Todo, this will automatically
        // insert a corresponding task with priority 1 to Task in TasKy."
        let db = tasky_full();
        seed(&db);
        let k = db
            .insert("Do!", "Todo", vec!["Eve".into(), "New task".into()])
            .unwrap();
        let task = db.scan("TasKy", "Task").unwrap();
        assert_eq!(
            task.get(k).unwrap(),
            &vec![Value::text("Eve"), Value::text("New task"), Value::Int(1)]
        );
        // And it is visible in TasKy2 as well.
        assert!(db.scan("TasKy2", "Task").unwrap().contains_key(k));

        // Updates and deletes propagate too.
        db.update("Do!", "Todo", k, vec!["Eve".into(), "Edited".into()])
            .unwrap();
        assert_eq!(
            db.get("TasKy", "Task", k).unwrap().unwrap()[1],
            Value::text("Edited")
        );
        db.delete("Do!", "Todo", k).unwrap();
        assert!(db.get("TasKy", "Task", k).unwrap().is_none());
        assert!(db.get("TasKy2", "Task", k).unwrap().is_none());
    }

    #[test]
    fn writes_in_tasky2_propagate_backwards_through_fk_decompose() {
        let db = tasky_full();
        seed(&db);
        let authors = db.scan("TasKy2", "Author").unwrap();
        let ann_id = authors
            .iter()
            .find(|(_, row)| row[0] == Value::text("Ann"))
            .map(|(k, _)| k)
            .unwrap();
        // Insert a task for the existing author Ann through TasKy2.
        let k = db
            .insert(
                "TasKy2",
                "Task",
                vec!["Fix bug".into(), 2.into(), Value::Int(ann_id.0 as i64)],
            )
            .unwrap();
        let row = db.get("TasKy", "Task", k).unwrap().unwrap();
        assert_eq!(
            row,
            vec![Value::text("Ann"), Value::text("Fix bug"), Value::Int(2)]
        );
    }

    #[test]
    fn update_through_tasky_changes_do_view() {
        let db = tasky_full();
        let keys = seed(&db);
        // Raising prio of "Organize party" to 1 adds it to Do!.
        db.update(
            "TasKy",
            "Task",
            keys[0],
            vec!["Ann".into(), "Organize party".into(), 1.into()],
        )
        .unwrap();
        assert_eq!(db.count("Do!", "Todo").unwrap(), 3);
        // Lowering "Write paper" to 2 removes it.
        db.update(
            "TasKy",
            "Task",
            keys[2],
            vec!["Ann".into(), "Write paper".into(), 2.into()],
        )
        .unwrap();
        assert_eq!(db.count("Do!", "Todo").unwrap(), 2);
    }

    #[test]
    fn missing_rows_are_reported() {
        let db = tasky_full();
        seed(&db);
        assert!(matches!(
            db.delete("Do!", "Todo", Key(99_999)),
            Err(CoreError::MissingRow { .. })
        ));
        assert!(matches!(
            db.update(
                "TasKy",
                "Task",
                Key(99_999),
                vec!["x".into(), "y".into(), 1.into()]
            ),
            Err(CoreError::MissingRow { .. })
        ));
    }

    #[test]
    fn apply_many_mixed_batch_matches_sequential_writes() {
        // One drain for the whole mixed batch must produce exactly the
        // state that individual statements produce.
        let batched = tasky_full();
        let sequential = tasky_full();
        let kb = seed(&batched);
        let ks = seed(&sequential);
        assert_eq!(kb, ks);

        let outcome = batched
            .apply_many(
                "TasKy",
                "Task",
                vec![
                    LogicalWrite::Insert(vec!["Eve".into(), "New".into(), 1.into()]),
                    LogicalWrite::Update(
                        kb[0],
                        vec!["Ann".into(), "Organize party".into(), 1.into()],
                    ),
                    LogicalWrite::Delete(kb[3]),
                ],
            )
            .unwrap();
        assert_eq!(outcome.len(), 3);
        let new_key = outcome[0].expect("insert returns a key");
        assert_eq!(outcome[1], None);
        assert_eq!(outcome[2], None);

        let k2 = sequential
            .insert("TasKy", "Task", vec!["Eve".into(), "New".into(), 1.into()])
            .unwrap();
        assert_eq!(k2, new_key);
        sequential
            .update(
                "TasKy",
                "Task",
                ks[0],
                vec!["Ann".into(), "Organize party".into(), 1.into()],
            )
            .unwrap();
        sequential.delete("TasKy", "Task", ks[3]).unwrap();

        for (v, t) in [
            ("TasKy", "Task"),
            ("Do!", "Todo"),
            ("TasKy2", "Task"),
            ("TasKy2", "Author"),
        ] {
            assert_eq!(
                batched.scan(v, t).unwrap().to_string(),
                sequential.scan(v, t).unwrap().to_string(),
                "{v}.{t}"
            );
        }
    }

    #[test]
    fn apply_many_later_writes_see_earlier_ones() {
        let db = tasky_full();
        let out = db
            .apply_many(
                "TasKy",
                "Task",
                vec![
                    LogicalWrite::Insert(vec!["Eve".into(), "draft".into(), 2.into()]),
                    // Update the row just inserted in this very batch.
                    LogicalWrite::Update(Key(0), vec![]), // placeholder, replaced below
                ],
            )
            .map(|_| ());
        // The placeholder key 0 does not exist: the whole batch must fail
        // atomically and leave no trace of the first insert.
        assert!(out.is_err());
        assert_eq!(db.count("TasKy", "Task").unwrap(), 0);

        // Now a real insert-then-update-then-delete chain within one batch.
        let out = db
            .apply_many(
                "TasKy",
                "Task",
                vec![LogicalWrite::Insert(vec![
                    "Eve".into(),
                    "draft".into(),
                    2.into(),
                ])],
            )
            .unwrap();
        let k = out[0].unwrap();
        let res = db
            .apply_many(
                "TasKy",
                "Task",
                vec![
                    LogicalWrite::Update(k, vec!["Eve".into(), "final".into(), 1.into()]),
                    LogicalWrite::Delete(k),
                ],
            )
            .unwrap();
        assert_eq!(res, vec![None, None]);
        assert!(db.get("TasKy", "Task", k).unwrap().is_none());
        assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
    }

    #[test]
    fn recompute_path_agrees_with_delta_path() {
        let run = |path: WritePath| {
            let db = tasky_full();
            db.set_write_path(path);
            let keys = seed(&db);
            db.insert("Do!", "Todo", vec!["Eve".into(), "t5".into()])
                .unwrap();
            db.update(
                "TasKy",
                "Task",
                keys[0],
                vec!["Ann".into(), "Organize party".into(), 1.into()],
            )
            .unwrap();
            db.delete("Do!", "Todo", keys[3]).unwrap();
            let mut out = Vec::new();
            for (v, t) in [
                ("TasKy", "Task"),
                ("Do!", "Todo"),
                ("TasKy2", "Task"),
                ("TasKy2", "Author"),
            ] {
                let rel = db.scan(v, t).unwrap();
                out.push(format!("{v}.{t}: {rel}"));
            }
            out.join("\n")
        };
        // Key sequences are deterministic, so the final states must match
        // exactly between the two write paths.
        assert_eq!(run(WritePath::Delta), run(WritePath::Recompute));
    }
}
