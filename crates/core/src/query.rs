//! The first-class query layer: logical plans with predicate, projection,
//! and limit pushdown through version resolution.
//!
//! Every schema version is a full-fledged read interface (Section 2 of the
//! paper), but a *filtered* read must not pay for the whole virtual
//! relation. A [`Query`] is built fluently —
//!
//! ```
//! use inverda_core::Inverda;
//! use inverda_storage::Expr;
//!
//! let db = Inverda::new();
//! db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE t(a, b);").unwrap();
//! db.insert("V1", "t", vec![1.into(), 10.into()]).unwrap();
//! db.insert("V1", "t", vec![2.into(), 20.into()]).unwrap();
//! let hot = db
//!     .query("V1", "t")
//!     .filter(Expr::col("a").eq(Expr::lit(2)))
//!     .project(["b"])
//!     .limit(10)
//!     .rows()
//!     .unwrap();
//! assert_eq!(hot.count(), 1);
//! ```
//!
//! — and compiles against the genealogy into a plan that **pushes the
//! predicate toward the data** instead of materializing:
//!
//! * **Warm / physical** — the relation is already at hand (statement
//!   cache, physical table, valid [`SnapshotStore`] entry): an eq/range
//!   conjunct probes a cached [`ColumnIndex`]
//!   ([`ColumnIndex::keys_where`]), everything else scans the snapshot.
//! * **Cold virtual** — an equality conjunct whose resolution is non-staged
//!   and provably mint-free becomes a **column-seeded evaluation**
//!   ([`Evaluator::head_rows_by_column`]): the binding enters the defining
//!   rule set's body, and the depth-0 candidate fetch recurses through
//!   [`EdbView::by_column`] one mapping closer to the data — a selective
//!   predicate walks an entire ADD-COLUMN chain touching only matching
//!   rows, PRISM-style query rewriting instead of view materialization.
//! * **Key** — [`Query::with_key`] takes the existing key-seeded path
//!   ([`EdbView::by_key`]), the engine's 3.4× point-lookup fast path.
//!
//! The **entire** original filter is re-evaluated on every candidate row
//! (as a position-bound [`BoundExpr`], borrowed-row evaluation), so the
//! pushed conjunct only *prunes* — pushdown ≡ scan-plus-filter holds
//! byte-for-byte, including the numeric-folding corner where `Int(1)`
//! matches a `Float(1.0)` probe but the emitted row keeps the stored bytes.
//! Residual predicates, projections, and limits apply during emission:
//! rows stream out of a [`RowIter`] without cloning the full relation, and
//! `count`/`exists` never clone rows at all. Determinism: plans never mint
//! skolem ids off the canonical resolution order (minting closures fall
//! back to full resolution), and results are byte-identical at every
//! `INVERDA_THREADS` width and warm/cold store state — enforced by
//! `tests/query_pushdown_props.rs`. (One caveat on *error* paths: a state
//! violating the mappings' functional-head invariant — two rules deriving
//! different rows for one key, which the write path never produces — makes
//! a full resolution raise `KeyConflict`, while a seeded plan only detects
//! the conflict if both tuples match the seed; see
//! [`Evaluator::head_rows_by_column`].)
//!
//! [`SnapshotStore`]: crate::snapshot::SnapshotStore
//! [`ColumnIndex`]: inverda_storage::ColumnIndex
//! [`ColumnIndex::keys_where`]: inverda_storage::ColumnIndex::keys_where
//! [`Evaluator::head_rows_by_column`]: inverda_datalog::eval::Evaluator::head_rows_by_column
//! [`EdbView::by_column`]: inverda_datalog::eval::EdbView::by_column
//! [`EdbView::by_key`]: inverda_datalog::eval::EdbView::by_key
//! [`BoundExpr`]: inverda_storage::BoundExpr

use crate::database::Inverda;
use crate::Result;
use inverda_datalog::eval::EdbView;
use inverda_storage::{BoundExpr, CmpOp, Expr, Key, Relation, Row, TableSchema, Value};
use std::fmt;
use std::sync::Arc;

/// A fluent read query against one `version.table`. Built by
/// [`Inverda::query`]; nothing executes until a terminal method
/// ([`rows`](Query::rows), [`collect`](Query::collect),
/// [`count`](Query::count), [`exists`](Query::exists), …) runs it.
#[derive(Clone)]
pub struct Query<'a> {
    db: &'a Inverda,
    version: String,
    table: String,
    filter: Option<Expr>,
    projection: Option<Vec<String>>,
    order_by: Option<(String, bool)>,
    limit: Option<usize>,
    key: Option<Key>,
}

/// How an executed plan fetched its candidate rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Point lookup pushed through the defining mappings by key.
    KeySeek,
    /// Index probe (`column <op> literal`) over a warm or physical snapshot.
    IndexProbe {
        /// Probed column.
        column: String,
        /// SQL spelling of the comparison.
        op: &'static str,
    },
    /// Cold virtual relation: equality seed pushed through the γ mappings
    /// by column-seeded evaluation (no materialization).
    SeededPushdown {
        /// Seeded column.
        column: String,
    },
    /// Scan of the resolved relation with residual filtering.
    Scan,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::KeySeek => write!(f, "key-seek"),
            AccessPath::IndexProbe { column, op } => write!(f, "index-probe({column} {op} …)"),
            AccessPath::SeededPushdown { column } => write!(f, "seeded-pushdown({column} = …)"),
            AccessPath::Scan => write!(f, "scan"),
        }
    }
}

/// The logical plan an executed [`Query`] chose (diagnostics and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Version-independent relation the query reads.
    pub relation: String,
    /// Access path taken (reflects the warm/cold state at execution time).
    pub access: AccessPath,
    /// Whether a residual predicate ran per candidate row.
    pub filtered: bool,
    /// Output column names (after projection).
    pub columns: Vec<String>,
    /// Ordering column and direction (`true` = descending), if any.
    pub order_by: Option<(String, bool)>,
    /// Row limit, if any.
    pub limit: Option<usize>,
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} via {}{}",
            self.relation,
            self.access,
            if self.filtered {
                " + residual filter"
            } else {
                ""
            }
        )?;
        if let Some((col, desc)) = &self.order_by {
            write!(f, " order by {col}{}", if *desc { " desc" } else { "" })?;
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        write!(f, " -> [{}]", self.columns.join(", "))
    }
}

/// Selected rows before projection: either a whole shared snapshot, a key
/// list over a shared snapshot, or owned tuples (cold seeded results).
enum Selected {
    /// The entire relation qualifies (no filter/order/limit).
    All(Arc<Relation>),
    /// Selected keys (already ordered and limited) over a shared snapshot.
    Keyed(Arc<Relation>, Vec<Key>),
    /// Owned tuples (already ordered and limited).
    Owned(Vec<(Key, Row)>),
}

impl Selected {
    fn len(&self) -> usize {
        match self {
            Selected::All(rel) => rel.len(),
            Selected::Keyed(_, keys) => keys.len(),
            Selected::Owned(rows) => rows.len(),
        }
    }
}

/// The result of running a query's selection phase. Plan *display* state
/// ([`QueryPlan`]) is assembled lazily by [`Exec::plan`] — `get`, `count`,
/// and `exists` never pay for the column-name clones it carries.
struct Exec {
    /// Version-independent relation the query read.
    relation: String,
    /// Access path taken.
    access: AccessPath,
    /// Whether a residual predicate ran per candidate row.
    filtered: bool,
    /// Source column names (pre-projection).
    columns: Vec<String>,
    /// Projection as source column positions, if any.
    proj: Option<Vec<usize>>,
    rows: Selected,
}

/// Streaming iterator over a query's result rows, yielding `(Key, Row)`
/// with the projection applied lazily: rows backed by a shared snapshot are
/// cloned one at a time as the iterator advances, never all at once.
pub struct RowIter {
    inner: RowIterInner,
    columns: Vec<String>,
}

enum RowIterInner {
    Shared {
        rel: Arc<Relation>,
        keys: std::vec::IntoIter<Key>,
        proj: Option<Vec<usize>>,
    },
    Owned {
        rows: std::vec::IntoIter<(Key, Row)>,
        proj: Option<Vec<usize>>,
    },
}

fn project_row(row: &[Value], proj: Option<&[usize]>) -> Row {
    match proj {
        Some(idxs) => idxs.iter().map(|&i| row[i].clone()).collect(),
        None => row.to_vec(),
    }
}

impl RowIter {
    /// Output column names (post-projection).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }
}

impl Iterator for RowIter {
    type Item = (Key, Row);

    fn next(&mut self) -> Option<(Key, Row)> {
        match &mut self.inner {
            RowIterInner::Shared { rel, keys, proj } => {
                for key in keys.by_ref() {
                    if let Some(row) = rel.get(key) {
                        return Some((key, project_row(row, proj.as_deref())));
                    }
                }
                None
            }
            RowIterInner::Owned { rows, proj } => rows
                .next()
                .map(|(key, row)| (key, project_row(&row, proj.as_deref()))),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.inner {
            RowIterInner::Shared { keys, .. } => keys.len(),
            RowIterInner::Owned { rows, .. } => rows.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowIter {}

/// One conjunct of the filter that an index can answer: `column <op> lit`.
#[derive(Clone)]
struct PushedPred {
    column: usize,
    op: CmpOp,
    value: Value,
}

/// Flatten an `AND` tree into conjuncts.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Recognize `column <op> literal` (either side), normalized so the column
/// is on the left. `NULL` literals stay residual: the pushed conjunct only
/// prunes, and keeping ω comparisons out of the probe sidesteps their
/// `IS [NOT] DISTINCT FROM` corner entirely.
fn pushable_conjunct(expr: &Expr, columns: &[String]) -> Option<(usize, CmpOp, Value)> {
    let flip = |op: CmpOp| match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    };
    let Expr::Cmp(a, op, b) = expr else {
        return None;
    };
    let (col, op, lit) = match (a.as_ref(), b.as_ref()) {
        (Expr::Column(c), Expr::Lit(v)) => (c, *op, v),
        (Expr::Lit(v), Expr::Column(c)) => (c, flip(*op), v),
        _ => return None,
    };
    if lit.is_null()
        || !matches!(
            op,
            CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge
        )
    {
        return None;
    }
    let idx = columns.iter().position(|name| name == col)?;
    Some((idx, op, lit.clone()))
}

impl<'a> Query<'a> {
    pub(crate) fn new(db: &'a Inverda, version: &str, table: &str) -> Self {
        Query {
            db,
            version: version.to_string(),
            table: table.to_string(),
            filter: None,
            projection: None,
            order_by: None,
            limit: None,
            key: None,
        }
    }

    /// Add a predicate; multiple calls conjoin (`AND`).
    pub fn filter(mut self, expr: Expr) -> Self {
        self.filter = Some(match self.filter.take() {
            Some(existing) => existing.and(expr),
            None => expr,
        });
        self
    }

    /// Project the output to the named columns, in the given order
    /// (duplicate names are rejected when the query executes).
    pub fn project<S: Into<String>>(mut self, columns: impl IntoIterator<Item = S>) -> Self {
        self.projection = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// Order by a column, ascending (ties break by key; the default order
    /// is ascending key).
    pub fn order_by(mut self, column: impl Into<String>) -> Self {
        self.order_by = Some((column.into(), false));
        self
    }

    /// Order by a column, descending (ties break by ascending key).
    pub fn order_by_desc(mut self, column: impl Into<String>) -> Self {
        self.order_by = Some((column.into(), true));
        self
    }

    /// Keep at most `n` rows (applied after ordering; without an ordering,
    /// selection stops early once `n` rows qualified).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Restrict to the row with this InVerDa identifier — the key-seeded
    /// fast path of [`Inverda::get`].
    pub fn with_key(mut self, key: Key) -> Self {
        self.key = Some(key);
        self
    }

    // ---- terminal operations ----------------------------------------------

    /// Stream the matching rows.
    pub fn rows(&self) -> Result<RowIter> {
        let exec = self.run(self.limit)?;
        let columns = exec.output_columns();
        let inner = match exec.rows {
            Selected::All(rel) => {
                let keys: Vec<Key> = rel.keys().collect();
                RowIterInner::Shared {
                    rel,
                    keys: keys.into_iter(),
                    proj: exec.proj,
                }
            }
            Selected::Keyed(rel, keys) => RowIterInner::Shared {
                rel,
                keys: keys.into_iter(),
                proj: exec.proj,
            },
            Selected::Owned(rows) => RowIterInner::Owned {
                rows: rows.into_iter(),
                proj: exec.proj,
            },
        };
        Ok(RowIter { inner, columns })
    }

    /// Materialize the result as a relation named after the table, with the
    /// projected columns.
    pub fn collect(&self) -> Result<Relation> {
        let exec = self.run(self.limit)?;
        let columns = exec.output_columns();
        let schema =
            TableSchema::new(self.table.clone(), columns).map_err(crate::CoreError::from)?;
        let mut out = Relation::new(schema);
        let proj = exec.proj.as_deref();
        match &exec.rows {
            Selected::All(rel) => {
                for (key, row) in rel.iter() {
                    out.upsert(key, project_row(row, proj))
                        .map_err(crate::CoreError::from)?;
                }
            }
            Selected::Keyed(rel, keys) => {
                // Dense ascending selections (a scan or an unselective probe
                // kept most rows, no ORDER BY re-sort) materialize by merging
                // against one in-order walk of the relation; per-key tree
                // probes only pay off when the selection is sparse. Both
                // shapes live in [`Relation::select_rows`].
                let mut first_err: Option<crate::CoreError> = None;
                rel.select_rows(keys, |key, row| {
                    if first_err.is_some() {
                        return;
                    }
                    if let Err(e) = out.upsert(key, project_row(row, proj)) {
                        first_err = Some(crate::CoreError::from(e));
                    }
                });
                if let Some(e) = first_err {
                    return Err(e);
                }
            }
            Selected::Owned(rows) => {
                for (key, row) in rows {
                    out.upsert(*key, project_row(row, proj))
                        .map_err(crate::CoreError::from)?;
                }
            }
        }
        Ok(out)
    }

    /// The result as a shared relation: a query with no filter, projection,
    /// ordering, or limit hands back the resolved snapshot itself (O(1), the
    /// [`Inverda::scan`] path); anything narrower materializes the selection.
    pub fn collect_shared(&self) -> Result<Arc<Relation>> {
        let exec = self.run(self.limit)?;
        if let (Selected::All(rel), None) = (&exec.rows, &exec.proj) {
            return Ok(Arc::clone(rel));
        }
        self.collect().map(Arc::new)
    }

    /// The single matching row of a [`with_key`](Query::with_key) query (or
    /// the first row in result order otherwise), projected.
    pub fn row(&self) -> Result<Option<Row>> {
        let exec = self.run(Some(self.limit.unwrap_or(1).min(1)))?;
        let proj = exec.proj.as_deref();
        Ok(match exec.rows {
            Selected::All(rel) => rel.iter().next().map(|(_, row)| project_row(row, proj)),
            Selected::Keyed(rel, keys) => keys
                .first()
                .and_then(|&k| rel.get(k))
                .map(|row| project_row(row, proj)),
            Selected::Owned(rows) => rows.first().map(|(_, row)| project_row(row, proj)),
        })
    }

    /// Number of matching rows. Never clones a row: a warm unfiltered count
    /// is O(1) off the snapshot, a filtered one counts selected keys.
    pub fn count(&self) -> Result<usize> {
        Ok(self.run(self.limit)?.rows.len())
    }

    /// Whether any row matches (selection stops at the first hit).
    pub fn exists(&self) -> Result<bool> {
        Ok(self.run(Some(1))?.rows.len() > 0)
    }

    /// The plan the query would execute **right now** (access paths reflect
    /// the current warm/cold state; running the query is how the plan is
    /// decided, so this performs the selection).
    pub fn plan(&self) -> Result<QueryPlan> {
        Ok(self
            .run(self.limit)?
            .plan(self.order_by.clone(), self.limit))
    }

    /// Human-readable form of [`plan`](Query::plan).
    pub fn explain(&self) -> Result<String> {
        Ok(self.plan()?.to_string())
    }

    // ---- execution --------------------------------------------------------

    /// Resolve, plan, and select. `limit` is the effective row cap (terminal
    /// ops may tighten it, e.g. `exists` caps at 1).
    fn run(&self, limit: Option<usize>) -> Result<Exec> {
        let state = self.db.state.read();
        let tv = state.genealogy.resolve(&self.version, &self.table)?;
        let tvd = state.genealogy.table_version(tv);
        let relation = tvd.rel.clone();
        let columns = tvd.columns.clone();

        // Bind everything against the schema up front: unknown filter /
        // projection / ordering columns error before any data is touched.
        let bound = self
            .filter
            .as_ref()
            .map(|e| BoundExpr::bind(e, &self.table, &columns))
            .transpose()
            .map_err(crate::CoreError::from)?;
        let proj = self
            .projection
            .as_ref()
            .map(|cols| {
                // Reject duplicates here so every terminal agrees (collect()
                // would otherwise hit the schema's duplicate-column check
                // while rows()/count() sailed through).
                for (i, c) in cols.iter().enumerate() {
                    if cols[..i].contains(c) {
                        return Err(inverda_storage::StorageError::DuplicateColumn {
                            table: self.table.clone(),
                            column: c.clone(),
                        });
                    }
                }
                cols.iter()
                    .map(|c| inverda_storage::resolve_column(&self.table, &columns, c))
                    .collect::<std::result::Result<Vec<usize>, _>>()
            })
            .transpose()
            .map_err(crate::CoreError::from)?;
        let order = self
            .order_by
            .as_ref()
            .map(|(c, desc)| {
                inverda_storage::resolve_column(&self.table, &columns, c).map(|i| (i, *desc))
            })
            .transpose()
            .map_err(crate::CoreError::from)?;

        let ids = self.db.id_source();
        let edb = self.db.edb(&state, &ids);

        let (access, rows) =
            self.select(&edb, &relation, &columns, bound.as_ref(), order, limit)?;
        Ok(Exec {
            relation,
            access,
            filtered: bound.is_some(),
            columns,
            proj,
            rows,
        })
    }

    /// The selection phase: pick an access path, collect qualifying rows,
    /// order, and limit.
    fn select(
        &self,
        edb: &crate::edb::VersionedEdb<'_>,
        relation: &str,
        columns: &[String],
        bound: Option<&BoundExpr>,
        order: Option<(usize, bool)>,
        limit: Option<usize>,
    ) -> Result<(AccessPath, Selected)> {
        // Key path: the point lookup the delta engine and `get` use.
        if let Some(key) = self.key {
            let mut rows = Vec::new();
            if let Some(row) = edb.by_key(relation, key).map_err(crate::CoreError::from)? {
                if match bound {
                    Some(pred) => pred.matches(&row).map_err(crate::CoreError::from)?,
                    None => true,
                } {
                    rows.push((key, row));
                }
            }
            let rows = order_and_limit_owned(rows, order, limit);
            return Ok((AccessPath::KeySeek, Selected::Owned(rows)));
        }

        // Prefer an equality conjunct: it is the only shape the cold seeded
        // path can push, and warm it is an O(1) hash probe where a range
        // probe costs O(distinct values).
        let pushed: Option<PushedPred> = self.filter.as_ref().and_then(|f| {
            let candidates: Vec<PushedPred> = conjuncts(f)
                .into_iter()
                .filter_map(|c| pushable_conjunct(c, columns))
                .map(|(column, op, value)| PushedPred { column, op, value })
                .collect();
            candidates
                .iter()
                .find(|p| matches!(p.op, CmpOp::Eq))
                .or_else(|| candidates.first())
                .cloned()
        });

        // Warm / physical: index-backed selection over the snapshot.
        if let Some(rel) = edb
            .peek_resolved(relation)
            .map_err(crate::CoreError::from)?
        {
            return self.select_from_snapshot(edb, relation, rel, bound, pushed, order, limit);
        }

        // Cold virtual + equality seed + pushable resolution: seeded
        // evaluation streams only matching rows out of the mapping chain.
        if let Some(p) = &pushed {
            if matches!(p.op, CmpOp::Eq) && edb.pushable_cold(relation) {
                let candidates = edb
                    .by_column(relation, p.column, &p.value)
                    .map_err(crate::CoreError::from)?;
                let mut rows = Vec::new();
                let early = order.is_none().then_some(limit).flatten();
                for (key, row) in candidates {
                    if match bound {
                        Some(pred) => pred.matches(&row).map_err(crate::CoreError::from)?,
                        None => true,
                    } {
                        rows.push((key, row));
                        if early.is_some_and(|n| rows.len() >= n) {
                            break;
                        }
                    }
                }
                let rows = order_and_limit_owned(rows, order, limit);
                return Ok((
                    AccessPath::SeededPushdown {
                        column: columns[p.column].clone(),
                    },
                    Selected::Owned(rows),
                ));
            }
        }

        // Cold fallback: resolve fully (canonical order), then scan. No
        // index is built for a one-shot cold query — the resolution itself
        // already cost O(data), and the snapshot store keeps the resolved
        // relation (and any later index) warm for the next one.
        let rel = edb.full(relation).map_err(crate::CoreError::from)?;
        self.select_from_snapshot(edb, relation, rel, bound, None, order, limit)
    }

    /// Selection over an at-hand snapshot: index probe for a pushed
    /// conjunct, scan otherwise; residual filter per candidate; order and
    /// limit applied on the selected keys (no row is cloned here).
    #[allow(clippy::too_many_arguments)]
    fn select_from_snapshot(
        &self,
        edb: &crate::edb::VersionedEdb<'_>,
        relation: &str,
        rel: Arc<Relation>,
        bound: Option<&BoundExpr>,
        pushed: Option<PushedPred>,
        order: Option<(usize, bool)>,
        limit: Option<usize>,
    ) -> Result<(AccessPath, Selected)> {
        let Some(pred) = bound else {
            // Unfiltered: the snapshot itself is the result; ordering or a
            // limit only narrows the key list. With no ordering the first
            // `limit` keys suffice — `exists` on a warm relation never
            // enumerates it.
            if order.is_none() && limit.is_none() {
                return Ok((AccessPath::Scan, Selected::All(rel)));
            }
            let keys: Vec<Key> = match (order, limit) {
                (None, Some(n)) => rel.keys().take(n).collect(),
                _ => rel.keys().collect(),
            };
            let keys = order_and_limit_keys(&rel, keys, order, limit);
            return Ok((AccessPath::Scan, Selected::Keyed(rel, keys)));
        };
        let candidates: Option<(AccessPath, Vec<Key>)> = match pushed {
            Some(p) if p.column < rel.schema().arity() && matches!(p.op, CmpOp::Eq) => {
                // Equality: an O(1) hash probe after the (amortized,
                // store-cached) index build — always worth it.
                let index = edb
                    .index(relation, p.column)
                    .map_err(crate::CoreError::from)?;
                Some((
                    AccessPath::IndexProbe {
                        column: rel.schema().columns[p.column].clone(),
                        op: p.op.sql(),
                    },
                    index.keys_for(&p.value).to_vec(),
                ))
            }
            Some(p) if p.column < rel.schema().arity() => {
                // Range: the probe walks every distinct value and sorts the
                // matches, so it only beats a scan when an index is already
                // at hand (never build one for a range) *and* the candidate
                // set is selective. Past half the relation, enumerating and
                // sorting the matches costs more than the in-key-order scan
                // it replaces — fall back. Both paths yield ascending-key
                // candidates rechecked against the full predicate, so the
                // selected rows are byte-identical either way.
                edb.cached_index(relation, p.column)
                    .and_then(|index| {
                        (index.count_where(p.op, &p.value) <= rel.len() / 2)
                            .then(|| index.keys_where(p.op, &p.value))
                    })
                    .map(|keys| {
                        (
                            AccessPath::IndexProbe {
                                column: rel.schema().columns[p.column].clone(),
                                op: p.op.sql(),
                            },
                            keys,
                        )
                    })
            }
            _ => None,
        };
        let early = order.is_none().then_some(limit).flatten();
        let mut selected = Vec::new();
        let access = match candidates {
            Some((access, candidates)) => {
                for key in candidates {
                    let Some(row) = rel.get(key) else { continue };
                    if pred.matches(row).map_err(crate::CoreError::from)? {
                        selected.push(key);
                        if early.is_some_and(|n| selected.len() >= n) {
                            break;
                        }
                    }
                }
                access
            }
            None => {
                // Scan: walk the rows in place (ascending key order, same as
                // the probe paths) instead of collecting keys and re-probing
                // the map per key.
                for (key, row) in rel.iter() {
                    if pred.matches(row).map_err(crate::CoreError::from)? {
                        selected.push(key);
                        if early.is_some_and(|n| selected.len() >= n) {
                            break;
                        }
                    }
                }
                AccessPath::Scan
            }
        };
        let selected = order_and_limit_keys(&rel, selected, order, limit);
        Ok((access, Selected::Keyed(rel, selected)))
    }
}

impl Exec {
    fn output_columns(&self) -> Vec<String> {
        match &self.proj {
            Some(idxs) => idxs.iter().map(|&i| self.columns[i].clone()).collect(),
            None => self.columns.clone(),
        }
    }

    /// Assemble the displayable plan (allocates; only `plan`/`explain` ask).
    fn plan(self, order_by: Option<(String, bool)>, limit: Option<usize>) -> QueryPlan {
        QueryPlan {
            columns: self.output_columns(),
            relation: self.relation,
            access: self.access,
            filtered: self.filtered,
            order_by,
            limit,
        }
    }
}

/// Order selected keys by a column value (ties by ascending key; `None`
/// keeps ascending key order) and truncate to the limit.
fn order_and_limit_keys(
    rel: &Relation,
    mut keys: Vec<Key>,
    order: Option<(usize, bool)>,
    limit: Option<usize>,
) -> Vec<Key> {
    if let Some((col, desc)) = order {
        // Decorate once instead of two tree lookups per comparison.
        let mut decorated: Vec<(Option<&Value>, Key)> = keys
            .iter()
            .map(|&k| (rel.get(k).and_then(|r| r.get(col)), k))
            .collect();
        decorated.sort_by(|(va, ka), (vb, kb)| {
            let ord = va.cmp(vb);
            let ord = if desc { ord.reverse() } else { ord };
            ord.then(ka.cmp(kb))
        });
        keys = decorated.into_iter().map(|(_, k)| k).collect();
    }
    if let Some(n) = limit {
        keys.truncate(n);
    }
    keys
}

/// [`order_and_limit_keys`] for owned tuples.
fn order_and_limit_owned(
    mut rows: Vec<(Key, Row)>,
    order: Option<(usize, bool)>,
    limit: Option<usize>,
) -> Vec<(Key, Row)> {
    if let Some((col, desc)) = order {
        rows.sort_by(|(ka, ra), (kb, rb)| {
            let ord = ra.get(col).cmp(&rb.get(col));
            let ord = if desc { ord.reverse() } else { ord };
            ord.then(ka.cmp(kb))
        });
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasky_db() -> Inverda {
        let db = Inverda::new();
        db.execute(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1;",
        )
        .unwrap();
        for i in 0..12 {
            db.insert(
                "TasKy",
                "Task",
                vec![
                    Value::text(format!("author{}", i % 4)),
                    Value::text(format!("task {i}")),
                    Value::Int(i % 3 + 1),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn filter_project_limit_roundtrip() {
        let db = tasky_db();
        let rows: Vec<_> = db
            .query("TasKy", "Task")
            .filter(Expr::col("author").eq(Expr::lit("author1")))
            .project(["task", "prio"])
            .rows()
            .unwrap()
            .collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, row)| row.len() == 2));

        let limited = db
            .query("TasKy", "Task")
            .filter(Expr::col("prio").ge(Expr::lit(2)))
            .limit(3)
            .count()
            .unwrap();
        assert_eq!(limited, 3);
    }

    #[test]
    fn pushdown_equals_scan_filter_on_virtual_version() {
        let db = tasky_db();
        let filter = Expr::col("author").eq(Expr::lit("author2"));
        let pushed = db
            .query("Do!", "Todo")
            .filter(filter.clone())
            .collect()
            .unwrap();
        let scanned = db.scan("Do!", "Todo").unwrap();
        let bound = BoundExpr::bind(&filter, "Todo", &["author".into(), "task".into()]).unwrap();
        let oracle = scanned.filter(|_, row| bound.matches(row).unwrap());
        assert_eq!(pushed.len(), oracle.len());
        for (k, row) in oracle.iter() {
            assert_eq!(pushed.get(k), Some(row));
        }
    }

    #[test]
    fn cold_selective_query_takes_seeded_pushdown() {
        let db = tasky_db();
        db.set_snapshot_reuse(false); // every statement is cold
        let plan = db
            .query("Do!", "Todo")
            .filter(Expr::col("author").eq(Expr::lit("author1")))
            .plan()
            .unwrap();
        assert!(
            matches!(plan.access, AccessPath::SeededPushdown { ref column } if column == "author"),
            "{plan}"
        );
    }

    #[test]
    fn planner_prefers_equality_over_leading_range_conjunct() {
        // `range AND eq` must still take the seeded path cold (only the
        // equality is pushable through the mappings) and the eq hash probe
        // warm.
        let db = tasky_db();
        db.set_snapshot_reuse(false);
        let filter = Expr::col("task")
            .ge(Expr::lit("task"))
            .and(Expr::col("author").eq(Expr::lit("author1")));
        let q = db.query("Do!", "Todo").filter(filter);
        let plan = q.plan().unwrap();
        assert!(
            matches!(plan.access, AccessPath::SeededPushdown { ref column } if column == "author"),
            "{plan}"
        );
        db.set_snapshot_reuse(true);
        db.scan("Do!", "Todo").unwrap();
        let plan = q.plan().unwrap();
        assert!(
            matches!(plan.access, AccessPath::IndexProbe { ref column, op: "=" } if column == "author"),
            "{plan}"
        );
        // One Todo row (prio 1) belongs to author1; the range conjunct
        // (`task >= "task"`) keeps it.
        assert_eq!(q.count().unwrap(), 1);
    }

    #[test]
    fn warm_query_probes_the_index() {
        let db = tasky_db();
        db.scan("Do!", "Todo").unwrap(); // warm the store
        let plan = db
            .query("Do!", "Todo")
            .filter(Expr::col("author").eq(Expr::lit("author1")))
            .plan()
            .unwrap();
        assert!(
            matches!(plan.access, AccessPath::IndexProbe { ref column, op: "=" } if column == "author"),
            "{plan}"
        );
    }

    #[test]
    fn order_by_and_desc() {
        let db = tasky_db();
        let rows: Vec<_> = db
            .query("TasKy", "Task")
            .order_by_desc("prio")
            .limit(4)
            .project(["prio"])
            .rows()
            .unwrap()
            .collect();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|(_, r)| r[0] == Value::Int(3)));
        let asc: Vec<_> = db
            .query("TasKy", "Task")
            .order_by("prio")
            .limit(1)
            .project(["prio"])
            .rows()
            .unwrap()
            .collect();
        assert_eq!(asc[0].1[0], Value::Int(1));
    }

    #[test]
    fn count_exists_and_key_path() {
        let db = tasky_db();
        assert_eq!(db.query("TasKy", "Task").count().unwrap(), 12);
        assert!(db
            .query("TasKy", "Task")
            .filter(Expr::col("author").eq(Expr::lit("author3")))
            .exists()
            .unwrap());
        assert!(!db
            .query("TasKy", "Task")
            .filter(Expr::col("author").eq(Expr::lit("nobody")))
            .exists()
            .unwrap());
        let key = db.scan("TasKy", "Task").unwrap().keys().next().unwrap();
        let direct = db.get("TasKy", "Task", key).unwrap();
        let via_query = db.query("TasKy", "Task").with_key(key).row().unwrap();
        assert_eq!(direct, via_query);
    }

    #[test]
    fn unknown_columns_error_at_plan_time() {
        let db = tasky_db();
        assert!(db
            .query("TasKy", "Task")
            .filter(Expr::col("nope").eq(Expr::lit(1)))
            .count()
            .is_err());
        assert!(db.query("TasKy", "Task").project(["nope"]).rows().is_err());
        // Duplicate projections error on every terminal, not just collect().
        let dup = db.query("TasKy", "Task").project(["task", "task"]);
        assert!(dup.rows().is_err());
        assert!(dup.count().is_err());
        assert!(dup.collect().is_err());
        assert!(db.query("TasKy", "Task").order_by("nope").count().is_err());
        assert!(db.query("Nope", "Task").count().is_err());
    }
}
