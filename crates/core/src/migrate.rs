//! The Database Migration Operation: `MATERIALIZE '…'` (Section 7).
//!
//! A single statement lets the DBA relocate the physical data representation
//! along the schema genealogy. InVerDa computes the new materialization
//! schema, validates it against conditions (55)/(56), computes the complete
//! new physical state (data tables of the new physical table schema `P`,
//! auxiliary tables of every SMO whose materialization state flips) from the
//! *current* state via the γ mappings, then swaps the physical tables in one
//! step. Thanks to bidirectionality every schema version exposes exactly the
//! same logical state before and after — only the propagation distances
//! change. "Not a single line of code is required from the developer."

use crate::compiled::Direction;
use crate::database::Inverda;
use crate::error::CoreError;
use crate::Result;
use inverda_catalog::MaterializationSchema;
use inverda_datalog::eval::{evaluate_compiled, EdbView};
use inverda_storage::Relation;

impl Inverda {
    /// Execute a MATERIALIZE statement. Each target is either a schema
    /// version name (`'TasKy2'` — materialize all its table versions) or a
    /// version-qualified table version (`'TasKy2.Task'`).
    pub fn materialize(&self, targets: &[String]) -> Result<()> {
        let _guard = self.write_lock.lock();
        let mut state = self.state.write();

        // Resolve targets to table versions.
        let mut tvs = Vec::new();
        for target in targets {
            match target.split_once('.') {
                Some((version, table)) => {
                    tvs.push(state.genealogy.resolve(version, table)?);
                }
                None => {
                    let v = state.genealogy.version(target)?;
                    tvs.extend(v.tables.values().copied());
                }
            }
            if target.is_empty() {
                return Err(CoreError::BadMaterializeTarget {
                    target: target.clone(),
                });
            }
        }
        let new_m = MaterializationSchema::for_table_versions(&state.genealogy, &tvs)?;
        let result = self.apply_materialization(&mut state, new_m);
        self.log_registry_residue(&state)?;
        result
    }

    /// Materialize an explicit materialization schema — the paper's
    /// migration command can address *intermediate* table versions of the
    /// evolution history ("InVerDa can also materialize intermediate stages",
    /// Section 8.3); this entry point takes the SMO set directly.
    pub fn materialize_exact(&self, new_m: MaterializationSchema) -> Result<()> {
        let _guard = self.write_lock.lock();
        let mut state = self.state.write();
        new_m.validate(&state.genealogy)?;
        let result = self.apply_materialization(&mut state, new_m);
        self.log_registry_residue(&state)?;
        result
    }

    /// Durability wrapper around the migration procedure. A committed
    /// migration is logged as a `Materialize` record carrying only the
    /// journal residue that *preceded* it plus the pre-migration key
    /// sequence: replay re-runs the procedure live, re-performing the
    /// planning-time mints and registry re-seeding in their original
    /// order, so the procedure's own journal is discarded. A *failed*
    /// migration may still have perturbed the registry mid-planning
    /// (purge/observe re-seeding precedes the failure point); that
    /// perturbation is exactly what the in-memory instance keeps, so it is
    /// logged as a `RegistryOnly` record.
    fn apply_materialization(
        &self,
        state: &mut parking_lot::RwLockWriteGuard<'_, crate::database::State>,
        new_m: MaterializationSchema,
    ) -> Result<()> {
        if new_m == state.materialization {
            return Ok(());
        }
        let durable = self.durability.is_some();
        let (pending, key_seq_before) = if durable {
            (
                self.ids.0.lock().take_journal(),
                self.storage.sequences().current_key(),
            )
        } else {
            (Vec::new(), 0)
        };
        let smos: Vec<u32> = new_m.smos().map(|s| s.0).collect();
        let result = self.apply_materialization_inner(state, new_m);
        if durable {
            match &result {
                Ok(()) => {
                    let _ = self.ids.0.lock().take_journal();
                    self.wal_append(
                        state,
                        crate::durability::Record {
                            reg_ops: pending,
                            key_seq: key_seq_before,
                            body: crate::durability::RecordBody::Materialize(smos),
                        },
                    )?;
                }
                Err(_) => {
                    let mut reg_ops = pending;
                    reg_ops.extend(self.ids.0.lock().take_journal());
                    if !reg_ops.is_empty() {
                        let key_seq = self.storage.sequences().current_key();
                        self.wal_append(
                            state,
                            crate::durability::Record {
                                reg_ops,
                                key_seq,
                                body: crate::durability::RecordBody::RegistryOnly,
                            },
                        )?;
                    }
                }
            }
        }
        result
    }

    fn apply_materialization_inner(
        &self,
        state: &mut parking_lot::RwLockWriteGuard<'_, crate::database::State>,
        new_m: MaterializationSchema,
    ) -> Result<()> {
        // ---- Plan the new physical state under the *current* mappings.
        let mut creates: Vec<Relation> = Vec::new();
        let mut replaces: Vec<Relation> = Vec::new();
        let mut drops: Vec<String> = Vec::new();
        {
            let g = &state.genealogy;
            let cur = &state.materialization;
            let ids = self.id_source();
            // Planning reads the *current* state: warm snapshots are valid
            // until the swap below (which clears the store).
            let edb = self.edb(state, &ids);

            let old_p: std::collections::BTreeSet<_> = cur.physical_tables(g).into_iter().collect();
            let new_p: std::collections::BTreeSet<_> =
                new_m.physical_tables(g).into_iter().collect();

            // Data tables entering / leaving P.
            for tv in new_p.difference(&old_p) {
                let t = g.table_version(*tv);
                let rel = edb.full(&t.rel).map_err(CoreError::from)?;
                creates.push((*rel).clone());
            }
            for tv in old_p.difference(&new_p) {
                drops.push(g.table_version(*tv).rel.clone());
            }

            // Auxiliary tables of SMOs whose state flips.
            for smo in g.smos().filter(|s| s.moves_data()) {
                let was = cur.is_materialized(g, smo.id);
                let will = new_m.is_materialized(g, smo.id);
                if was == will {
                    continue;
                }
                let (direction, rules) = if will {
                    (Direction::ToTgt, &smo.derived.to_tgt)
                } else {
                    (Direction::ToSrc, &smo.derived.to_src)
                };
                let crs = self
                    .compiled
                    .get_or_compile(smo.id, direction, rules)
                    .map_err(CoreError::from)?;
                let heads = evaluate_compiled(&crs, &edb, &ids, edb.head_columns())
                    .map_err(CoreError::from)?;
                let (new_aux, old_aux) = if will {
                    (&smo.derived.tgt_aux, &smo.derived.src_aux)
                } else {
                    (&smo.derived.src_aux, &smo.derived.tgt_aux)
                };
                for aux in new_aux {
                    let contents = heads.get(&aux.rel).cloned().unwrap_or_else(|| {
                        Relation::new(
                            inverda_storage::TableSchema::new(aux.rel.clone(), aux.columns.clone())
                                .expect("valid aux schema"),
                        )
                    });
                    creates.push(contents);
                }
                for aux in old_aux {
                    drops.push(aux.rel.clone());
                }
                for shared in &smo.derived.shared_aux {
                    if let Some(contents) = heads.get(&shared.new_name) {
                        let mut renamed = contents.clone();
                        renamed = renamed.renamed(shared.table.rel.clone());
                        replaces.push(renamed);
                    }
                }
                // Re-seed the skolem registry from the relocated state:
                // stale assignments are purged so payloads absent from the
                // new physical tables mint fresh ids rather than colliding
                // with repurposed ones.
                for hint in &smo.derived.observe_hints {
                    if let Ok(rel) = edb.full(&hint.relation) {
                        let mut reg = self.ids.0.lock();
                        reg.purge_generator(&hint.generator);
                        for (key, row) in rel.iter() {
                            reg.observe(&hint.generator, row, key.0);
                        }
                    }
                }
            }
        }

        // ---- Execute the swap.
        for rel in creates {
            self.storage.create_table_with(rel)?;
        }
        for rel in replaces {
            self.storage.replace_table(rel)?;
        }
        for rel in drops {
            if self.storage.has_table(&rel) {
                self.storage.drop_table(&rel)?;
            }
        }
        state.materialization = new_m;
        // The physical/virtual split changed: every defining rule set and
        // static footprint may differ, so resolved snapshots are retired
        // wholesale (mirroring the compiled-rule cache on genealogy change),
        // and so is every fused γ-chain — its hop structure follows the
        // storage cases. The per-SMO compilations stay valid: MATERIALIZE
        // does not touch the rule sets themselves. Both invalidations are
        // branch-scoped: `self.snapshots` and `self.compiled` belong to
        // this engine alone (branch forks get independent copies, see
        // `Inverda::fork_detached`), so a MATERIALIZE here cannot
        // cold-start a sibling branch's caches.
        self.snapshots.clear();
        self.compiled.clear_fused();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::Value;

    fn tasky_full() -> Inverda {
        let db = Inverda::new();
        db.execute(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1; \
             CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
               DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
               RENAME COLUMN author IN Author TO name;",
        )
        .unwrap();
        db.insert_many(
            "TasKy",
            "Task",
            vec![
                vec!["Ann".into(), "Organize party".into(), 3.into()],
                vec!["Ben".into(), "Learn for exam".into(), 2.into()],
                vec!["Ann".into(), "Write paper".into(), 1.into()],
                vec!["Ben".into(), "Clean room".into(), 1.into()],
            ],
        )
        .unwrap();
        db
    }

    /// All versions' visible states as a comparable string.
    fn snapshot(db: &Inverda) -> String {
        let mut out = String::new();
        for (v, t) in [
            ("TasKy", "Task"),
            ("Do!", "Todo"),
            ("TasKy2", "Task"),
            ("TasKy2", "Author"),
        ] {
            out.push_str(&format!("{v}.{t}:\n{}", db.scan(v, t).unwrap()));
        }
        out
    }

    #[test]
    fn materialize_tasky2_preserves_all_versions() {
        let db = tasky_full();
        let before = snapshot(&db);
        db.execute("MATERIALIZE 'TasKy2';").unwrap();
        assert_eq!(db.storage_case("TasKy2", "Task").unwrap(), "local");
        assert_eq!(db.storage_case("TasKy", "Task").unwrap(), "forward");
        assert_eq!(snapshot(&db), before);
        // And back to the initial representation.
        db.execute("MATERIALIZE 'TasKy';").unwrap();
        assert_eq!(db.storage_case("TasKy", "Task").unwrap(), "local");
        assert_eq!(snapshot(&db), before);
    }

    #[test]
    fn materialize_do_keeps_non_matching_tasks() {
        let db = tasky_full();
        let before = snapshot(&db);
        db.execute("MATERIALIZE 'Do!';").unwrap();
        assert_eq!(db.storage_case("Do!", "Todo").unwrap(), "local");
        // The prio>1 tasks survive in T' auxiliaries.
        assert_eq!(snapshot(&db), before);
        assert_eq!(db.count("TasKy", "Task").unwrap(), 4);
    }

    #[test]
    fn writes_work_the_same_after_migration() {
        let db = tasky_full();
        db.execute("MATERIALIZE 'TasKy2';").unwrap();
        // Write through the now-remote TasKy version.
        let k = db
            .insert("TasKy", "Task", vec!["Eve".into(), "New".into(), 1.into()])
            .unwrap();
        assert!(db.scan("Do!", "Todo").unwrap().contains_key(k));
        assert!(db.scan("TasKy2", "Task").unwrap().contains_key(k));
        // Author Eve was created in the physical Author table.
        let authors = db.scan("TasKy2", "Author").unwrap();
        assert!(authors.iter().any(|(_, row)| row[0] == Value::text("Eve")));
        // Delete through Do! and verify everywhere.
        db.delete("Do!", "Todo", k).unwrap();
        assert!(db.get("TasKy", "Task", k).unwrap().is_none());
        assert!(db.get("TasKy2", "Task", k).unwrap().is_none());
    }

    #[test]
    fn migrate_to_each_valid_materialization_and_back() {
        // Table 2: five valid materialization schemas; each must preserve
        // the visible state of every version.
        let db = tasky_full();
        let before = snapshot(&db);
        for target in ["TasKy", "Do!", "TasKy", "TasKy2", "TasKy"] {
            db.materialize(&[target.to_string()]).unwrap();
            assert_eq!(snapshot(&db), before, "after MATERIALIZE '{target}'");
        }
    }

    #[test]
    fn materialize_single_table_version() {
        let db = tasky_full();
        db.execute("MATERIALIZE 'TasKy2.Task', 'TasKy2.Author';")
            .unwrap();
        assert_eq!(db.storage_case("TasKy2", "Task").unwrap(), "local");
        assert_eq!(db.storage_case("TasKy2", "Author").unwrap(), "local");
    }

    #[test]
    fn separated_twin_survives_materialization_of_split() {
        // Build a two-arm split with overlapping conditions, separate the
        // twins, then flip the materialization back and forth.
        let db = Inverda::new();
        db.execute(
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
             CREATE SCHEMA VERSION V2 FROM V1 WITH \
               SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;",
        )
        .unwrap();
        let k = db.insert("V1", "T", vec![4.into(), "twin".into()]).unwrap();
        // Both partitions see the tuple (overlap).
        assert!(db.scan("V2", "R").unwrap().contains_key(k));
        assert!(db.scan("V2", "S").unwrap().contains_key(k));
        // Separate the twins by updating S only.
        db.update("V2", "S", k, vec![4.into(), "separated".into()])
            .unwrap();
        assert_eq!(
            db.get("V2", "R", k).unwrap().unwrap()[1],
            Value::text("twin")
        );
        assert_eq!(
            db.get("V2", "S", k).unwrap().unwrap()[1],
            Value::text("separated")
        );
        // T shows the primus inter pares (R).
        assert_eq!(
            db.get("V1", "T", k).unwrap().unwrap()[1],
            Value::text("twin")
        );
        // Flip materialization: twins must stay separated.
        db.execute("MATERIALIZE 'V2';").unwrap();
        assert_eq!(
            db.get("V2", "S", k).unwrap().unwrap()[1],
            Value::text("separated")
        );
        db.execute("MATERIALIZE 'V1';").unwrap();
        assert_eq!(
            db.get("V2", "S", k).unwrap().unwrap()[1],
            Value::text("separated")
        );
        assert_eq!(
            db.get("V2", "R", k).unwrap().unwrap()[1],
            Value::text("twin")
        );
    }
}
