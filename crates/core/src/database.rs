//! The [`Inverda`] database facade.

use crate::compiled::CompiledStore;
use crate::edb::VersionedEdb;
use crate::snapshot::{SnapshotStats, SnapshotStore};
use crate::Result;
use inverda_bidel::{parse_script, Smo, Statement};
use inverda_catalog::{Genealogy, MaterializationSchema, StorageCase};
use inverda_datalog::eval::IdSource;
use inverda_datalog::SkolemRegistry;
use inverda_storage::{Key, Relation, Row, Storage, TableSchema, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How logical writes are propagated to physical storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePath {
    /// Mechanically derived update-propagation rules — minimal writes
    /// (the paper's generated triggers; Section 6).
    #[default]
    Delta,
    /// Reference implementation: recompute both full side states per SMO
    /// hop and diff. Exact but `O(data)` per write; used for the ablation
    /// benchmark and as the oracle in equivalence tests.
    Recompute,
}

/// Mutable catalog state guarded by the database's lock.
pub struct State {
    /// The genealogy hypergraph.
    pub genealogy: Genealogy,
    /// Current materialization schema.
    pub materialization: MaterializationSchema,
    /// Current write path.
    pub write_path: WritePath,
}

/// Shared skolem-id registry (usable from read paths). Fresh identifiers
/// are minted from the storage engine's global key sequence so generated
/// ids never collide with tuple identifiers — the id-generating SMOs key
/// rows by them (Appendix B.3, Rules 149/152).
pub struct SharedIds(pub Mutex<SkolemRegistry>);

/// Per-call [`IdSource`] adapter binding the registry to the key sequence.
pub struct IdMinter<'a> {
    registry: &'a Mutex<SkolemRegistry>,
    sequences: &'a inverda_storage::SequenceSet,
}

impl IdSource for IdMinter<'_> {
    fn generate(&self, generator: &str, args: &[Value]) -> u64 {
        self.registry
            .lock()
            .get_or_create_with(generator, args, || self.sequences.next_key().0)
    }

    fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.registry.lock().peek(generator, args)
    }
}

/// Outcome of executing a BiDEL script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionOutcome {
    /// Names of schema versions created.
    pub created_versions: Vec<String>,
    /// Names of schema versions dropped.
    pub dropped_versions: Vec<String>,
    /// Number of MATERIALIZE statements executed.
    pub migrations: usize,
}

/// An InVerDa database: one data set, many co-existing schema versions.
pub struct Inverda {
    pub(crate) storage: Storage,
    pub(crate) state: RwLock<State>,
    pub(crate) ids: SharedIds,
    /// Serializes logical writes and migrations.
    pub(crate) write_lock: Mutex<()>,
    /// Compiled SMO rule sets, reused across statements and invalidated on
    /// genealogy changes.
    pub(crate) compiled: CompiledStore,
    /// Cross-statement resolved-relation snapshots, delta-maintained by the
    /// write path and invalidated by physical-table epochs.
    pub(crate) snapshots: SnapshotStore,
    /// Whether reads/writes use the snapshot store (ablation control).
    snapshot_reuse: AtomicBool,
}

impl Default for Inverda {
    fn default() -> Self {
        Inverda::new()
    }
}

impl Inverda {
    /// The id source bound to this database's key sequence.
    pub(crate) fn id_source(&self) -> IdMinter<'_> {
        IdMinter {
            registry: &self.ids.0,
            sequences: self.storage.sequences(),
        }
    }

    /// The snapshot store, when reuse is enabled.
    pub(crate) fn snapshot_store(&self) -> Option<&SnapshotStore> {
        if self.snapshot_reuse.load(Ordering::Relaxed) {
            Some(&self.snapshots)
        } else {
            None
        }
    }

    /// A versioned read view over the current catalog state, bound to the
    /// snapshot store when reuse is enabled.
    pub(crate) fn edb<'a>(&'a self, state: &'a State, ids: &'a IdMinter<'a>) -> VersionedEdb<'a> {
        let edb = VersionedEdb::new(
            &state.genealogy,
            &state.materialization,
            &self.storage,
            ids,
            &self.compiled,
        );
        match self.snapshot_store() {
            Some(store) => edb.with_store(store),
            None => edb,
        }
    }

    /// Fresh, empty database.
    pub fn new() -> Self {
        Inverda {
            storage: Storage::new(),
            state: RwLock::new(State {
                genealogy: Genealogy::new(),
                materialization: MaterializationSchema::initial(),
                write_path: WritePath::default(),
            }),
            ids: SharedIds(Mutex::new(SkolemRegistry::new())),
            write_lock: Mutex::new(()),
            compiled: CompiledStore::new(),
            snapshots: SnapshotStore::new(),
            snapshot_reuse: AtomicBool::new(true),
        }
    }

    /// Execute a BiDEL script: `CREATE SCHEMA VERSION … WITH …;`,
    /// `DROP SCHEMA VERSION …;`, `MATERIALIZE '…';`.
    pub fn execute(&self, script: &str) -> Result<ExecutionOutcome> {
        let script = parse_script(script)?;
        let mut outcome = ExecutionOutcome::default();
        for stmt in script.statements {
            match stmt {
                Statement::CreateSchemaVersion { name, from, smos } => {
                    self.create_schema_version(&name, from.as_deref(), &smos)?;
                    outcome.created_versions.push(name);
                }
                Statement::DropSchemaVersion { name } => {
                    self.drop_schema_version(&name)?;
                    outcome.dropped_versions.push(name);
                }
                Statement::Materialize { targets } => {
                    self.materialize(&targets)?;
                    outcome.migrations += 1;
                }
            }
        }
        Ok(outcome)
    }

    /// The paper's **Database Evolution Operation**: register the SMOs in
    /// the catalog and generate delta code. The new version is immediately
    /// readable and writable; no data moves.
    pub fn create_schema_version(
        &self,
        name: &str,
        from: Option<&str>,
        smos: &[Smo],
    ) -> Result<()> {
        let _guard = self.write_lock.lock();
        let mut state = self.state.write();
        let outcome = state.genealogy.create_schema_version(name, from, smos)?;
        // The genealogy changed: retire compiled rule sets of retired SMOs
        // (ids are never reused, but keep the cache tight), and drop every
        // resolved snapshot — defining rule sets and footprints may differ.
        self.compiled.clear();
        self.snapshots.clear();
        // Physical side effects: data tables for CREATE TABLE targets,
        // auxiliary tables for the initially-virtualized new SMOs.
        for smo_id in &outcome.new_smos {
            let inst = state.genealogy.smo(*smo_id);
            if inst.derived.kind == "CREATE TABLE" {
                for tv_id in &inst.targets {
                    let tv = state.genealogy.table_version(*tv_id);
                    self.storage
                        .create_table(TableSchema::new(tv.rel.clone(), tv.columns.clone())?)?;
                }
            }
            if inst.moves_data() {
                // New SMOs start virtualized: source-side aux + shared aux.
                for aux in inst
                    .derived
                    .src_aux
                    .iter()
                    .chain(inst.derived.shared_aux.iter().map(|s| &s.table))
                {
                    self.storage
                        .create_table(TableSchema::new(aux.rel.clone(), aux.columns.clone())?)?;
                }
            }
        }
        Ok(())
    }

    /// Drop a schema version. Data shared with other versions is kept;
    /// physical tables reachable from no remaining version are deleted.
    pub fn drop_schema_version(&self, name: &str) -> Result<()> {
        let _guard = self.write_lock.lock();
        let mut state = self.state.write();
        let orphans = state.genealogy.drop_schema_version(name)?;
        self.compiled.clear();
        self.snapshots.clear();
        for tv in orphans {
            // Orphans may or may not be physical depending on M.
            let rel = {
                // The table version entry may already be gone if a previous
                // drop removed it; resolve defensively.
                state.genealogy.table_version(tv).rel.clone()
            };
            if self.storage.has_table(&rel) {
                self.storage.drop_table(&rel)?;
            }
        }
        Ok(())
    }

    /// Names of all schema versions.
    pub fn versions(&self) -> Vec<String> {
        self.state
            .read()
            .genealogy
            .version_names()
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// Table names of a schema version.
    pub fn tables_of(&self, version: &str) -> Result<Vec<String>> {
        let state = self.state.read();
        Ok(state
            .genealogy
            .version(version)?
            .tables
            .keys()
            .cloned()
            .collect())
    }

    /// Column names of `version.table`.
    pub fn columns_of(&self, version: &str, table: &str) -> Result<Vec<String>> {
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        Ok(state.genealogy.table_version(tv).columns.clone())
    }

    /// Start building a read query against `version.table` — the logical
    /// query layer with predicate/projection/limit pushdown through version
    /// resolution (see [`crate::query`]). Name resolution and column
    /// validation happen when a terminal method executes the query.
    pub fn query(&self, version: &str, table: &str) -> crate::query::Query<'_> {
        crate::query::Query::new(self, version, table)
    }

    /// Read the full state of `version.table` — every schema version acts
    /// like a full-fledged single-schema database, wherever the data lives.
    /// A thin wrapper over the query layer's unrestricted plan, which hands
    /// back the resolved snapshot without copying.
    pub fn scan(&self, version: &str, table: &str) -> Result<Arc<Relation>> {
        self.query(version, table).collect_shared()
    }

    /// Point lookup by tuple identifier — the query layer's key-seek path,
    /// which pushes the key through the defining mappings instead of
    /// materializing the relation.
    pub fn get(&self, version: &str, table: &str, key: Key) -> Result<Option<Row>> {
        self.query(version, table).with_key(key).row()
    }

    /// Number of rows visible in `version.table`, via the query layer: a
    /// warm count is O(1) off the snapshot store and a cold count never
    /// clones rows.
    pub fn count(&self, version: &str, table: &str) -> Result<usize> {
        self.query(version, table).count()
    }

    /// Whether `version.table` has any visible row (O(1) warm; never clones
    /// rows).
    pub fn exists(&self, version: &str, table: &str) -> Result<bool> {
        self.query(version, table).exists()
    }

    /// Switch the write-propagation implementation (ablation control).
    pub fn set_write_path(&self, path: WritePath) {
        self.state.write().write_path = path;
    }

    /// The current write path.
    pub fn write_path(&self) -> WritePath {
        self.state.read().write_path
    }

    /// Enable or disable cross-statement snapshot reuse (ablation control:
    /// disabled, every statement re-resolves virtual relations from scratch,
    /// the pre-snapshot-store behavior). Disabling drops all cached state so
    /// re-enabling starts cold.
    pub fn set_snapshot_reuse(&self, enabled: bool) {
        self.snapshot_reuse.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.snapshots.clear();
        }
    }

    /// Whether cross-statement snapshot reuse is enabled.
    pub fn snapshot_reuse(&self) -> bool {
        self.snapshot_reuse.load(Ordering::Relaxed)
    }

    /// Snapshot-store hit/miss/maintenance counters (diagnostics).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshots.stats()
    }

    /// Display form of the current materialization schema.
    pub fn materialization_display(&self) -> String {
        self.state.read().materialization.to_string()
    }

    /// The current materialization schema.
    pub fn materialization(&self) -> MaterializationSchema {
        self.state.read().materialization.clone()
    }

    /// Physical data tables (`version-independent` relation names) currently
    /// stored, with row counts — diagnostics for the physical table schema.
    pub fn physical_tables(&self) -> Vec<(String, usize)> {
        self.storage
            .table_names()
            .into_iter()
            .map(|name| {
                let rows = self.storage.row_count(&name).unwrap_or(0);
                (name, rows)
            })
            .collect()
    }

    /// Debug dump of the skolem registry (diagnostics).
    pub fn debug_registry(&self) -> String {
        self.ids.0.lock().dump()
    }

    /// Clone of the current skolem registry — test oracles re-deriving
    /// virtual state from the physical tables need the committed generator
    /// assignments (after an update purge of a physical `ID` memo,
    /// repeatable reads rest on the registry).
    pub fn registry_snapshot(&self) -> SkolemRegistry {
        self.ids.0.lock().clone()
    }

    /// Audit the snapshot store: re-resolve every valid virtual entry cold
    /// (against a throwaway copy of the skolem registry) and report any
    /// whose stored contents differ (diagnostics).
    pub fn snapshot_store_audit(&self) -> Vec<String> {
        use inverda_datalog::eval::EdbView;
        /// Throwaway `Sync` id source over a cloned registry (audits must
        /// not perturb the database's skolem state).
        struct AuditIds(Mutex<SkolemRegistry>);
        impl IdSource for AuditIds {
            fn generate(&self, generator: &str, args: &[Value]) -> u64 {
                self.0.lock().get_or_create(generator, args)
            }

            fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
                self.0.lock().peek(generator, args)
            }
        }
        let state = self.state.read();
        let reg = AuditIds(Mutex::new(self.ids.0.lock().clone()));
        let edb = VersionedEdb::new(
            &state.genealogy,
            &state.materialization,
            &self.storage,
            &reg,
            &self.compiled,
        );
        let mut out = Vec::new();
        for (name, stored) in self.snapshots.entry_names(&self.storage) {
            match edb.full(&name) {
                Ok(cold) => {
                    if *cold != *stored {
                        out.push(format!("{name}: stored:\n{stored}cold:\n{cold}"));
                    }
                }
                Err(e) => out.push(format!("{name}: cold resolve error {e:?}")),
            }
        }
        out
    }

    /// Current value of the global key sequence (diagnostics).
    pub fn debug_key_seq(&self) -> u64 {
        self.storage.sequences().current_key()
    }

    /// Shared snapshot of one physical table, `None` if it does not exist
    /// (diagnostics and test oracles — e.g. re-deriving a virtual version
    /// with the naive reference interpreter from the physical state).
    pub fn physical_snapshot(&self, table: &str) -> Option<Arc<Relation>> {
        self.storage.snapshot(table).ok()
    }

    /// Display form of one physical table's contents (diagnostics).
    pub fn debug_physical(&self, table: &str) -> String {
        self.storage
            .snapshot(table)
            .map(|rel| rel.to_string())
            .unwrap_or_else(|e| format!("<{e}>"))
    }

    /// The physical table schema `P` as user-visible names.
    pub fn physical_table_versions(&self) -> Vec<String> {
        let state = self.state.read();
        state
            .materialization
            .physical_tables(&state.genealogy)
            .into_iter()
            .map(|tv| {
                let t = state.genealogy.table_version(tv);
                format!("{} [{}]", t.name, t.rel)
            })
            .collect()
    }

    /// Resolve `version.table` to its storage case (diagnostics / tests).
    pub fn storage_case(&self, version: &str, table: &str) -> Result<&'static str> {
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        Ok(
            match state.materialization.storage_of(&state.genealogy, tv) {
                StorageCase::Local => "local",
                StorageCase::Forward(_) => "forward",
                StorageCase::Backward(_) => "backward",
            },
        )
    }

    /// Run a closure against the genealogy (for tooling that needs the
    /// catalog structure, e.g. enumerating valid materialization schemas).
    pub fn with_genealogy<T>(&self, f: impl FnOnce(&Genealogy) -> T) -> T {
        f(&self.state.read().genealogy)
    }

    /// Seed the skolem registry with known `generator(payload) → id`
    /// assignments (bulk loads with externally assigned identifiers).
    pub fn observe_ids(&self, generator: &str, assignments: &[(Vec<Value>, u64)]) {
        let mut reg = self.ids.0.lock();
        for (args, id) in assignments {
            reg.observe(generator, args, *id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasky_db() -> Inverda {
        let db = Inverda::new();
        db.execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);")
            .unwrap();
        db
    }

    #[test]
    fn create_initial_version_with_table() {
        let db = tasky_db();
        assert_eq!(db.versions(), vec!["TasKy"]);
        assert_eq!(db.tables_of("TasKy").unwrap(), vec!["Task"]);
        assert_eq!(
            db.columns_of("TasKy", "Task").unwrap(),
            vec!["author", "task", "prio"]
        );
        assert_eq!(db.count("TasKy", "Task").unwrap(), 0);
        assert_eq!(db.storage_case("TasKy", "Task").unwrap(), "local");
    }

    #[test]
    fn evolution_exposes_new_version_immediately() {
        let db = tasky_db();
        db.execute(
            "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
             SPLIT TABLE Task INTO Todo WITH prio = 1; \
             DROP COLUMN prio FROM Todo DEFAULT 1;",
        )
        .unwrap();
        assert_eq!(db.tables_of("Do!").unwrap(), vec!["Todo"]);
        assert_eq!(
            db.columns_of("Do!", "Todo").unwrap(),
            vec!["author", "task"]
        );
        assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
        assert_eq!(db.storage_case("Do!", "Todo").unwrap(), "backward");
    }

    #[test]
    fn unknown_names_error() {
        let db = tasky_db();
        assert!(db.scan("Nope", "Task").is_err());
        assert!(db.scan("TasKy", "Nope").is_err());
        assert!(db
            .execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE X(a);")
            .is_err());
    }
}
