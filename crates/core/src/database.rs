//! The [`Inverda`] database facade.

use crate::compiled::CompiledStore;
use crate::durability::{
    Checkpoint, Durability, DurabilityMode, DurabilityOptions, Record, RecordBody,
};
use crate::edb::VersionedEdb;
use crate::snapshot::{SnapshotStats, SnapshotStore};
use crate::Result;
use inverda_bidel::{parse_script, Smo, Statement};
use inverda_catalog::{Genealogy, MaterializationSchema, StorageCase};
use inverda_datalog::eval::IdSource;
use inverda_datalog::SkolemRegistry;
use inverda_storage::{Key, Relation, Row, Storage, TableSchema, Value};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How logical writes are propagated to physical storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePath {
    /// Mechanically derived update-propagation rules — minimal writes
    /// (the paper's generated triggers; Section 6).
    #[default]
    Delta,
    /// Reference implementation: recompute both full side states per SMO
    /// hop and diff. Exact but `O(data)` per write; used for the ablation
    /// benchmark and as the oracle in equivalence tests.
    Recompute,
}

/// Mutable catalog state guarded by the database's lock.
pub struct State {
    /// The genealogy hypergraph.
    pub genealogy: Genealogy,
    /// Current materialization schema.
    pub materialization: MaterializationSchema,
    /// Current write path.
    pub write_path: WritePath,
    /// Every successful genealogy DDL statement, in execution order, as
    /// canonical BiDEL text — the replayable definition of the genealogy
    /// that checkpoints persist (recorded whether or not durability is on).
    pub ddl_history: Vec<String>,
}

/// Shared skolem-id registry (usable from read paths). Fresh identifiers
/// are minted from the storage engine's global key sequence so generated
/// ids never collide with tuple identifiers — the id-generating SMOs key
/// rows by them (Appendix B.3, Rules 149/152).
pub struct SharedIds(pub Mutex<SkolemRegistry>);

/// Per-call [`IdSource`] adapter binding the registry to the key sequence.
pub struct IdMinter<'a> {
    registry: &'a Mutex<SkolemRegistry>,
    sequences: &'a inverda_storage::SequenceSet,
}

impl IdSource for IdMinter<'_> {
    fn generate(&self, generator: &str, args: &[Value]) -> u64 {
        self.registry
            .lock()
            .get_or_create_with(generator, args, || self.sequences.next_key().0)
    }

    fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
        self.registry.lock().peek(generator, args)
    }
}

/// Outcome of executing a BiDEL script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionOutcome {
    /// Names of schema versions created.
    pub created_versions: Vec<String>,
    /// Names of schema versions dropped.
    pub dropped_versions: Vec<String>,
    /// Number of MATERIALIZE statements executed.
    pub migrations: usize,
}

/// An InVerDa database: one data set, many co-existing schema versions.
pub struct Inverda {
    pub(crate) storage: Storage,
    pub(crate) state: RwLock<State>,
    pub(crate) ids: SharedIds,
    /// Serializes logical writes and migrations.
    pub(crate) write_lock: Mutex<()>,
    /// Compiled SMO rule sets, reused across statements and invalidated on
    /// genealogy changes.
    pub(crate) compiled: CompiledStore,
    /// Cross-statement resolved-relation snapshots, delta-maintained by the
    /// write path and invalidated by physical-table epochs.
    pub(crate) snapshots: SnapshotStore,
    /// Whether reads/writes use the snapshot store (ablation control).
    snapshot_reuse: AtomicBool,
    /// Write-ahead log + checkpoint machinery; `None` for a purely
    /// in-memory database (see [`crate::durability`]).
    pub(crate) durability: Option<Durability>,
}

impl Default for Inverda {
    fn default() -> Self {
        Inverda::new()
    }
}

impl Inverda {
    /// The id source bound to this database's key sequence.
    pub(crate) fn id_source(&self) -> IdMinter<'_> {
        IdMinter {
            registry: &self.ids.0,
            sequences: self.storage.sequences(),
        }
    }

    /// The snapshot store, when reuse is enabled.
    pub(crate) fn snapshot_store(&self) -> Option<&SnapshotStore> {
        if self.snapshot_reuse.load(Ordering::Relaxed) {
            Some(&self.snapshots)
        } else {
            None
        }
    }

    /// A versioned read view over the current catalog state, bound to the
    /// snapshot store when reuse is enabled.
    pub(crate) fn edb<'a>(&'a self, state: &'a State, ids: &'a IdMinter<'a>) -> VersionedEdb<'a> {
        let edb = VersionedEdb::new(
            &state.genealogy,
            &state.materialization,
            &self.storage,
            ids,
            &self.compiled,
        );
        match self.snapshot_store() {
            Some(store) => edb.with_store(store),
            None => edb,
        }
    }

    /// Fresh, empty database. Purely in-memory — unless the
    /// `INVERDA_DURABILITY` environment knob is `commit` or `group`, in
    /// which case the instance is backed by a process-private temporary
    /// directory (removed on drop) so the *entire* test suite exercises
    /// the durable write path. Panics if that directory cannot be set up;
    /// use [`Inverda::new_in_memory`] for an instance that ignores the
    /// knob (e.g. the in-memory oracle of a recovery test).
    pub fn new() -> Self {
        match DurabilityMode::from_env() {
            DurabilityMode::Off => Inverda::new_in_memory(),
            mode => {
                static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "inverda-{}-{}",
                    std::process::id(),
                    TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let mut db = Inverda::open_in(
                    &dir,
                    DurabilityOptions {
                        mode,
                        ..DurabilityOptions::default()
                    },
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "INVERDA_DURABILITY: cannot open durable tempdir {}: {e}",
                        dir.display()
                    )
                });
                if let Some(d) = &mut db.durability {
                    d.temp = true;
                }
                db
            }
        }
    }

    /// Fresh, empty, purely in-memory database — [`Inverda::new`] without
    /// the `INVERDA_DURABILITY` environment gate.
    pub fn new_in_memory() -> Self {
        let storage = Storage::new();
        let snapshots = SnapshotStore::new();
        // The store's footprint stamps live in this storage's epoch
        // namespace; binding refuses cross-branch probes (see
        // `SnapshotStore::bind_owner`).
        snapshots.bind_owner(storage.branch_tag());
        Inverda {
            storage,
            state: RwLock::new(State {
                genealogy: Genealogy::new(),
                materialization: MaterializationSchema::initial(),
                write_path: WritePath::default(),
                ddl_history: Vec::new(),
            }),
            ids: SharedIds(Mutex::new(SkolemRegistry::new())),
            write_lock: Mutex::new(()),
            compiled: CompiledStore::new(),
            snapshots,
            snapshot_reuse: AtomicBool::new(true),
            durability: None,
        }
    }

    /// An independent in-memory fork of the current committed state — the
    /// O(metadata) branch primitive. Tables are shared copy-on-write at
    /// their current epochs ([`Storage::fork`]), the snapshot store and
    /// compiled-rule caches fork warm (entries `Arc`-shared, then fully
    /// isolated), the skolem registry and key-sequence floor are cloned,
    /// and the genealogy / materialization / DDL history are copied.
    /// Taken under the write lock, so no batch is in flight. The fork is
    /// always purely in-memory (branch-layer durability logs *logical*
    /// ops; see [`crate::branch`]) and starts with registry journaling
    /// off.
    pub fn fork_detached(&self) -> Inverda {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        let storage = self.storage.fork();
        let snapshots = self.snapshots.fork_for_branch(storage.branch_tag());
        let registry = {
            let mut reg = self.ids.0.lock().clone();
            reg.set_journaling(false);
            reg
        };
        Inverda {
            snapshots,
            state: RwLock::new(State {
                genealogy: state.genealogy.clone(),
                materialization: state.materialization.clone(),
                write_path: state.write_path,
                ddl_history: state.ddl_history.clone(),
            }),
            ids: SharedIds(Mutex::new(registry)),
            write_lock: Mutex::new(()),
            compiled: self.compiled.fork(),
            snapshot_reuse: AtomicBool::new(self.snapshot_reuse.load(Ordering::Relaxed)),
            durability: None,
            storage,
        }
    }

    /// Open (or create) a durable database at `path` with default options
    /// (per-commit fsync): load the latest checkpoint, replay the log
    /// tail, truncate any torn suffix — the recovered instance behaves
    /// exactly like one that never crashed, skolem minting order included.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Inverda::open_in(path, DurabilityOptions::default())
    }

    /// [`Inverda::open`] with explicit [`DurabilityOptions`]. Opening with
    /// [`DurabilityMode::Off`] yields a plain in-memory database (nothing
    /// at `path` is read or written).
    pub fn open_in(path: impl AsRef<Path>, options: DurabilityOptions) -> Result<Self> {
        if options.mode == DurabilityMode::Off {
            return Ok(Inverda::new_in_memory());
        }
        crate::durability::recovery::open(path.as_ref(), options)
    }

    /// Snapshot the full durable state atomically and rotate the log to a
    /// fresh generation. No-op on an in-memory database.
    pub fn checkpoint(&self) -> Result<()> {
        let _guard = self.write_lock.lock();
        let state = self.state.read();
        self.checkpoint_locked(&state)
    }

    /// Checkpoint while the caller already holds the write lock and a
    /// state guard (also the auto-checkpoint hook inside
    /// [`wal_append`](Inverda::wal_append)).
    pub(crate) fn checkpoint_locked(&self, state: &State) -> Result<()> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        // The registry snapshot subsumes any not-yet-logged journal ops
        // (read-path mints since the last record); drop them so they are
        // not replayed — harmlessly but pointlessly — on top of the
        // checkpoint they are already part of.
        let registry = {
            let mut reg = self.ids.0.lock();
            let _ = reg.take_journal();
            reg.clone()
        };
        let tables: Vec<Relation> = self
            .storage
            .table_names()
            .into_iter()
            .filter_map(|name| self.storage.snapshot(&name).ok())
            .map(|rel| (*rel).clone())
            .collect();
        durability
            .rotate(|generation| Checkpoint {
                generation,
                ddl_history: state.ddl_history.clone(),
                materialization: state.materialization.smos().map(|s| s.0).collect(),
                key_seq: self.storage.sequences().current_key(),
                registry,
                tables,
            })
            .map_err(crate::error::CoreError::Storage)
    }

    /// Append one record to the WAL (draining nothing itself — the caller
    /// owns the journal-drain ordering) and run the auto-checkpoint when
    /// its threshold fires. No-op on an in-memory database.
    pub(crate) fn wal_append(&self, state: &State, record: Record) -> Result<()> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        if durability
            .append(&record)
            .map_err(crate::error::CoreError::Storage)?
        {
            self.checkpoint_locked(state)?;
        }
        Ok(())
    }

    /// Flush any skolem-registry journal residue as a `RegistryOnly`
    /// record — called at the end of every public mutating entry point so
    /// each user-visible operation leaves at most one record, and mints a
    /// failed statement performed through its read path survive a crash
    /// exactly as they survive in memory.
    pub(crate) fn log_registry_residue(&self, state: &State) -> Result<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let reg_ops = self.ids.0.lock().take_journal();
        if reg_ops.is_empty() {
            return Ok(());
        }
        let key_seq = self.storage.sequences().current_key();
        self.wal_append(
            state,
            Record {
                reg_ops,
                key_seq,
                body: RecordBody::RegistryOnly,
            },
        )
    }

    /// Force unsynced WAL appends to disk (group commit). No-op on an
    /// in-memory database.
    pub fn flush(&self) -> Result<()> {
        match &self.durability {
            Some(d) => d.flush().map_err(crate::error::CoreError::Storage),
            None => Ok(()),
        }
    }

    /// Current WAL file length in bytes, `None` when in-memory. Fault
    /// injection uses this to pick truncation points and to assert that
    /// rejected statements leave the log untouched.
    pub fn wal_len(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal_len())
    }

    /// The durable directory backing this database, `None` when in-memory.
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.durability.as_ref().map(|d| d.dir().to_path_buf())
    }

    /// Execute a BiDEL script: `CREATE SCHEMA VERSION … WITH …;`,
    /// `DROP SCHEMA VERSION …;`, `MATERIALIZE '…';`.
    pub fn execute(&self, script: &str) -> Result<ExecutionOutcome> {
        let script = parse_script(script)?;
        let mut outcome = ExecutionOutcome::default();
        for stmt in script.statements {
            match stmt {
                Statement::CreateSchemaVersion { name, from, smos } => {
                    self.create_schema_version(&name, from.as_deref(), &smos)?;
                    outcome.created_versions.push(name);
                }
                Statement::DropSchemaVersion { name } => {
                    self.drop_schema_version(&name)?;
                    outcome.dropped_versions.push(name);
                }
                Statement::Materialize { targets } => {
                    self.materialize(&targets)?;
                    outcome.migrations += 1;
                }
            }
        }
        Ok(outcome)
    }

    /// The paper's **Database Evolution Operation**: register the SMOs in
    /// the catalog and generate delta code. The new version is immediately
    /// readable and writable; no data moves.
    pub fn create_schema_version(
        &self,
        name: &str,
        from: Option<&str>,
        smos: &[Smo],
    ) -> Result<()> {
        let _guard = self.write_lock.lock();
        let mut state = self.state.write();
        let text = Statement::CreateSchemaVersion {
            name: name.to_string(),
            from: from.map(str::to_string),
            smos: smos.to_vec(),
        }
        .to_string();
        let result = self.create_schema_version_locked(&mut state, name, from, smos);
        self.record_ddl(&mut state, text, &result)?;
        result
    }

    fn create_schema_version_locked(
        &self,
        state: &mut State,
        name: &str,
        from: Option<&str>,
        smos: &[Smo],
    ) -> Result<()> {
        let outcome = state.genealogy.create_schema_version(name, from, smos)?;
        // The genealogy changed: retire compiled rule sets of retired SMOs
        // (ids are never reused, but keep the cache tight), and drop every
        // resolved snapshot — defining rule sets and footprints may differ.
        self.compiled.clear();
        self.snapshots.clear();
        // Physical side effects: data tables for CREATE TABLE targets,
        // auxiliary tables for the initially-virtualized new SMOs.
        for smo_id in &outcome.new_smos {
            let inst = state.genealogy.smo(*smo_id);
            if inst.derived.kind == "CREATE TABLE" {
                for tv_id in &inst.targets {
                    let tv = state.genealogy.table_version(*tv_id);
                    self.storage
                        .create_table(TableSchema::new(tv.rel.clone(), tv.columns.clone())?)?;
                }
            }
            if inst.moves_data() {
                // New SMOs start virtualized: source-side aux + shared aux.
                for aux in inst
                    .derived
                    .src_aux
                    .iter()
                    .chain(inst.derived.shared_aux.iter().map(|s| &s.table))
                {
                    self.storage
                        .create_table(TableSchema::new(aux.rel.clone(), aux.columns.clone())?)?;
                }
            }
        }
        Ok(())
    }

    /// On success, append the DDL statement to the replayable history and
    /// log it (with any skolem journal residue of this entry point); on
    /// failure, flush the residue alone so the crash-recovered registry
    /// matches the in-memory one.
    fn record_ddl(&self, state: &mut State, text: String, result: &Result<()>) -> Result<()> {
        match result {
            Ok(()) => {
                state.ddl_history.push(text.clone());
                if self.durability.is_none() {
                    return Ok(());
                }
                let reg_ops = self.ids.0.lock().take_journal();
                let key_seq = self.storage.sequences().current_key();
                self.wal_append(
                    state,
                    Record {
                        reg_ops,
                        key_seq,
                        body: RecordBody::Ddl(text),
                    },
                )
            }
            Err(_) => self.log_registry_residue(state),
        }
    }

    /// Drop a schema version. Data shared with other versions is kept;
    /// physical tables reachable from no remaining version are deleted.
    pub fn drop_schema_version(&self, name: &str) -> Result<()> {
        let _guard = self.write_lock.lock();
        let mut state = self.state.write();
        let text = Statement::DropSchemaVersion {
            name: name.to_string(),
        }
        .to_string();
        let result = self.drop_schema_version_locked(&mut state, name);
        self.record_ddl(&mut state, text, &result)?;
        result
    }

    fn drop_schema_version_locked(&self, state: &mut State, name: &str) -> Result<()> {
        let orphans = state.genealogy.drop_schema_version(name)?;
        self.compiled.clear();
        self.snapshots.clear();
        for tv in orphans {
            // Orphans may or may not be physical depending on M.
            let rel = {
                // The table version entry may already be gone if a previous
                // drop removed it; resolve defensively.
                state.genealogy.table_version(tv).rel.clone()
            };
            if self.storage.has_table(&rel) {
                self.storage.drop_table(&rel)?;
            }
        }
        Ok(())
    }

    /// Names of all schema versions.
    pub fn versions(&self) -> Vec<String> {
        self.state
            .read()
            .genealogy
            .version_names()
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// Table names of a schema version.
    pub fn tables_of(&self, version: &str) -> Result<Vec<String>> {
        let state = self.state.read();
        Ok(state
            .genealogy
            .version(version)?
            .tables
            .keys()
            .cloned()
            .collect())
    }

    /// Column names of `version.table`.
    pub fn columns_of(&self, version: &str, table: &str) -> Result<Vec<String>> {
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        Ok(state.genealogy.table_version(tv).columns.clone())
    }

    /// Start building a read query against `version.table` — the logical
    /// query layer with predicate/projection/limit pushdown through version
    /// resolution (see [`crate::query`]). Name resolution and column
    /// validation happen when a terminal method executes the query.
    pub fn query(&self, version: &str, table: &str) -> crate::query::Query<'_> {
        crate::query::Query::new(self, version, table)
    }

    /// Read the full state of `version.table` — every schema version acts
    /// like a full-fledged single-schema database, wherever the data lives.
    /// A thin wrapper over the query layer's unrestricted plan, which hands
    /// back the resolved snapshot without copying.
    pub fn scan(&self, version: &str, table: &str) -> Result<Arc<Relation>> {
        self.query(version, table).collect_shared()
    }

    /// Point lookup by tuple identifier — the query layer's key-seek path,
    /// which pushes the key through the defining mappings instead of
    /// materializing the relation.
    pub fn get(&self, version: &str, table: &str, key: Key) -> Result<Option<Row>> {
        self.query(version, table).with_key(key).row()
    }

    /// Number of rows visible in `version.table`, via the query layer: a
    /// warm count is O(1) off the snapshot store and a cold count never
    /// clones rows.
    pub fn count(&self, version: &str, table: &str) -> Result<usize> {
        self.query(version, table).count()
    }

    /// Whether `version.table` has any visible row (O(1) warm; never clones
    /// rows).
    pub fn exists(&self, version: &str, table: &str) -> Result<bool> {
        self.query(version, table).exists()
    }

    /// Switch the write-propagation implementation (ablation control).
    pub fn set_write_path(&self, path: WritePath) {
        self.state.write().write_path = path;
    }

    /// The current write path.
    pub fn write_path(&self) -> WritePath {
        self.state.read().write_path
    }

    /// Enable or disable cross-statement snapshot reuse (ablation control:
    /// disabled, every statement re-resolves virtual relations from scratch,
    /// the pre-snapshot-store behavior). Disabling drops all cached state so
    /// re-enabling starts cold.
    pub fn set_snapshot_reuse(&self, enabled: bool) {
        self.snapshot_reuse.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.snapshots.clear();
        }
    }

    /// Whether cross-statement snapshot reuse is enabled.
    pub fn snapshot_reuse(&self) -> bool {
        self.snapshot_reuse.load(Ordering::Relaxed)
    }

    /// Snapshot-store hit/miss/maintenance counters (diagnostics).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshots.stats()
    }

    /// Outstanding epoch-pinned readers on the snapshot store
    /// (diagnostics; see [`Inverda::pin`]).
    pub fn snapshot_pin_count(&self) -> u64 {
        self.snapshots.pin_count()
    }

    /// Retired (non-current) snapshot versions held for epoch-pinned
    /// readers (diagnostics; must be 0 when no pins are outstanding).
    pub fn snapshot_retained_versions(&self) -> usize {
        self.snapshots.retained_versions()
    }

    /// Display form of the current materialization schema.
    pub fn materialization_display(&self) -> String {
        self.state.read().materialization.to_string()
    }

    /// The current materialization schema.
    pub fn materialization(&self) -> MaterializationSchema {
        self.state.read().materialization.clone()
    }

    /// Physical data tables (`version-independent` relation names) currently
    /// stored, with row counts — diagnostics for the physical table schema.
    pub fn physical_tables(&self) -> Vec<(String, usize)> {
        self.storage
            .table_names()
            .into_iter()
            .map(|name| {
                let rows = self.storage.row_count(&name).unwrap_or(0);
                (name, rows)
            })
            .collect()
    }

    /// Debug dump of the skolem registry (diagnostics).
    pub fn debug_registry(&self) -> String {
        self.ids.0.lock().dump()
    }

    /// Clone of the current skolem registry — test oracles re-deriving
    /// virtual state from the physical tables need the committed generator
    /// assignments (after an update purge of a physical `ID` memo,
    /// repeatable reads rest on the registry).
    pub fn registry_snapshot(&self) -> SkolemRegistry {
        self.ids.0.lock().clone()
    }

    /// Audit the snapshot store: re-resolve every valid virtual entry cold
    /// (against a throwaway copy of the skolem registry) and report any
    /// whose stored contents differ (diagnostics).
    pub fn snapshot_store_audit(&self) -> Vec<String> {
        use inverda_datalog::eval::EdbView;
        /// Throwaway `Sync` id source over a cloned registry (audits must
        /// not perturb the database's skolem state).
        struct AuditIds(Mutex<SkolemRegistry>);
        impl IdSource for AuditIds {
            fn generate(&self, generator: &str, args: &[Value]) -> u64 {
                self.0.lock().get_or_create(generator, args)
            }

            fn peek(&self, generator: &str, args: &[Value]) -> Option<u64> {
                self.0.lock().peek(generator, args)
            }
        }
        let state = self.state.read();
        let reg = AuditIds(Mutex::new(self.ids.0.lock().clone()));
        let edb = VersionedEdb::new(
            &state.genealogy,
            &state.materialization,
            &self.storage,
            &reg,
            &self.compiled,
        );
        let mut out = Vec::new();
        for (name, stored) in self.snapshots.entry_names(&self.storage) {
            match edb.full(&name) {
                Ok(cold) => {
                    if *cold != *stored {
                        out.push(format!("{name}: stored:\n{stored}cold:\n{cold}"));
                    }
                }
                Err(e) => out.push(format!("{name}: cold resolve error {e:?}")),
            }
        }
        out
    }

    /// Current value of the global key sequence (diagnostics).
    pub fn debug_key_seq(&self) -> u64 {
        self.storage.sequences().current_key()
    }

    /// Number of cached fused γ-chains and the deepest fused hop run
    /// (diagnostics — lets tests assert that chain fusion engaged).
    pub fn fused_chain_stats(&self) -> (usize, usize) {
        self.compiled.fused_stats()
    }

    /// Shared snapshot of one physical table, `None` if it does not exist
    /// (diagnostics and test oracles — e.g. re-deriving a virtual version
    /// with the naive reference interpreter from the physical state).
    pub fn physical_snapshot(&self, table: &str) -> Option<Arc<Relation>> {
        self.storage.snapshot(table).ok()
    }

    /// Display form of one physical table's contents (diagnostics).
    pub fn debug_physical(&self, table: &str) -> String {
        self.storage
            .snapshot(table)
            .map(|rel| rel.to_string())
            .unwrap_or_else(|e| format!("<{e}>"))
    }

    /// The physical table schema `P` as user-visible names.
    pub fn physical_table_versions(&self) -> Vec<String> {
        let state = self.state.read();
        state
            .materialization
            .physical_tables(&state.genealogy)
            .into_iter()
            .map(|tv| {
                let t = state.genealogy.table_version(tv);
                format!("{} [{}]", t.name, t.rel)
            })
            .collect()
    }

    /// Resolve `version.table` to its storage case (diagnostics / tests).
    pub fn storage_case(&self, version: &str, table: &str) -> Result<&'static str> {
        let state = self.state.read();
        let tv = state.genealogy.resolve(version, table)?;
        Ok(
            match state.materialization.storage_of(&state.genealogy, tv) {
                StorageCase::Local => "local",
                StorageCase::Forward(_) => "forward",
                StorageCase::Backward(_) => "backward",
            },
        )
    }

    /// Run a closure against the genealogy (for tooling that needs the
    /// catalog structure, e.g. enumerating valid materialization schemas).
    pub fn with_genealogy<T>(&self, f: impl FnOnce(&Genealogy) -> T) -> T {
        f(&self.state.read().genealogy)
    }

    /// Seed the skolem registry with known `generator(payload) → id`
    /// assignments (bulk loads with externally assigned identifiers). The
    /// seeds are committed state: on a durable database they are logged
    /// (hence the write lock and the fallible signature).
    pub fn observe_ids(&self, generator: &str, assignments: &[(Vec<Value>, u64)]) -> Result<()> {
        let _guard = self.write_lock.lock();
        {
            let mut reg = self.ids.0.lock();
            for (args, id) in assignments {
                reg.observe(generator, args, *id);
            }
        }
        let state = self.state.read();
        self.log_registry_residue(&state)
    }
}

impl Drop for Inverda {
    fn drop(&mut self) {
        let Some(durability) = &self.durability else {
            return;
        };
        // Push any group-committed tail to disk; a failure here is the
        // crash this subsystem exists to tolerate, so it is not propagated.
        let _ = durability.flush();
        if durability.temp {
            let _ = std::fs::remove_dir_all(durability.dir());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasky_db() -> Inverda {
        let db = Inverda::new();
        db.execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);")
            .unwrap();
        db
    }

    #[test]
    fn create_initial_version_with_table() {
        let db = tasky_db();
        assert_eq!(db.versions(), vec!["TasKy"]);
        assert_eq!(db.tables_of("TasKy").unwrap(), vec!["Task"]);
        assert_eq!(
            db.columns_of("TasKy", "Task").unwrap(),
            vec!["author", "task", "prio"]
        );
        assert_eq!(db.count("TasKy", "Task").unwrap(), 0);
        assert_eq!(db.storage_case("TasKy", "Task").unwrap(), "local");
    }

    #[test]
    fn evolution_exposes_new_version_immediately() {
        let db = tasky_db();
        db.execute(
            "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
             SPLIT TABLE Task INTO Todo WITH prio = 1; \
             DROP COLUMN prio FROM Todo DEFAULT 1;",
        )
        .unwrap();
        assert_eq!(db.tables_of("Do!").unwrap(), vec!["Todo"]);
        assert_eq!(
            db.columns_of("Do!", "Todo").unwrap(),
            vec!["author", "task"]
        );
        assert_eq!(db.count("Do!", "Todo").unwrap(), 0);
        assert_eq!(db.storage_case("Do!", "Todo").unwrap(), "backward");
    }

    #[test]
    fn unknown_names_error() {
        let db = tasky_db();
        assert!(db.scan("Nope", "Task").is_err());
        assert!(db.scan("TasKy", "Nope").is_err());
        assert!(db
            .execute("CREATE SCHEMA VERSION TasKy WITH CREATE TABLE X(a);")
            .is_err());
    }
}
