//! Error type for the InVerDa engine.

use inverda_bidel::BidelError;
use inverda_catalog::CatalogError;
use inverda_datalog::DatalogError;
use inverda_storage::StorageError;
use std::fmt;

/// Errors raised by InVerDa operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Storage-level failure.
    Storage(StorageError),
    /// Rule evaluation / propagation failure.
    Datalog(DatalogError),
    /// BiDEL parse or semantics failure.
    Bidel(BidelError),
    /// Catalog failure.
    Catalog(CatalogError),
    /// Write addressed a row that does not exist in the versioned view.
    MissingRow {
        /// Schema version addressed.
        version: String,
        /// Table addressed.
        table: String,
        /// Missing key.
        key: u64,
    },
    /// Bad MATERIALIZE target syntax.
    BadMaterializeTarget {
        /// The offending target string.
        target: String,
    },
    /// A branch name that does not exist was addressed.
    UnknownBranch {
        /// The missing branch name.
        name: String,
    },
    /// Branch creation addressed a name already in use.
    BranchExists {
        /// The duplicate branch name.
        name: String,
    },
    /// `fast_forward(src, dst)` found `dst` diverged: it has operations of
    /// its own since the branches' merge base, so advancing it is a merge,
    /// not a fast-forward.
    CannotFastForward {
        /// The diverged destination branch.
        dst: String,
        /// Number of `dst` operations since the merge base.
        dst_ops: usize,
    },
    /// The trunk branch (`main`) cannot be dropped.
    ProtectedBranch {
        /// The protected branch name.
        name: String,
    },
    /// `merge(src, dst)` found conflicting changes; nothing was applied.
    MergeConflicts(crate::branch::MergeConflicts),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
            CoreError::Bidel(e) => write!(f, "{e}"),
            CoreError::Catalog(e) => write!(f, "{e}"),
            CoreError::MissingRow {
                version,
                table,
                key,
            } => write!(f, "no row #{key} in {version}.{table}"),
            CoreError::BadMaterializeTarget { target } => {
                write!(
                    f,
                    "bad MATERIALIZE target '{target}' (expected 'Version' or 'Version.table')"
                )
            }
            CoreError::UnknownBranch { name } => write!(f, "no branch named '{name}'"),
            CoreError::BranchExists { name } => {
                write!(f, "a branch named '{name}' already exists")
            }
            CoreError::CannotFastForward { dst, dst_ops } => write!(
                f,
                "cannot fast-forward: branch '{dst}' has {dst_ops} operation(s) of its own \
                 since the merge base (use merge)"
            ),
            CoreError::ProtectedBranch { name } => {
                write!(f, "branch '{name}' is protected and cannot be dropped")
            }
            CoreError::MergeConflicts(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<DatalogError> for CoreError {
    fn from(e: DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

impl From<BidelError> for CoreError {
    fn from(e: BidelError) -> Self {
        CoreError::Bidel(e)
    }
}

impl From<CatalogError> for CoreError {
    fn from(e: CatalogError) -> Self {
        CoreError::Catalog(e)
    }
}
