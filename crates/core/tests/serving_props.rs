//! The serving layer's differential concurrency oracle.
//!
//! Each history runs N reader threads and M writer clients against one
//! [`ServingInverda`]: writers race mixed `apply_many` batches, DDL,
//! MATERIALIZE migrations, and checkpoints through the admission queue;
//! readers continuously take epoch-pinned views on mixed schema versions
//! and record every read (scans and key lookups, successes and errors)
//! together with the pin's commit epoch, key sequence, and committed
//! registry dump. Writers record every acknowledged request with its
//! assigned epoch and concrete statement (including the actual keys used).
//!
//! Afterwards the committed sequence is replayed **single-threaded** on a
//! fresh in-memory database in epoch order, asserting:
//!
//! * the epochs acknowledged to writers are exactly the dense sequence
//!   `1..=total` — a linearizable commit order with no lost or duplicated
//!   slot (failed statements consume an epoch too: they can consume keys
//!   and registry state);
//! * every statement outcome (minted keys, script outcomes, errors) is
//!   byte-identical to the sequential replay;
//! * every concurrent read is byte-identical — rows, registry dump, key
//!   sequence — to a pin of the sequential state at its epoch, with the
//!   pin's reads replayed in the pin's own order (read-path scratch mints
//!   are deterministic per pin history).
//!
//! Histories are swept deterministically over parallel widths {1, 2, 4} ×
//! durability {off, group} × 43 seeds = 258 histories (the three width
//! sweeps run as separate tests so `cargo test` parallelizes them).

use inverda_core::{
    DurabilityMode, DurabilityOptions, Inverda, LogicalWrite, PinnedView, ServingInverda,
    ServingOp, ServingOutcome, ServingReply,
};
use inverda_storage::{Key, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const SEEDS_PER_CONFIG: u64 = 43;
const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 8;
const MAX_PINS_PER_READER: usize = 12;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "inverda-servprops-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Deterministic splitmix-style generator: every thread derives its own
/// stream from (seed, role), so histories replay identically per seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, stream: u64) -> Rng {
        Rng(seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(stream.wrapping_mul(0xbf58476d1ce4e5b9))
            | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The paper's TasKy genealogy: a SPLIT + DROP COLUMN branch and the
/// staged, id-minting FK-DECOMPOSE branch — the same shape the recovery
/// suite uses, so serving histories cover minting, twins, and migrations.
const SETUP: &[&str] = &[
    "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);",
    "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
       SPLIT TABLE Task INTO Todo WITH prio = 1; \
       DROP COLUMN prio FROM Todo DEFAULT 1;",
    "CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
       DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
       RENAME COLUMN author IN Author TO name;",
];

/// Writable targets for `apply_many`.
const TARGETS: &[(&str, &str)] = &[("TasKy", "Task"), ("Do!", "Todo")];

/// Read targets, including versions/tables that may not (yet/ever) exist —
/// errors must replay byte-identically too.
const READS: &[(&str, &str)] = &[
    ("TasKy", "Task"),
    ("Do!", "Todo"),
    ("TasKy2", "Task"),
    ("TasKy2", "Author"),
    ("Xtra", "Task"),
    ("Nope", "Task"),
];

/// Scripts the writer pool races (repeats fail cleanly; failures are part
/// of the committed sequence).
const SCRIPTS: &[&str] = &[
    "CREATE SCHEMA VERSION Xtra FROM TasKy WITH RENAME COLUMN prio IN Task TO rank;",
    "DROP SCHEMA VERSION Xtra;",
    "MATERIALIZE 'Do!';",
    "MATERIALIZE 'TasKy';",
    "MATERIALIZE 'TasKy2';",
];

fn row_for(table: &str, rng: &mut Rng) -> Vec<Value> {
    match table {
        "Task" => vec![
            Value::text(format!("author{}", rng.below(4))),
            Value::text(format!("task{}", rng.below(6))),
            Value::Int((rng.below(3) + 1) as i64),
        ],
        _ => vec![
            Value::text(format!("author{}", rng.below(4))),
            Value::text(format!("todo{}", rng.below(6))),
        ],
    }
}

/// One acknowledged writer request: the concrete statement (with the keys
/// actually used) plus the pipeline's reply, replayable verbatim.
struct WriteRec {
    epoch: u64,
    op: ServingOp,
    outcome: String,
}

/// One epoch-pinned view a reader took, with its ordered reads.
struct PinRec {
    epoch: u64,
    key_seq: u64,
    registry: String,
    /// `(read-kind, version, table, result)`, in the pin's own order.
    reads: Vec<(u8, String, String, String)>,
}

fn outcome_string(outcome: &inverda_core::Result<ServingOutcome>) -> String {
    match outcome {
        Ok(o) => format!("ok:{o:?}"),
        Err(e) => format!("err:{e}"),
    }
}

fn reply_string(reply: &ServingReply) -> String {
    outcome_string(&reply.outcome)
}

/// Perform one read on a pin and render the result (shared verbatim by the
/// concurrent readers and the oracle replay). Kinds `>= 2` are key lookups
/// of `Key(kind - 1)`.
fn read_on(pin: &PinnedView, kind: u8, version: &str, table: &str) -> String {
    match kind {
        0 => match pin.scan(version, table) {
            Ok(rel) => format!("rows:{rel}"),
            Err(e) => format!("err:{e}"),
        },
        1 => match pin.count(version, table) {
            Ok(n) => format!("count:{n}"),
            Err(e) => format!("err:{e}"),
        },
        _ => match pin.get(version, table, Key(u64::from(kind) - 1)) {
            Ok(row) => format!("get:{row:?}"),
            Err(e) => format!("err:{e}"),
        },
    }
}

/// The deterministic per-writer statement stream. Updates and deletes use
/// keys the same writer minted earlier, so every statement is concrete at
/// submission time and the record replays verbatim.
fn writer_ops(client: &inverda_core::Client, seed: u64, writer: u64) -> Vec<WriteRec> {
    let mut rng = Rng::new(seed, 100 + writer);
    let mut keys: Vec<Key> = Vec::new();
    let mut recs = Vec::new();
    for _ in 0..OPS_PER_WRITER {
        let (op, reply) = match rng.below(10) {
            // Mixed apply_many batch: inserts plus (when possible) an
            // update or delete of an own earlier key.
            0..=5 => {
                let (version, table) = TARGETS[rng.below(TARGETS.len() as u64) as usize];
                let mut writes = Vec::new();
                for _ in 0..=rng.below(2) {
                    writes.push(LogicalWrite::Insert(row_for(table, &mut rng)));
                }
                if !keys.is_empty() && rng.below(2) == 0 {
                    let key = keys[rng.below(keys.len() as u64) as usize];
                    if rng.below(2) == 0 {
                        writes.push(LogicalWrite::Update(key, row_for(table, &mut rng)));
                    } else {
                        writes.push(LogicalWrite::Delete(key));
                    }
                }
                let op = ServingOp::Apply {
                    version: version.to_string(),
                    table: table.to_string(),
                    writes,
                };
                let reply = client.submit(op.clone());
                if let Ok(ServingOutcome::Applied(minted)) = &reply.outcome {
                    keys.extend(minted.iter().flatten());
                }
                (op, reply)
            }
            // An arity-mismatch statement: failures consume an epoch (and
            // possibly keys) and must replay as failures.
            6 => {
                let op = ServingOp::Apply {
                    version: "TasKy".to_string(),
                    table: "Task".to_string(),
                    writes: vec![LogicalWrite::Insert(vec![Value::Int(1)])],
                };
                (op.clone(), client.submit(op))
            }
            7 | 8 => {
                let script = SCRIPTS[rng.below(SCRIPTS.len() as u64) as usize];
                let op = ServingOp::Execute(script.to_string());
                (op.clone(), client.submit(op))
            }
            _ => {
                let op = ServingOp::Checkpoint;
                (op.clone(), client.submit(op))
            }
        };
        recs.push(WriteRec {
            epoch: reply.epoch,
            op,
            outcome: reply_string(&reply),
        });
    }
    recs
}

/// The reader loop: pin the latest epoch, assert epoch monotonicity, run a
/// few deterministic reads, record everything.
fn reader_pins(
    reader: &inverda_core::Reader,
    seed: u64,
    id: u64,
    done: &AtomicBool,
) -> Vec<PinRec> {
    let mut rng = Rng::new(seed, 200 + id);
    let mut pins = Vec::new();
    let mut last_epoch = 0;
    while pins.len() < MAX_PINS_PER_READER {
        let pin = reader.pin();
        assert!(
            pin.epoch() >= last_epoch,
            "published epochs must be monotone: {} then {}",
            last_epoch,
            pin.epoch()
        );
        last_epoch = pin.epoch();
        let mut reads = Vec::new();
        for _ in 0..=rng.below(2) {
            let (version, table) = READS[rng.below(READS.len() as u64) as usize];
            let kind = match rng.below(4) {
                0 => 0,
                1 => 1,
                _ => 2 + rng.below(30) as u8,
            };
            let result = read_on(&pin, kind, version, table);
            reads.push((kind, version.to_string(), table.to_string(), result));
        }
        pins.push(PinRec {
            epoch: pin.epoch(),
            key_seq: pin.key_seq(),
            registry: pin.registry_dump(),
            reads,
        });
        if done.load(Ordering::Relaxed) {
            break;
        }
    }
    pins
}

/// Check every pin recorded at `epoch` against a fresh pin of the oracle,
/// replaying the pin's reads in its own order.
fn check_pins(oracle: &Arc<Inverda>, pins: &BTreeMap<u64, Vec<PinRec>>, epoch: u64, ctx: &str) {
    let Some(records) = pins.get(&epoch) else {
        return;
    };
    for rec in records {
        let opin = oracle.pin();
        assert_eq!(
            opin.key_seq(),
            rec.key_seq,
            "pinned key sequence diverged at epoch {epoch} ({ctx})"
        );
        assert_eq!(
            opin.registry_dump(),
            rec.registry,
            "pinned registry diverged at epoch {epoch} ({ctx})"
        );
        for (kind, version, table, expected) in &rec.reads {
            let actual = read_on(&opin, *kind, version, table);
            assert_eq!(
                &actual, expected,
                "read {kind} on {version}.{table} diverged at epoch {epoch} ({ctx})"
            );
        }
    }
}

/// One full history: concurrent run, then single-threaded oracle replay.
fn run_history(width: usize, group: bool, seed: u64) {
    inverda_core::set_threads(Some(width));
    let ctx = format!("width {width}, group {group}, seed {seed}");

    let (db, dir) = if group {
        let dir = fresh_dir("db");
        let db = Inverda::open_in(
            &dir,
            DurabilityOptions {
                mode: DurabilityMode::Group,
                group_size: 3,
                checkpoint_every: None,
            },
        )
        .expect("open durable db");
        (db, Some(dir))
    } else {
        (Inverda::new_in_memory(), None)
    };
    for stmt in SETUP {
        db.execute(stmt).expect("setup");
    }
    let serving = ServingInverda::over(db);

    let done = Arc::new(AtomicBool::new(false));
    let (writer_recs, pin_recs) = std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let client = serving.client();
            writer_handles.push(scope.spawn(move || writer_ops(&client, seed, w as u64)));
        }
        let mut reader_handles = Vec::new();
        for r in 0..READERS {
            let reader = serving.reader();
            let done = Arc::clone(&done);
            reader_handles.push(scope.spawn(move || reader_pins(&reader, seed, r as u64, &done)));
        }
        let mut writer_recs = Vec::new();
        for h in writer_handles {
            writer_recs.extend(h.join().expect("writer thread"));
        }
        done.store(true, Ordering::Relaxed);
        let mut pin_recs = Vec::new();
        for h in reader_handles {
            pin_recs.extend(h.join().expect("reader thread"));
        }
        (writer_recs, pin_recs)
    });
    serving.shutdown();
    assert_eq!(
        serving.db().snapshot_pin_count(),
        0,
        "all pins released ({ctx})"
    );
    assert_eq!(
        serving.db().snapshot_retained_versions(),
        0,
        "no retired snapshot versions left behind ({ctx})"
    );

    // Linearizable commit order: the acknowledged epochs are exactly the
    // dense sequence 1..=total, no slot lost or duplicated.
    let mut writer_recs = writer_recs;
    writer_recs.sort_by_key(|r| r.epoch);
    let total = WRITERS * OPS_PER_WRITER;
    assert_eq!(
        writer_recs.len(),
        total,
        "every request acknowledged ({ctx})"
    );
    for (i, rec) in writer_recs.iter().enumerate() {
        assert_eq!(rec.epoch, i as u64 + 1, "dense commit epochs ({ctx})");
    }

    let mut pins: BTreeMap<u64, Vec<PinRec>> = BTreeMap::new();
    for rec in pin_recs {
        pins.entry(rec.epoch).or_default().push(rec);
    }

    // Single-threaded replay on a fresh in-memory oracle.
    let oracle = Arc::new(Inverda::new_in_memory());
    for stmt in SETUP {
        oracle.execute(stmt).expect("oracle setup");
    }
    check_pins(&oracle, &pins, 0, &ctx);
    for rec in &writer_recs {
        let outcome = match &rec.op {
            ServingOp::Apply {
                version,
                table,
                writes,
            } => oracle
                .apply_many(version, table, writes.clone())
                .map(ServingOutcome::Applied),
            ServingOp::Execute(script) => oracle.execute(script).map(ServingOutcome::Executed),
            ServingOp::Checkpoint => oracle.checkpoint().map(|()| ServingOutcome::Checkpointed),
        };
        assert_eq!(
            outcome_string(&outcome),
            rec.outcome,
            "statement outcome diverged at epoch {} ({ctx})",
            rec.epoch
        );
        check_pins(&oracle, &pins, rec.epoch, &ctx);
    }

    drop(serving);
    if let Some(dir) = dir {
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn sweep(width: usize) {
    for seed in 0..SEEDS_PER_CONFIG {
        for group in [false, true] {
            run_history(width, group, seed);
        }
    }
}

#[test]
fn serving_oracle_width_1() {
    sweep(1);
}

#[test]
fn serving_oracle_width_2() {
    sweep(2);
}

#[test]
fn serving_oracle_width_4() {
    sweep(4);
}
