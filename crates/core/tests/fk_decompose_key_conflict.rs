//! Minimized regression test for the pre-existing twin-separated
//! FK-DECOMPOSE `KeyConflict` edge (ROADMAP "known engine edge", first
//! documented by the PR-2 snapshot-reuse property tests; identical behavior
//! since the seed).
//!
//! The five-statement repro: materialize the FK-DECOMPOSE branch, insert a
//! second task through the SPLIT branch (`Do!`), materialize back to the
//! source version, then update that todo's author through `Do!`. The update
//! separates the decompose's bookkeeping from the row now stored on the
//! source side: re-deriving `TasKy2.Task` makes two rules derive different
//! fk payloads for the same tuple, and the engine reports a **clean**
//! `KeyConflict` instead of picking a winner.
//!
//! The contract this test pins down is not the conflict itself but its
//! *stability*: parallel evaluation (any width), sequential evaluation, the
//! warm snapshot store, cold resolution, the recompute reference write
//! path, and the naive reference interpreter must all fail with the **same**
//! error — and the failure must be clean (every other version stays
//! readable, the skolem registry and visible states stay intact).

use inverda_core::{set_threads, Inverda, WritePath};
use inverda_datalog::eval::MapEdb;
use inverda_datalog::{naive, DatalogError, SkolemRegistry};
use inverda_storage::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;

const SCRIPT: &str = "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
     CREATE SCHEMA VERSION Do! FROM TasKy WITH \
       SPLIT TABLE Task INTO Todo WITH prio = 1; \
       DROP COLUMN prio FROM Todo DEFAULT 1; \
     CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
       DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
       RENAME COLUMN author IN Author TO name;";

/// Replay the minimized repro and return the `TasKy2.Task` scan outcome as
/// text (`Display` of the relation on success, `Debug` of the error on
/// failure).
fn replay(path: WritePath, snapshot_reuse: bool) -> String {
    let db = Inverda::new();
    db.execute(SCRIPT).unwrap();
    db.set_write_path(path);
    db.set_snapshot_reuse(snapshot_reuse);
    let k = db
        .insert(
            "TasKy",
            "Task",
            vec![Value::text("a0"), Value::text("t"), Value::Int(1)],
        )
        .unwrap();
    db.materialize(&["TasKy2".to_string()]).unwrap();
    db.insert("Do!", "Todo", vec![Value::text("a0"), Value::text("d")])
        .unwrap();
    db.materialize(&["TasKy".to_string()]).unwrap();
    db.update("Do!", "Todo", k, vec![Value::text("a1"), Value::text("v")])
        .unwrap();

    // The failure must be clean: every other version stays readable.
    db.scan("TasKy", "Task").unwrap();
    db.scan("Do!", "Todo").unwrap();

    match db.scan("TasKy2", "Task") {
        Ok(rel) => format!("ok:\n{rel}"),
        Err(e) => format!("err: {e:?}"),
    }
}

#[test]
fn twin_separated_fk_decompose_fails_identically_everywhere() {
    // Sequential baseline.
    set_threads(Some(1));
    let sequential = replay(WritePath::Delta, true);
    assert!(
        sequential.contains("KeyConflict"),
        "repro no longer triggers the documented edge — if the B.3 aux \
         rules were fixed, update this test to assert success everywhere \
         instead: {sequential}"
    );

    // Parallel evaluation at every width must fail identically.
    for width in [2usize, 4, 8] {
        set_threads(Some(width));
        let parallel = replay(WritePath::Delta, true);
        assert_eq!(sequential, parallel, "diverged at width {width}");
    }

    // Cold resolution (no snapshot store) and the recompute reference
    // write path must agree too, at both extremes of the width knob.
    for width in [1usize, 4] {
        set_threads(Some(width));
        assert_eq!(sequential, replay(WritePath::Delta, false));
        assert_eq!(sequential, replay(WritePath::Recompute, true));
        assert_eq!(sequential, replay(WritePath::Recompute, false));
    }
    set_threads(None);
}

#[test]
fn twin_separated_fk_decompose_matches_naive_interpreter() {
    // Rebuild the failing state, then re-derive the FK-DECOMPOSE target
    // side with the *naive* reference interpreter straight from the
    // physical tables: it must report the very same conflict.
    set_threads(Some(1));
    let db = Inverda::new();
    db.execute(SCRIPT).unwrap();
    let k = db
        .insert(
            "TasKy",
            "Task",
            vec![Value::text("a0"), Value::text("t"), Value::Int(1)],
        )
        .unwrap();
    db.materialize(&["TasKy2".to_string()]).unwrap();
    db.insert("Do!", "Todo", vec![Value::text("a0"), Value::text("d")])
        .unwrap();
    db.materialize(&["TasKy".to_string()]).unwrap();
    db.update("Do!", "Todo", k, vec![Value::text("a1"), Value::text("v")])
        .unwrap();
    let compiled_err = match db.scan("TasKy2", "Task") {
        Err(inverda_core::CoreError::Datalog(e)) => e,
        other => panic!("expected a datalog KeyConflict, got {other:?}"),
    };
    assert!(matches!(compiled_err, DatalogError::KeyConflict { .. }));

    // γ_tgt of the DECOMPOSE and the head column names, from the catalog.
    let (rules, head_columns) = db.with_genealogy(|g| {
        let smo = g
            .smos()
            .find(|s| s.derived.kind.contains("DECOMPOSE"))
            .expect("decompose smo");
        let mut head_columns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for tv in g.table_versions() {
            head_columns.insert(tv.rel.clone(), tv.columns.clone());
        }
        for s in g.smos() {
            for aux in s.derived.all_aux() {
                head_columns.insert(aux.rel.clone(), aux.columns.clone());
            }
            for shared in &s.derived.shared_aux {
                head_columns.insert(shared.new_name.clone(), shared.table.columns.clone());
            }
        }
        (smo.derived.to_tgt.clone(), head_columns)
    });
    // Physical state as a plain map-backed EDB.
    let mut edb = MapEdb::new();
    for (table, _) in db.physical_tables() {
        let rel = db.physical_snapshot(&table).unwrap();
        edb.add_shared(table, rel);
    }
    let ids = RefCell::new(SkolemRegistry::new());
    let naive_err = naive::evaluate(&rules, &edb, &ids, &head_columns)
        .expect_err("the naive interpreter must reject the separated state too");
    match (&compiled_err, &naive_err) {
        (
            DatalogError::KeyConflict { relation, key },
            DatalogError::KeyConflict {
                relation: n_rel,
                key: n_key,
            },
        ) => {
            assert_eq!(relation, n_rel);
            assert_eq!(key, n_key);
        }
        other => panic!("engines disagree on the failure: {other:?}"),
    }
    set_threads(None);
}
