//! Regression test for the (formerly failing) twin-separated FK-DECOMPOSE
//! edge (ROADMAP "known engine edge", first documented by the PR-2
//! snapshot-reuse property tests; identical behavior since the seed).
//!
//! The five-statement repro: materialize the FK-DECOMPOSE branch, insert a
//! second task through the SPLIT branch (`Do!`), materialize back to the
//! source version, then update that todo's author through `Do!`. The update
//! replaces the source row's author payload — but the decompose's physical
//! `ID_Task(p, t)` assignment memo used to keep the *old* payload's
//! generated id for the row, so re-deriving `TasKy2` pinned two different
//! author payloads onto one generated key and failed with a `KeyConflict`.
//!
//! **Root cause & fix** (see DESIGN.md "The twin-separated FK-DECOMPOSE
//! conflict"): Appendix B.3's `ID_R(p, t)` memoizes `t = idT(payload(p))` —
//! a payload-*derived* assignment — so an update that changes row `p`'s
//! payload invalidates the entry. The write path now purges key-matching
//! `ID` rows on updates of adjacent (untraversed) FK-DECOMPOSE instances,
//! exactly like deletes always purged; re-derivation then re-mints through
//! the skolem registry, which returns the same id whenever the payload did
//! not actually change. This test asserts the repro now succeeds with the
//! correct decomposition — and that the outcome stays byte-identical across
//! parallel widths, write paths, the snapshot store, and the naive
//! reference interpreter (the old test pinned the *failure* to be equally
//! stable).

use inverda_core::{set_threads, Inverda, WritePath};
use inverda_datalog::eval::MapEdb;
use inverda_datalog::naive;
use inverda_storage::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;

const SCRIPT: &str = "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
     CREATE SCHEMA VERSION Do! FROM TasKy WITH \
       SPLIT TABLE Task INTO Todo WITH prio = 1; \
       DROP COLUMN prio FROM Todo DEFAULT 1; \
     CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
       DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
       RENAME COLUMN author IN Author TO name;";

/// Replay the minimized repro and return the built database.
fn replay(path: WritePath, snapshot_reuse: bool) -> Inverda {
    let db = Inverda::new();
    db.execute(SCRIPT).unwrap();
    db.set_write_path(path);
    db.set_snapshot_reuse(snapshot_reuse);
    let k = db
        .insert(
            "TasKy",
            "Task",
            vec![Value::text("a0"), Value::text("t"), Value::Int(1)],
        )
        .unwrap();
    db.materialize(&["TasKy2".to_string()]).unwrap();
    db.insert("Do!", "Todo", vec![Value::text("a0"), Value::text("d")])
        .unwrap();
    db.materialize(&["TasKy".to_string()]).unwrap();
    db.update("Do!", "Todo", k, vec![Value::text("a1"), Value::text("v")])
        .unwrap();
    db
}

/// Every version's visible state as text (scan errors recorded, so a
/// regression to the old conflict shows up as a diff against the asserted
/// success).
fn visible(db: &Inverda) -> String {
    let mut out = String::new();
    for v in db.versions() {
        let mut tables = db.tables_of(&v).unwrap();
        tables.sort();
        for t in tables {
            match db.scan(&v, &t) {
                Ok(rel) => out.push_str(&format!("{v}.{t}:\n{rel}")),
                Err(e) => out.push_str(&format!("{v}.{t}: error {e:?}\n")),
            }
        }
    }
    out
}

#[test]
fn twin_separated_fk_decompose_resolves_identically_everywhere() {
    // Sequential baseline: the repro must now succeed, with the updated
    // row re-pointed at a *fresh* author id and the surviving twin keeping
    // the original one.
    set_threads(Some(1));
    let db = replay(WritePath::Delta, true);
    let baseline = visible(&db);
    assert!(
        !baseline.contains("error"),
        "the twin-separated repro regressed to a failure:\n{baseline}"
    );
    let authors = db.scan("TasKy2", "Author").unwrap();
    let names: Vec<String> = authors.iter().map(|(_, row)| row[0].to_string()).collect();
    assert_eq!(
        names.len(),
        2,
        "expected both authors to survive:\n{authors}"
    );
    assert!(names.contains(&Value::text("a0").to_string()));
    assert!(names.contains(&Value::text("a1").to_string()));
    // Every Task fk resolves (no dangling generated ids).
    for (_, row) in db.scan("TasKy2", "Task").unwrap().iter() {
        let Value::Int(fk) = row[2] else {
            panic!("non-integer fk in {row:?}")
        };
        assert!(
            authors.contains_key(inverda_storage::Key(fk as u64)),
            "dangling fk {fk}"
        );
    }

    // Parallel evaluation at every width must produce the identical state.
    for width in [2usize, 4, 8] {
        set_threads(Some(width));
        let parallel = visible(&replay(WritePath::Delta, true));
        assert_eq!(baseline, parallel, "diverged at width {width}");
    }

    // Cold resolution (no snapshot store) and the recompute reference
    // write path must agree too, at both extremes of the width knob.
    for width in [1usize, 4] {
        set_threads(Some(width));
        assert_eq!(baseline, visible(&replay(WritePath::Delta, false)));
        assert_eq!(baseline, visible(&replay(WritePath::Recompute, true)));
        assert_eq!(baseline, visible(&replay(WritePath::Recompute, false)));
    }
    set_threads(None);
}

#[test]
fn twin_separated_fk_decompose_matches_naive_interpreter() {
    // Rebuild the formerly-failing state, then re-derive the FK-DECOMPOSE
    // target side with the *naive* reference interpreter straight from the
    // physical tables: it must derive exactly the engine's state.
    set_threads(Some(1));
    let db = replay(WritePath::Delta, true);
    let task2 = db.scan("TasKy2", "Task").unwrap();

    // γ_tgt of the DECOMPOSE and the head column names, from the catalog.
    let (rules, head_columns, tgt_task_rel) = db.with_genealogy(|g| {
        let smo = g
            .smos()
            .find(|s| s.derived.kind.contains("DECOMPOSE"))
            .expect("decompose smo");
        let mut head_columns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for tv in g.table_versions() {
            head_columns.insert(tv.rel.clone(), tv.columns.clone());
        }
        for s in g.smos() {
            for aux in s.derived.all_aux() {
                head_columns.insert(aux.rel.clone(), aux.columns.clone());
            }
            for shared in &s.derived.shared_aux {
                head_columns.insert(shared.new_name.clone(), shared.table.columns.clone());
            }
        }
        (
            smo.derived.to_tgt.clone(),
            head_columns,
            smo.derived.tgt_data[0].rel.clone(),
        )
    });
    // Physical state as a plain map-backed EDB; the registry clone carries
    // the engine's committed generator assignments (the physical `ID` memo
    // was purged by the update, so repeatability now rests on the registry
    // — exactly what the fix relies on).
    let mut edb = MapEdb::new();
    for (table, _) in db.physical_tables() {
        let rel = db.physical_snapshot(&table).unwrap();
        edb.add_shared(table, rel);
    }
    let ids = Mutex::new(db.registry_snapshot());
    let naive_out = naive::evaluate(&rules, &edb, &ids, &head_columns)
        .expect("the naive interpreter must accept the separated state too");
    assert_eq!(
        naive_out[&tgt_task_rel].to_string(),
        task2.to_string(),
        "naive re-derivation disagrees with the engine"
    );
    set_threads(None);
}
